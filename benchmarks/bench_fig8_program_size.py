"""Fig 8 bench — largest runnable program size vs two-qubit error."""

from repro.analysis import clear_cache
from repro.experiments import fig8_program_size


def run_once():
    clear_cache()
    return fig8_program_size.run(max_size=50, size_step=10, error_points=11)


def test_fig8_largest_runnable_size(benchmark, record_figure):
    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_figure("fig8", result.format())
    for name, (na_curve, sc_curve) in result.curves.items():
        # NA never runs a smaller program than SC at the same error...
        for (_, na_size), (_, sc_size) in zip(na_curve, sc_curve):
            assert na_size >= sc_size, name
        # ...and strictly larger somewhere in the sweep.
        assert result.advantage_points(name) >= 1, name
        # Size shrinks as error grows.
        sizes = [s for _, s in na_curve]
        assert sizes == sorted(sizes, reverse=True)
