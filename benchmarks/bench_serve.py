"""Serving-layer bench — warm-path request throughput.

Starts a real ``repro.serve`` server (ephemeral port, temp store) over a
pre-populated result, then times warm ``POST /run`` requests end to end
— socket, routing, store read, canonical-JSON bytes out.  The warm path
is the serving workload the north star cares about: it must stay a pure
store lookup (zero queue submissions after the first run) and answer
orders of magnitude faster than the execution that populated it.
"""

import json
import threading
import time
import urllib.request

from repro.serve import build_server


def _post_run(port: int) -> bytes:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/run",
        data=json.dumps({"experiment": "validation", "quick": True,
                         "wait": True}).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=600) as response:
        return response.read()


def test_serve_warm_request_throughput(benchmark, tmp_path):
    server = build_server("127.0.0.1", 0, str(tmp_path / "store"),
                          str(tmp_path / "cache"), workers=2, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        populate_start = time.perf_counter()
        cold = _post_run(server.port)
        populate_wall = time.perf_counter() - populate_start

        warm = benchmark(_post_run, server.port)

        assert warm == cold
        snapshot = server.app.metrics.snapshot()
        # Exactly the populating request went through the queue; every
        # timed request was a store hit.
        assert snapshot["jobs"]["submitted"] == 1
        assert snapshot["store"]["hits"] >= 1
        assert benchmark.stats.stats.mean < populate_wall
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=5)
