"""Serving-layer bench — warm-path request throughput.

Starts a real ``repro.serve`` server (ephemeral port, temp store) over a
pre-populated result, then times warm ``POST /run`` requests end to end
— socket, routing, store read, canonical-JSON bytes out.  The warm path
is the serving workload the north star cares about: it must stay a pure
store lookup (zero queue submissions after the first run) and answer
orders of magnitude faster than the execution that populated it.
"""

import json
import threading
import time
import urllib.request

from repro.serve import build_server


def _post_run(port: int) -> bytes:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/run",
        data=json.dumps({"experiment": "validation", "quick": True,
                         "wait": True}).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=600) as response:
        return response.read()


def _run_sweep(port: int) -> list:
    """Submit a two-cell sweep and drain its result stream; the list of
    parsed stream lines (cells + summary)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/sweeps",
        data=json.dumps({"experiment": "ext-trapped-ion", "quick": True,
                         "axes": {"program_size": [10, 20]}}).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=600) as response:
        sweep_id = json.loads(response.read())["id"]
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/sweeps/{sweep_id}/stream",
            timeout=600) as response:
        return [json.loads(line) for line in response if line.strip()]


def test_serve_warm_sweep_stream(benchmark, tmp_path):
    """The all-hit sweep path: every cell answered from the store at
    submission, streamed in canonical order, zero queue submissions."""
    server = build_server("127.0.0.1", 0, str(tmp_path / "store"),
                          str(tmp_path / "cache"), workers=2, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        cold = _run_sweep(server.port)
        jobs_after_populate = \
            server.app.metrics.snapshot()["jobs"]["submitted"]

        warm = benchmark(_run_sweep, server.port)

        # Same envelope per cell key; the lifecycle metadata (source,
        # job id, wall time) legitimately differs between the computing
        # and the replaying pass.
        assert {r["key"]: r["envelope"] for r in warm[:-1]} == \
            {r["key"]: r["envelope"] for r in cold[:-1]}
        snapshot = server.app.metrics.snapshot()
        # The populating sweep computed the cells; every timed sweep
        # short-circuited on the store and never touched the queue.
        assert snapshot["jobs"]["submitted"] == jobs_after_populate
        assert snapshot["sweeps"]["cells_hit"] >= 2
        assert [record["index"] for record in warm[:-1]] == [0, 1]
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=5)


def test_serve_warm_request_throughput(benchmark, tmp_path):
    server = build_server("127.0.0.1", 0, str(tmp_path / "store"),
                          str(tmp_path / "cache"), workers=2, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        populate_start = time.perf_counter()
        cold = _post_run(server.port)
        populate_wall = time.perf_counter() - populate_start

        warm = benchmark(_post_run, server.port)

        assert warm == cold
        snapshot = server.app.metrics.snapshot()
        # Exactly the populating request went through the queue; every
        # timed request was a store hit.
        assert snapshot["jobs"]["submitted"] == 1
        assert snapshot["store"]["hits"] >= 1
        assert benchmark.stats.stats.mean < populate_wall
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=5)
