"""Fig 3 bench — gate-count savings from interaction distance.

Times the full compile sweep and regenerates the figure's bar rows (mean
% gate-count savings per benchmark per MID vs the MID-1 baseline) and the
BV line series.
"""

from repro.analysis import clear_cache
from repro.experiments import fig3_gate_count

MIDS = (2.0, 3.0, 5.0, 13.0)
MAX_SIZE = 40
STEP = 12


def run_once():
    clear_cache()
    return fig3_gate_count.run(
        mids=MIDS, max_size=MAX_SIZE, size_step=STEP,
        bv_line_sizes=(15, 27, 39),
    )


def test_fig3_gate_count_savings(benchmark, record_figure):
    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_figure("fig3", result.format())
    # The paper's claims: savings are positive at MID >= 2 and most of the
    # benefit arrives in the first few increments (5 -> 13 adds little).
    for bench in ("bv", "cuccaro", "qft-adder", "qaoa"):
        assert result.saving(bench, 2.0) > 0.0
        late_gain = result.saving(bench, 13.0) - result.saving(bench, 5.0)
        early_gain = result.saving(bench, 3.0) - 0.0
        assert late_gain <= early_gain + 0.02
