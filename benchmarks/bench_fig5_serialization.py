"""Fig 5 bench — depth increase from restriction-zone serialization."""

from repro.analysis import clear_cache
from repro.experiments import fig5_serialization


def run_once():
    clear_cache()
    return fig5_serialization.run(
        mids=(2.0, 3.0, 5.0), max_size=30, size_step=10,
        qaoa_line_sizes=(20, 30),
    )


def test_fig5_serialization(benchmark, record_figure):
    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_figure("fig5", result.format())
    # Zones only ever add depth, and the inherently parallel benchmarks
    # (QFT-adder, QAOA, CNU) pay more than the serial ones (BV, Cuccaro).
    for row in result.bars:
        assert row.mean_increase >= -1e-9
    parallel = max(result.increase(b, 3.0) for b in ("qft-adder", "qaoa", "cnu"))
    serial = max(result.increase(b, 3.0) for b in ("bv", "cuccaro"))
    assert parallel >= serial
    # The zoned QAOA line never dips below the ideal line.
    for series in result.qaoa_series.values():
        for _, zoned, ideal in series:
            assert zoned >= ideal
