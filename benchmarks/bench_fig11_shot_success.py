"""Fig 11 bench — shot success erosion with accumulating holes."""

from repro.experiments import fig11_shot_success


def run_once():
    return fig11_shot_success.run(
        benchmarks=("cnu", "cuccaro"),
        strategies=("reroute", "c. small+reroute", "recompile"),
        mids=(2.0, 3.0, 5.0), max_holes=15, program_size=30,
        trials=2, rng=0,
    )


def test_fig11_shot_success_drop(benchmark, record_figure):
    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_figure("fig11", result.format())
    # Calibration put the clean program near 0.6 success.
    for bench in ("cnu", "cuccaro"):
        trace = result.trace(bench, "recompile", 3.0)
        assert abs(trace[0] - 0.6) < 0.05
    # Reroute fixups only ever erode success relative to the start.
    for (bench, strategy, mid), trace in result.traces.items():
        if strategy == "reroute":
            assert trace[-1] <= trace[0] + 1e-9
