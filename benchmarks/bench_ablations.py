"""Benches for the design-choice ablations DESIGN.md §5 calls out."""

from repro.experiments import (
    ablation_lookahead,
    ablation_margin,
    ext_geometry,
    ext_trapped_ion,
    ablation_zones,
    ext_device_scaling,
    ext_ejection_readout,
    ext_validation_noisy,
)


def test_ablation_zone_shape(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: ablation_zones.run(program_size=30),
        rounds=1, iterations=1,
    )
    record_figure("ablation_zones", result.format())
    for bench in ("qaoa", "qft-adder", "cuccaro"):
        assert (result.select(bench, "none", 1.0).depth
                <= result.select(bench, "full", 1.0).depth)


def test_ablation_lookahead(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: ablation_lookahead.run(program_size=30),
        rounds=1, iterations=1,
    )
    record_figure("ablation_lookahead", result.format())
    assert (result.lookahead_benefit("bv", 3.0)
            <= result.lookahead_benefit("bv", 1.0) + 1e-9)


def test_ext_ejection_readout(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: ext_ejection_readout.run(shots=100, rng=0),
        rounds=1, iterations=1,
    )
    record_figure("ext_ejection", result.format())
    small = result.runs[(12, "c. small+reroute")]
    large = result.runs[(60, "c. small+reroute")]
    assert small.reload_count < large.reload_count


def test_ext_device_scaling(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: ext_device_scaling.run(grid_sides=(6, 10, 14)),
        rounds=1, iterations=1,
    )
    record_figure("ext_scaling", result.format())
    assert (result.saturation_mid[14] >= result.saturation_mid[6])


def test_ext_noisy_validation(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: ext_validation_noisy.run(shots=400),
        rounds=1, iterations=1,
    )
    record_figure("ext_noisy_validation", result.format())
    assert result.max_gap < 0.2


def test_ext_trapped_ion(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: ext_trapped_ion.run(program_size=30),
        rounds=1, iterations=1,
    )
    record_figure("ext_trapped_ion", result.format())
    for bench in ("bv", "cnu", "cuccaro", "qft-adder", "qaoa"):
        assert result.metrics(bench, "ti").swap_count == 0
        assert (result.duration(bench, "ti")
                > 10 * result.duration(bench, "na"))


def test_ext_geometry(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: ext_geometry.run(grid_side=6),
        rounds=1, iterations=1,
    )
    record_figure("ext_geometry", result.format())
    for bench in ("bv", "cuccaro", "qaoa"):
        for mid in (2.0, 3.0):
            line = result.select(bench, "line", mid)
            square = result.select(bench, "square", mid)
            assert square.swaps <= line.swaps


def test_ablation_compile_margin(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: ablation_margin.run(program_size=30, true_mid=5.0,
                                    margins=(1.0, 2.0, 3.0), trials=3),
        rounds=1, iterations=1,
    )
    record_figure("ablation_margin", result.format())
    assert result.select(3.0).gates >= result.select(1.0).gates
    assert result.select(3.0).clean_success <= result.select(1.0).clean_success
