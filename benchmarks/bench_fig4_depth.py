"""Fig 4 bench — depth savings from interaction distance."""

from repro.analysis import clear_cache
from repro.experiments import fig4_depth

MIDS = (2.0, 3.0, 5.0, 13.0)


def run_once():
    clear_cache()
    return fig4_depth.run(
        mids=MIDS, max_size=40, size_step=12, qft_line_sizes=(10, 26),
    )


def test_fig4_depth_savings(benchmark, record_figure):
    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_figure("fig4", result.format())
    # Depth drops with MID for the serial benchmarks...
    assert result.saving("bv", 3.0) > 0.0
    assert result.saving("cuccaro", 3.0) > 0.0
    # ...and the QFT-adder line flattens/rebounds at long range (the
    # restriction-zone effect): the drop from MID 5 to 13 is small.
    for size, series in result.qft_series.items():
        depth_by_mid = dict((m, d) for m, d in series)
        assert depth_by_mid[13.0] >= 0.9 * depth_by_mid[5.0]
