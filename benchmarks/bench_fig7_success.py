"""Fig 7 bench — program success rate vs two-qubit error, NA vs SC."""

from repro.analysis import clear_cache
from repro.experiments import fig7_success


def run_once():
    clear_cache()
    return fig7_success.run(program_size=30, error_points=13)


def test_fig7_success_comparison(benchmark, record_figure):
    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_figure("fig7", result.format())
    # NA diverges from the all-noise outcome at a higher physical error
    # than SC for every benchmark (the paper's Fig 7 claim).
    for name, cmp_result in result.comparisons.items():
        na_div, sc_div = cmp_result.divergence_error()
        assert na_div >= sc_div, name
        # Program error decreases monotonically as gates improve.
        na_errors = [e for _, e in cmp_result.na_curve]
        assert na_errors == sorted(na_errors)
