"""Shared helpers for the figure-regeneration benchmark harness.

Each ``bench_figN.py`` regenerates the corresponding paper figure at a
reduced-but-shape-preserving scale, times the heavy kernel with
pytest-benchmark, asserts the figure's qualitative claim, and writes the
printed rows/series to ``benchmarks/results/figN.txt`` (also echoed to
stdout, visible with ``pytest -s``).

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_figure(results_dir):
    """Write a figure's formatted output to disk and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _record
