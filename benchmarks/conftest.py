"""Shared helpers for the figure-regeneration benchmark harness.

Each ``bench_figN.py`` regenerates the corresponding paper figure at a
reduced-but-shape-preserving scale, times the heavy kernel with
pytest-benchmark, asserts the figure's qualitative claim, and writes the
printed rows/series to ``benchmarks/results/figN.txt`` (also echoed to
stdout, visible with ``pytest -s``).

Run everything with::

    pytest benchmarks/ --benchmark-only

Passing ``--bench-json FILE`` additionally records one
``{"experiment", "wall_s", "cache_hits"}`` entry per benchmark (the
``experiment`` value is the benchmark's name, e.g. ``fig12_overhead``)
— a thin wall-clock/cache-pressure trace independent of
pytest-benchmark's own stats.  CI runs the suite this way and uploads
the file (as ``BENCH_ci.json``) so the perf trajectory of every PR is
preserved as an artifact.
"""

import json
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: {experiment, wall_s, cache_hits} records accumulated this session.
_BENCH_RECORDS = []


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", default=None, metavar="FILE",
        help="write one {experiment, wall_s, cache_hits} JSON record per "
             "benchmark to FILE",
    )


@pytest.fixture(autouse=True)
def _bench_trace(request):
    """Record wall time and compile-cache hits around each benchmark."""
    if request.config.getoption("--bench-json") is None:
        yield
        return
    from repro.exec.cache import get_cache

    cache = get_cache()
    before = cache.stats()
    start = time.perf_counter()
    yield
    wall = time.perf_counter() - start
    after = cache.stats()
    _BENCH_RECORDS.append({
        # The benchmark's node name minus the collection prefix, e.g.
        # "ablation_compile_margin", "fig12_overhead" — benchmark
        # granularity, not registry names (several benches exercise
        # micro-kernels no single registry experiment covers).
        "experiment": request.node.name.removeprefix("test_"),
        "wall_s": round(wall, 4),
        "cache_hits": (after["memory_hits"] + after["disk_hits"]
                       - before["memory_hits"] - before["disk_hits"]),
    })


def pytest_sessionfinish(session):
    target = session.config.getoption("--bench-json", default=None)
    if target is None:
        return
    payload = json.dumps(
        sorted(_BENCH_RECORDS, key=lambda r: r["experiment"]), indent=2
    )
    pathlib.Path(target).write_text(payload + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_figure(results_dir):
    """Write a figure's formatted output to disk and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _record
