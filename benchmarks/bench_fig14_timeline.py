"""Fig 14 bench — timeline of 20 successful shots."""

from repro.experiments import fig14_timeline


def run_once():
    return fig14_timeline.run(target_shots=20)


def test_fig14_execution_timeline(benchmark, record_figure):
    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_figure("fig14", result.format())
    run_result = result.run_result
    assert run_result.shots_successful == 20
    kinds = run_result.time_by_kind()
    # Reload + fluorescence dominate the trace (the paper's conclusion:
    # "a majority of the overhead time is contributed by the reload time
    # and fluorescence").
    assert (kinds["reload"] + kinds["fluorescence"]
            > 0.8 * run_result.total_time)
    # Circuit execution itself is a negligible share.
    assert kinds["run"] < 0.05 * run_result.total_time
