"""Fig 6 bench — native Toffoli execution vs decomposition."""

from repro.analysis import clear_cache
from repro.experiments import fig6_multiqubit


def run_once():
    clear_cache()
    return fig6_multiqubit.run(sizes=(20, 40, 60), mids=(2.0, 3.0, 5.0))


def test_fig6_native_multiqubit(benchmark, record_figure):
    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_figure("fig6", result.format())
    for point in result.points:
        if point.mid == 1.0:
            # Toffolis are impossible at distance 1: both modes decompose.
            assert point.native_gates == point.decomposed_gates
        else:
            # Native execution wins in gates and depth — the paper reports
            # "huge reductions in both depth and gate count".
            assert point.native_gates < point.decomposed_gates
            assert point.native_depth < point.decomposed_depth
    # The headline ~6x gate factor for Toffoli-heavy code is visible.
    cnu_points = [p for p in result.points
                  if p.benchmark == "cnu" and p.mid >= 2.0]
    assert max(p.gate_ratio for p in cnu_points) >= 4.0
