"""Micro-benchmarks of the compiler's hot kernels.

Not a paper figure — these track the cost of compilation itself, which
§VI leans on (recompilation is excluded from Fig 12 when compile time
exceeds reload time).  Multi-round timings via pytest-benchmark.
"""

import pytest

from repro.core import CompilerConfig, compile_circuit
from repro.hardware import Topology
from repro.workloads import build_circuit


@pytest.mark.parametrize("name,size", [("bv", 50), ("cnu", 50),
                                       ("cuccaro", 50)])
def test_compile_mid3(benchmark, name, size):
    circuit = build_circuit(name, size)

    def compile_once():
        return compile_circuit(
            circuit,
            Topology.square(10, 3.0),
            CompilerConfig(max_interaction_distance=3.0),
        )

    program = benchmark(compile_once)
    assert program.depth() > 0


def test_compile_sc_baseline(benchmark):
    circuit = build_circuit("qaoa", 40)

    def compile_once():
        return compile_circuit(
            circuit,
            Topology.square(10, 1.0),
            CompilerConfig.superconducting_like(),
        )

    program = benchmark(compile_once)
    assert program.swap_count > 0


def test_recompile_vs_reload_claim(benchmark, record_figure):
    """Document where compile time stands vs the 0.3 s reload.

    The paper's Python compiler took seconds; ours is faster, so the
    'recompilation exceeds reload' exclusion holds only for large or
    fully decomposed programs.  Record the measured number.
    """
    circuit = build_circuit("cuccaro", 100)

    def compile_once():
        return compile_circuit(
            circuit,
            Topology.square(10, 2.0),
            CompilerConfig(max_interaction_distance=2.0, native_max_arity=2),
        )

    program = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    record_figure(
        "recompile_cost",
        f"one full recompile of cuccaro-100 (decomposed, MID 2): "
        f"{program.compile_seconds:.3f}s vs reload 0.3s",
    )
    assert program.compile_seconds > 0
