"""Result-store bench — the O(1) replay path vs recomputation.

Populates a persistent result store with one fig10 run, then times the
read-through replay (`Session.run` hitting the store).  The replay must
dispatch zero sweep tasks and miss the compile cache zero times — the
memoize-don't-recompute discipline the store exists to provide — and
come back orders of magnitude faster than the run that populated it.
"""

import time

from repro.api import Session

TINY = dict(benchmarks=("cnu",), mids=(2.0,), program_size=16, trials=1)


def test_result_store_replay(benchmark, tmp_path):
    store_dir = str(tmp_path / "store")
    populate_start = time.perf_counter()
    populated = Session(store_dir=store_dir).run("fig10", **TINY)
    populate_wall = time.perf_counter() - populate_start

    session = Session(store_dir=store_dir)

    def replay():
        return session.run("fig10", **TINY)

    result = benchmark(replay)

    assert result == populated
    assert session.store.hits >= 1 and session.store.misses == 0
    assert session.tasks_executed == 0
    assert session.cache_stats()["misses"] == 0
    # The entire point: replay is not meaningfully slower than reading
    # one small JSON file, and vastly faster than recomputing.
    assert benchmark.stats.stats.mean < populate_wall
