"""Fig 12 bench — wall-clock overhead of 500 shots per strategy."""

from repro.experiments import fig12_overhead


def run_once():
    return fig12_overhead.run(
        mids=(2.0, 3.0, 4.0, 5.0), shots=500, program_size=30, rng=0,
    )


def test_fig12_overhead_500_shots(benchmark, record_figure):
    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_figure("fig12", result.format())
    for mid in (2.0, 3.0, 4.0, 5.0):
        reload_overhead = result.overhead("always reload", mid)
        # Every adaptive strategy beats always-reload...
        for name in ("virtual remapping", "reroute"):
            assert result.overhead(name, mid) <= reload_overhead
        # ...and reload time is the dominant overhead component.
        run_result = result.runs[("always reload", mid)]
        kinds = run_result.time_by_kind()
        assert kinds["reload"] >= max(kinds["fluorescence"], kinds["fixup"])
