"""Fig 10 bench — maximum atom-loss tolerance per strategy per MID."""

from repro.experiments import fig10_loss_tolerance


def run_once():
    return fig10_loss_tolerance.run(
        benchmarks=("cnu", "cuccaro"), mids=(2.0, 3.0, 4.0, 5.0),
        program_size=30, trials=3, rng=0,
    )


def test_fig10_loss_tolerance(benchmark, record_figure):
    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_figure("fig10", result.format())
    for bench in ("cnu", "cuccaro"):
        # Recompile tolerates the most loss at every MID...
        for mid in (2.0, 3.0, 4.0, 5.0):
            recompile = result.fraction(bench, "recompile", mid)
            for other in ("virtual remapping", "reroute"):
                assert recompile >= result.fraction(bench, other, mid)
        # ...approaching the ideal 70% cap at long range...
        assert result.fraction(bench, "recompile", 5.0) >= 0.45
        # ...and every strategy improves with interaction distance.
        assert (result.fraction(bench, "virtual remapping", 5.0)
                >= result.fraction(bench, "virtual remapping", 2.0))
