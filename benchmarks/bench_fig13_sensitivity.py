"""Fig 13 bench — sensitivity of shots-before-reload to the loss rate."""

from repro.experiments import fig13_sensitivity


def run_once():
    return fig13_sensitivity.run(
        mids=(3.0, 4.0, 5.0), factors=(0.3, 1.0, 3.0, 10.0, 30.0),
        shots_per_run=400, program_size=30, rng=0,
    )


def test_fig13_loss_rate_sensitivity(benchmark, record_figure):
    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_figure("fig13", result.format())
    for mid in (3.0, 4.0, 5.0):
        series = result.series(mid)
        # More reliable atoms -> more successful shots before a reload;
        # the improvement is roughly proportional (paper: 10x -> ~10x).
        assert series[-1][1] > series[0][1]
        factor_gain = (series[-1][1] + 1) / (series[1][1] + 1)
        assert factor_gain > 3.0
