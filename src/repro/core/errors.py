"""Compiler exception hierarchy."""


class CompilationError(RuntimeError):
    """The program cannot be compiled onto the given topology."""


class DisconnectedTopologyError(CompilationError):
    """Routing failed because the active-site graph is disconnected."""


class SchedulingStalledError(CompilationError):
    """The scheduler stopped making progress (safety valve tripped)."""
