"""Initial placement of program qubits onto grid sites (§III-A).

Greedy weighted placement: the heaviest-interacting pair is seated
adjacently at the device center; every subsequent qubit (ordered by total
weight to already-placed qubits, heaviest first) takes the free site
minimizing

    s(u, h) = sum_{mapped v} d(h, phi(v)) * w(u, v)

i.e. close to its frequent partners.  Qubits with no interactions fill in
center-outward.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.weights import InteractionWeights
from repro.hardware.topology import Topology


class MappingError(RuntimeError):
    """Raised when the program cannot be placed on the device."""


def initial_mapping(
    num_program_qubits: int,
    topology: Topology,
    weights: InteractionWeights,
) -> Dict[int, int]:
    """Place ``num_program_qubits`` program qubits onto active sites.

    Returns a dict program qubit -> site.  Raises :class:`MappingError`
    when the device has too few active atoms.
    """
    active = set(topology.active_sites())
    if num_program_qubits > len(active):
        raise MappingError(
            f"program needs {num_program_qubits} qubits but only "
            f"{len(active)} atoms remain"
        )

    center_order = [
        s for s in topology.grid.sites_by_center_distance() if s in active
    ]
    mapping: Dict[int, int] = {}
    free: Set[int] = set(active)

    placed_order = _placement_order(num_program_qubits, weights)

    for qubit in placed_order:
        if not mapping:
            # First qubit of the heaviest pair: dead center.
            site = center_order[0]
        else:
            site = _best_site(qubit, mapping, free, topology, weights, center_order)
        mapping[qubit] = site
        free.discard(site)
    return mapping


def _placement_order(num_qubits: int, weights: InteractionWeights) -> List[int]:
    """Qubits ordered for placement: heaviest pair first, then greedily by
    weight to the already-ordered set, isolated qubits last."""
    remaining = set(range(num_qubits))
    order: List[int] = []
    if len(weights) > 0:
        u, v = weights.heaviest_pair()
        order.extend([u, v])
        remaining.discard(u)
        remaining.discard(v)
        ordered = set(order)
        # Per-qubit partner views are stable; fetch them once.  The
        # weight totals are still re-summed from scratch each round in
        # partner-dict order, so float accumulation matches the naive
        # rebuild bit for bit.
        partner_items = {q: list(weights.partners(q).items()) for q in remaining}
        while remaining:
            best_qubit: Optional[int] = None
            best_weight = -1.0
            for qubit in remaining:
                total = sum(
                    w for p, w in partner_items[qubit] if p in ordered
                )
                if total > best_weight or (
                    total == best_weight
                    and (best_qubit is None or qubit < best_qubit)
                ):
                    best_weight = total
                    best_qubit = qubit
            assert best_qubit is not None
            order.append(best_qubit)
            ordered.add(best_qubit)
            remaining.discard(best_qubit)
    else:
        order = sorted(remaining)
        remaining = set()
    return order


def _best_site(
    qubit: int,
    mapping: Dict[int, int],
    free: Set[int],
    topology: Topology,
    weights: InteractionWeights,
    center_order: List[int],
) -> int:
    """Free site minimizing the paper's placement score for ``qubit``."""
    partners = weights.partners(qubit)
    mapped_partners = [
        (mapping[v], w) for v, w in partners.items() if v in mapping
    ]
    if not mapped_partners:
        # No signal: take the most central free site.
        for site in center_order:
            if site in free:
                return site
        raise MappingError("no free site available")

    rows = topology.grid.distance_rows()
    best_site = None
    best_score = float("inf")
    for site in free:
        row = rows[site]
        score = 0.0
        for partner_site, weight in mapped_partners:
            score += row[partner_site] * weight
            if score >= best_score:
                break
        if score < best_score or (score == best_score and (
            best_site is None or site < best_site
        )):
            best_score = score
            best_site = site
    assert best_site is not None
    return best_site
