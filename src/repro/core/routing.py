"""SWAP selection for long-distance gates (§III-A).

When a frontier gate's operands exceed the MID, the router proposes one
SWAP moving an operand strictly closer to its partners, scored by the
paper's displacement-aware function:

    s(u, h) = sum_v [d(phi(u), phi(v)) - d(h, phi(v))] * w(u, v)
            + sum_v [d(h, phi(v)) - d(phi(u), phi(v))] * w(phi^-1(h), v)

The first term rewards moving ``u`` toward its future partners; the second
penalizes dragging the displaced qubit ``phi^-1(h)`` away from *its*
future partners.  The chosen ``h`` must be *strictly closer to the most
immediate interaction*, guaranteeing progress.

A BFS fallback handles hole-riddled topologies (recompilation after atom
loss) where no Euclidean-closer neighbor exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.weights import InteractionWeights
from repro.hardware.topology import Topology


@dataclass(frozen=True)
class SwapProposal:
    """A candidate SWAP between two sites, with its routing score."""

    site_a: int
    site_b: int
    score: float
    #: True when chosen by the BFS fallback rather than the greedy score.
    via_path_fallback: bool = False

    @property
    def sites(self) -> Tuple[int, int]:
        return (self.site_a, self.site_b)


def gate_span(sites: Sequence[int], topology: Topology) -> float:
    """Max pairwise distance among a gate's operand sites."""
    rows = topology.grid.distance_rows()
    best = 0.0
    for i in range(len(sites)):
        row = rows[sites[i]]
        for j in range(i + 1, len(sites)):
            dist = row[sites[j]]
            if dist > best:
                best = dist
    return best


def propose_swap(
    gate_qubits: Sequence[int],
    phi: Dict[int, int],
    inverse_phi: Dict[int, int],
    topology: Topology,
    weights: InteractionWeights,
) -> Optional[SwapProposal]:
    """Best single SWAP bringing one operand of the gate closer.

    Evaluates every operand ``u`` against every active neighbor ``h`` of
    its site that strictly reduces ``u``'s maximum distance to the gate's
    other operands, scoring each by the paper's function.  Falls back to
    one hop along a BFS path when the Euclidean-greedy candidate set is
    empty (possible on topologies with holes).  Returns ``None`` only when
    even BFS finds no way to bring the operands together.
    """
    grid = topology.grid
    rows = grid.distance_rows()
    ntable = grid.neighbor_table(topology.max_interaction_distance)
    lost = topology.lost_view
    lookup_displaced = inverse_phi.get
    # Unrolled partner handling for the 2- and 3-operand gates the native
    # set produces (a genexpr max() per candidate dominates otherwise);
    # gates with repeated operands fall back to the generic path.
    arity = len(gate_qubits)
    if arity == 2:
        if gate_qubits[0] == gate_qubits[1]:
            arity = -1
    elif arity == 3:
        qa, qb, qc = gate_qubits
        if qa == qb or qa == qc or qb == qc:
            arity = -1
    else:
        arity = -1
    best_a = best_b = -1
    best_score = 0.0
    have_best = False
    for u in gate_qubits:
        site_u = phi[u]
        row_u = rows[site_u]
        p0 = p1 = -1
        partner_sites: Tuple[int, ...] = ()
        if arity == 2:
            p0 = phi[gate_qubits[1] if u == gate_qubits[0] else gate_qubits[0]]
            span_limit = row_u[p0] - 1e-9
        elif arity == 3:
            qa, qb, qc = gate_qubits
            if u == qa:
                p0, p1 = phi[qb], phi[qc]
            elif u == qb:
                p0, p1 = phi[qa], phi[qc]
            else:
                p0, p1 = phi[qa], phi[qb]
            d0, d1 = row_u[p0], row_u[p1]
            span_limit = (d0 if d0 >= d1 else d1) - 1e-9
        else:
            partner_sites = tuple(phi[v] for v in gate_qubits if v != u)
            span_limit = max(row_u[p] for p in partner_sites) - 1e-9
        for h in ntable[site_u]:
            if h in lost:
                continue
            # Geometry first: the strict-progress span test eliminates
            # nearly every candidate, so it runs before the (costlier)
            # same-gate-operand lookup.  Both checks are side-effect-free
            # filters, so the surviving candidate set is order-independent.
            row_h = rows[h]
            if arity == 2:
                if row_h[p0] >= span_limit:
                    continue
            elif arity == 3:
                d0, d1 = row_h[p0], row_h[p1]
                if (d0 if d0 >= d1 else d1) >= span_limit:
                    continue
            elif max(row_h[p] for p in partner_sites) >= span_limit:
                continue
            if lookup_displaced(h) in gate_qubits:
                # Swapping two operands of the same gate permutes them but
                # leaves the operand site set (and the span) unchanged.
                continue
            score = _score_swap(u, site_u, h, phi, inverse_phi, weights, rows)
            if (not have_best or score > best_score or (
                score == best_score and (site_u, h) < (best_a, best_b)
            )):
                best_a, best_b, best_score = site_u, h, score
                have_best = True
    if have_best:
        return SwapProposal(best_a, best_b, best_score)
    return _bfs_fallback(gate_qubits, phi, topology)


def _score_swap(
    u: int,
    site_u: int,
    target_site: int,
    phi: Dict[int, int],
    inverse_phi: Dict[int, int],
    weights: InteractionWeights,
    rows: List[List[float]],
) -> float:
    """The paper's routing score for moving ``u`` from its site to
    ``target_site`` (displacing whatever sits there)."""
    score = 0.0
    row_u = rows[site_u]
    row_t = rows[target_site]
    displaced = inverse_phi.get(target_site)
    for v, weight in weights.partners(u).items():
        if v == u or v not in phi:
            continue
        site_v = phi[v]
        if v == displaced:
            # The displaced qubit is the partner itself; after the SWAP
            # their distance is unchanged (they trade places), so skip.
            continue
        score += (row_u[site_v] - row_t[site_v]) * weight
    if displaced is not None and displaced != u:
        for v, weight in weights.partners(displaced).items():
            if v == displaced or v not in phi or v == u:
                continue
            site_v = phi[v]
            # Displaced qubit moves from target_site to site_u; penalize
            # (negative contribution) if that takes it away from partners.
            score += (row_t[site_v] - row_u[site_v]) * weight
    return score


def _bfs_fallback(
    gate_qubits: Sequence[int],
    phi: Dict[int, int],
    topology: Topology,
) -> Optional[SwapProposal]:
    """One hop along a shortest active path between the farthest operand
    pair.  Returns ``None`` when the pair is disconnected."""
    # Pick the farthest pair; walk u one hop toward v.
    rows = topology.grid.distance_rows()
    best_pair: Optional[Tuple[int, int]] = None
    best_dist = -1.0
    for i, u in enumerate(gate_qubits):
        row_u = rows[phi[u]]
        for v in gate_qubits[i + 1:]:
            dist = row_u[phi[v]]
            if dist > best_dist:
                best_dist = dist
                best_pair = (u, v)
    if best_pair is None:
        return None
    site_u, site_v = phi[best_pair[0]], phi[best_pair[1]]
    path = topology.shortest_path(site_u, site_v)
    if path is None or len(path) < 3:
        # No path, or the operands are already direct neighbors (swapping
        # a pair with itself would achieve nothing).
        return None
    return SwapProposal(site_u, path[1], 0.0, via_path_fallback=True)


def reroute_path_swaps(
    site_a: int,
    site_b: int,
    topology: Topology,
) -> Optional[List[Tuple[int, int]]]:
    """SWAP chain bringing the atom at ``site_a`` within the MID of
    ``site_b``, used by the Minor Rerouting loss strategy (§VI).

    Walks a shortest active path and swaps until the moving atom's current
    site is within interaction distance of ``site_b``.  Returns the list
    of (from, to) swaps, possibly empty when already in range, or ``None``
    when no path exists.
    """
    if topology.distance(site_a, site_b) <= topology.max_interaction_distance + 1e-9:
        return [] if topology.is_active(site_a) and topology.is_active(site_b) else None
    path = topology.shortest_path(site_a, site_b)
    if path is None:
        return None
    swaps: List[Tuple[int, int]] = []
    current = site_a
    for nxt in path[1:]:
        if topology.distance(current, site_b) <= topology.max_interaction_distance + 1e-9:
            break
        swaps.append((current, nxt))
        current = nxt
    return swaps
