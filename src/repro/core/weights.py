"""Lookahead interaction weights (§III-A).

The weighted interaction graph drives both placement and routing: program
qubits ``u, v`` get weight

    w(u, v) = sum_{l >= l_c} e^{-decay * |l_c - l|}

summed over future DAG layers ``l`` containing a gate acting on both
(every operand pair, for multiqubit gates).  ``l_c`` is the current
frontier layer, so gates about to execute dominate and distant ones decay
exponentially.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Tuple

from repro.circuits.dag import CircuitDag, Frontier

Pair = Tuple[int, int]


class InteractionWeights:
    """A symmetric sparse weight map over program-qubit pairs."""

    def __init__(self) -> None:
        self._weights: Dict[Pair, float] = defaultdict(float)
        self._per_qubit: Dict[int, Dict[int, float]] = defaultdict(dict)

    @staticmethod
    def _key(u: int, v: int) -> Pair:
        return (u, v) if u <= v else (v, u)

    def add(self, u: int, v: int, weight: float) -> None:
        self._weights[self._key(u, v)] += weight
        self._per_qubit[u][v] = self._per_qubit[u].get(v, 0.0) + weight
        self._per_qubit[v][u] = self._per_qubit[v].get(u, 0.0) + weight

    def weight(self, u: int, v: int) -> float:
        return self._weights.get(self._key(u, v), 0.0)

    def partners(self, u: int) -> Dict[int, float]:
        """All qubits with nonzero weight to ``u`` and those weights."""
        return self._per_qubit.get(u, {})

    def total_weight(self, u: int) -> float:
        return sum(self._per_qubit.get(u, {}).values())

    def heaviest_pair(self) -> Pair:
        if not self._weights:
            raise ValueError("no interactions recorded")
        # Deterministic tie-break on the pair itself.
        return max(self._weights, key=lambda p: (self._weights[p], (-p[0], -p[1])))

    def pairs(self) -> List[Pair]:
        return list(self._weights)

    def __len__(self) -> int:
        return len(self._weights)


def weights_from_layers(
    layers: List[List[int]],
    dag: CircuitDag,
    decay: float = 1.0,
) -> InteractionWeights:
    """Build weights from an explicit layer structure.

    ``layers[0]`` is the frontier (``l = l_c``), so the weight contribution
    of a gate in ``layers[k]`` is ``e^{-decay * k}``.

    Accumulation order matters: contributions are added gate by gate in
    (layer, gate, pair) order, exactly as :meth:`InteractionWeights.add`
    would — float sums stay bit-identical to the naive loop.
    """
    weights = InteractionWeights()
    pair_weights = weights._weights
    per_qubit = weights._per_qubit
    for offset, layer in enumerate(layers):
        factor = math.exp(-decay * offset)
        for gate_idx in layer:
            for u, v in dag.weight_pairs(gate_idx):
                key = (u, v) if u <= v else (v, u)
                pair_weights[key] += factor
                pu = per_qubit[u]
                pu[v] = pu.get(v, 0.0) + factor
                pv = per_qubit[v]
                pv[u] = pv.get(u, 0.0) + factor
    return weights


def initial_weights(
    dag: CircuitDag, max_layers: int = 40, decay: float = 1.0
) -> InteractionWeights:
    """Weights as seen from the start of the program (placement view)."""
    layers = dag.layers()[:max_layers]
    return weights_from_layers(layers, dag, decay=decay)


def frontier_weights(
    frontier: Frontier, max_layers: int = 10, decay: float = 1.0
) -> InteractionWeights:
    """Weights as seen from the current execution frontier (routing view)."""
    layers = frontier.remaining_layers(max_layers)
    return weights_from_layers(layers, frontier.dag, decay=decay)
