"""Compiler correctness validation.

The paper validates its compiler against Qiskit at MID 1 with no zones
(§III-A).  Offline, we validate more strongly: the compiled schedule,
replayed as a flat circuit over physical sites, must be *unitarily
equivalent* to the source circuit modulo the initial and final layouts.
"""

from __future__ import annotations

from repro.core.result import CompiledProgram
from repro.sim.equivalence import equivalent_under_layouts
from repro.utils.rng import RngLike


def check_compiled(
    program: CompiledProgram,
    trials: int = 6,
    rng: RngLike = 0,
) -> bool:
    """Statistically verify a compiled program against its source.

    Embeds random basis states through the initial layout, runs the
    physical schedule, and compares against the source circuit through
    the final layout.  Only practical for programs on small grids
    (sites <= ~14); the test suite covers 3x3 and 4x3 devices.
    """
    physical = program.to_physical_circuit()
    return equivalent_under_layouts(
        program.source,
        physical,
        program.initial_layout,
        program.final_layout,
        trials=trials,
        rng=rng,
    )
