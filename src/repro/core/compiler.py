"""Top-level compile entry point.

``compile_circuit(circuit, topology, config)`` runs the full §III-A
pipeline:

1. **Lowering** — gates wider than ``config.native_max_arity`` (or wider
   than the topology can ever bring into mutual range) are decomposed.
   At MID 1 even a Toffoli is impossible (three atoms cannot be pairwise
   adjacent at distance 1 on a square grid), so it is decomposed — exactly
   the paper's observation in §IV-B.
2. **Placement** — greedy weighted placement at the device center.
3. **Routing + scheduling** — the zone-aware lookahead scheduler.

The result is a :class:`~repro.core.result.CompiledProgram`.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from repro.circuits.circuit import Circuit
from repro.circuits.decompose import decompose_circuit
from repro.core.config import CompilerConfig
from repro.core.errors import CompilationError
from repro.core.mapping import initial_mapping
from repro.core.result import CompiledProgram
from repro.core.scheduler import schedule_circuit
from repro.core.weights import initial_weights
from repro.circuits.dag import CircuitDag
from repro.hardware.topology import Topology


def max_native_arity_for_distance(max_interaction_distance: float) -> int:
    """Largest gate arity executable at a given MID on a square grid.

    A k-qubit gate needs k atoms pairwise within the MID.  At distance 1
    only pairs fit (a third atom cannot be at distance <= 1 from both).
    At distance >= sqrt(2) a 2x2 block hosts 4 mutually-in-range atoms,
    and the count grows with the distance; we cap the answer at 8 since
    nothing in the library emits wider native gates.
    """
    if max_interaction_distance < math.sqrt(2.0) - 1e-9:
        return 2
    if max_interaction_distance < 2.0:
        return 4
    return 8


def compile_circuit(
    circuit: Circuit,
    topology: Topology,
    config: Optional[CompilerConfig] = None,
) -> CompiledProgram:
    """Compile ``circuit`` for ``topology`` under ``config``.

    The topology's own ``max_interaction_distance`` takes precedence when
    it differs from the config (the config is copied with the topology's
    MID), so callers can't accidentally compile for a different range than
    they execute on.
    """
    if config is None:
        config = CompilerConfig()
    if abs(config.max_interaction_distance - topology.max_interaction_distance) > 1e-9:
        config = config.with_mid(topology.max_interaction_distance)

    start = time.perf_counter()

    lowering_arity = min(
        config.native_max_arity,
        max_native_arity_for_distance(config.max_interaction_distance),
    )
    lowered = decompose_circuit(circuit, keep_swaps=True, max_arity=lowering_arity)

    if lowered.num_qubits > topology.num_active:
        raise CompilationError(
            f"program needs {lowered.num_qubits} qubits "
            f"(incl. decomposition ancillas) but the device has "
            f"{topology.num_active} active atoms"
        )

    dag = CircuitDag(lowered)
    weights = initial_weights(
        dag, config.initial_mapping_layers, config.lookahead_decay
    )
    layout = initial_mapping(lowered.num_qubits, topology, weights)

    schedule, final_layout = schedule_circuit(
        lowered, topology, config, layout, dag=dag
    )

    elapsed = time.perf_counter() - start
    return CompiledProgram(
        source=lowered,
        config=config,
        grid_shape=(topology.grid.rows, topology.grid.cols),
        initial_layout=layout,
        final_layout=final_layout,
        schedule=schedule,
        compile_seconds=elapsed,
    )
