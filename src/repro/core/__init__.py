"""The neutral-atom compiler: the paper's primary contribution."""

from repro.core.compiler import compile_circuit, max_native_arity_for_distance
from repro.core.config import CompilerConfig
from repro.core.errors import (
    CompilationError,
    DisconnectedTopologyError,
    SchedulingStalledError,
)
from repro.core.mapping import MappingError, initial_mapping
from repro.core.result import CompiledProgram, ScheduledOp
from repro.core.routing import SwapProposal, propose_swap, reroute_path_swaps
from repro.core.validation import check_compiled
from repro.core.weights import (
    InteractionWeights,
    frontier_weights,
    initial_weights,
)

__all__ = [
    "CompilationError",
    "CompiledProgram",
    "CompilerConfig",
    "DisconnectedTopologyError",
    "InteractionWeights",
    "MappingError",
    "ScheduledOp",
    "SchedulingStalledError",
    "SwapProposal",
    "check_compiled",
    "compile_circuit",
    "frontier_weights",
    "initial_mapping",
    "initial_weights",
    "max_native_arity_for_distance",
    "propose_swap",
    "reroute_path_swaps",
]
