"""Compiled-program artifact.

A :class:`CompiledProgram` is the compiler's output: the timestep-by-
timestep schedule of operations pinned to physical sites, the initial and
final layouts, and every metric the paper reports (gate count, depth,
SWAP count, duration, per-arity census).

The atom-loss strategies (§VI) replay this artifact: they need each
operation's *sites at execution time* to re-check interaction distances
after virtual remapping shifts atoms around.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.core.config import CompilerConfig
from repro.hardware.noise import NoiseModel


@dataclass(frozen=True)
class ScheduledOp:
    """One operation pinned to sites and a timestep."""

    #: The gate in *program-qubit* terms, or ``None`` for a routing SWAP
    #: (whose operands may include spare atoms that carry no program qubit).
    gate: Optional[Gate]
    #: Physical sites the operation touches, in operand order.
    sites: Tuple[int, ...]
    #: Scheduler timestep (0-based).
    timestep: int
    #: Index of the originating gate in the source circuit; None for SWAPs.
    source_index: Optional[int] = None

    @property
    def is_swap(self) -> bool:
        return self.gate is None

    @property
    def name(self) -> str:
        return "swap" if self.gate is None else self.gate.name

    @property
    def arity(self) -> int:
        return len(self.sites)

    @property
    def is_multiqubit(self) -> bool:
        return len(self.sites) >= 2

    def __str__(self) -> str:
        label = self.name
        sites = ", ".join(str(s) for s in self.sites)
        return f"t{self.timestep}: {label} @ sites({sites})"


@dataclass
class CompiledProgram:
    """Full result of compiling one circuit onto one topology."""

    source: Circuit
    config: CompilerConfig
    grid_shape: Tuple[int, int]
    #: program qubit -> site, before the first timestep.
    initial_layout: Dict[int, int]
    #: program qubit -> site, after the last timestep.
    final_layout: Dict[int, int]
    #: Ops grouped by timestep.
    schedule: List[List[ScheduledOp]]
    #: Wall-clock seconds the compiler spent (drives Fig 12's recompile cost).
    compile_seconds: float = 0.0

    # -- basic censuses ------------------------------------------------------------

    @property
    def ops(self) -> List[ScheduledOp]:
        return [op for timestep in self.schedule for op in timestep]

    @property
    def swap_count(self) -> int:
        return sum(1 for op in self.ops if op.is_swap)

    @property
    def op_count(self) -> int:
        """Scheduled operations, counting each SWAP as one."""
        return len(self.ops)

    def gate_count(self) -> int:
        """The paper's post-compilation gate count (SWAP = 3 CX)."""
        swaps = self.swap_count
        return (self.op_count - swaps) + self.config.swap_gate_cost * swaps

    def counts_by_arity(self) -> Counter:
        """Per-arity census for the §V success model (SWAP = 3 two-qubit).

        The census is a pure function of the (immutable once built)
        schedule, so it is computed once and the shared Counter returned;
        callers only read it.
        """
        counts = self.__dict__.get("_arity_counts")
        if counts is None:
            counts = Counter()
            for op in self.ops:
                if op.is_swap:
                    counts[2] += self.config.swap_gate_cost
                elif not op.gate.is_measurement:
                    counts[op.arity] += 1
            self.__dict__["_arity_counts"] = counts
        return counts

    def depth(self) -> int:
        """Scheduled depth: each timestep costs the max op cost within it
        (1 for a gate, ``swap_depth_cost`` for a SWAP)."""
        total = 0
        for timestep in self.schedule:
            if not timestep:
                continue
            cost = 1
            if any(op.is_swap for op in timestep):
                cost = self.config.swap_depth_cost
            total += cost
        return total

    def _timestep_profiles(self) -> List[Tuple[bool, Tuple[int, ...]]]:
        """Per-timestep ``(has_swap, distinct op arities)`` digest, cached.

        :meth:`duration` only needs the slowest op per timestep, which is a
        function of this digest and the noise model's per-arity gate times
        — not of the full op list.
        """
        profiles = self.__dict__.get("_profiles")
        if profiles is None:
            profiles = []
            for timestep in self.schedule:
                has_swap = False
                arities = set()
                for op in timestep:
                    if op.gate is None:
                        has_swap = True
                    else:
                        arities.add(len(op.sites))
                profiles.append((has_swap, tuple(arities)))
            self.__dict__["_profiles"] = profiles
        return profiles

    def duration(self, noise: NoiseModel) -> float:
        """Wall-clock execution time of one shot under a noise model's
        gate times: per timestep, the slowest op; SWAPs take 3 two-qubit
        gate times.

        Memoized per (frozen) noise model — shot loops re-query the same
        program/noise pair hundreds of times.
        """
        memo = self.__dict__.get("_duration_memo")
        if memo is not None and memo[0] is noise:
            return memo[1]
        total = 0.0
        for has_swap, arities in self._timestep_profiles():
            slowest = 0.0
            if has_swap:
                slowest = 3.0 * noise.duration_of(2)
            for arity in arities:
                length = noise.duration_of(arity)
                if length > slowest:
                    slowest = length
            total += slowest
        self.__dict__["_duration_memo"] = (noise, total)
        return total

    def success_rate(self, noise: NoiseModel) -> float:
        """The §V success estimate for this compiled program."""
        return noise.program_success(self.counts_by_arity(), self.duration(noise))

    # -- site usage (consumed by the loss machinery) --------------------------------

    def used_sites(self) -> set:
        """Every site any op (or layout) touches over the program."""
        sites = set(self.initial_layout.values())
        for op in self.ops:
            sites.update(op.sites)
        return sites

    def measured_sites(self) -> set:
        """Sites read out at the end (final homes of all program qubits)."""
        return set(self.final_layout.values())

    def multiqubit_ops(self) -> List[ScheduledOp]:
        return [op for op in self.ops if op.is_multiqubit]

    # -- export -----------------------------------------------------------------------

    def to_physical_circuit(self) -> Circuit:
        """The schedule as a flat circuit over site indices.

        Feeding this to the statevector simulator (with program qubits
        embedded at their initial layout) must reproduce the source
        circuit — the equivalence check in
        :mod:`repro.core.validation`.
        """
        num_sites = self.grid_shape[0] * self.grid_shape[1]
        circuit = Circuit(num_sites)
        for op in self.ops:
            if op.is_swap:
                circuit.append(Gate("swap", op.sites))
            else:
                circuit.append(Gate(op.gate.name, op.sites, op.gate.params))
        return circuit

    def summary(self) -> Dict[str, float]:
        """Headline metrics as a plain dict (handy for tables)."""
        return {
            "qubits": self.source.num_qubits,
            "mid": self.config.max_interaction_distance,
            "ops": self.op_count,
            "gates": self.gate_count(),
            "swaps": self.swap_count,
            "depth": self.depth(),
            "timesteps": len(self.schedule),
        }

    def __getstate__(self) -> Dict:
        # The lazily-built metric caches are derived data; keep pickled
        # artifacts (compile cache, task payloads) byte-stable regardless
        # of which metrics were queried before pickling.
        state = dict(self.__dict__)
        state.pop("_arity_counts", None)
        state.pop("_profiles", None)
        state.pop("_duration_memo", None)
        return state

    def __repr__(self) -> str:
        return (
            f"CompiledProgram(qubits={self.source.num_qubits}, "
            f"mid={self.config.max_interaction_distance}, "
            f"gates={self.gate_count()}, depth={self.depth()}, "
            f"swaps={self.swap_count})"
        )
