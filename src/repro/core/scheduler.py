"""Zone-aware layer scheduler (§III-A).

Proceeds timestep by timestep.  In each timestep it greedily commits, in
program order:

1. every frontier gate whose operands are within the MID and whose
   restriction zone avoids the zones already committed this timestep;
2. one routing SWAP per remaining too-far frontier gate, chosen by
   :func:`repro.core.routing.propose_swap`, subject to the same zone and
   busy-site constraints ("the SWAP is executed if it can run parallel
   with the other executable operations, otherwise we must wait").

SWAP effects apply between timesteps (parallel semantics).  A safety
valve raises :class:`SchedulingStalledError` if the loop exceeds a
generous timestep budget, which in practice only happens on disconnected
topologies that slipped past the router.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDag, Frontier
from repro.core.config import CompilerConfig
from repro.core.errors import DisconnectedTopologyError, SchedulingStalledError
from repro.core.result import ScheduledOp
from repro.core.routing import propose_swap
from repro.core.weights import frontier_weights
from repro.hardware.restriction import RestrictionModel, Zone
from repro.hardware.topology import Topology


def schedule_circuit(
    circuit: Circuit,
    topology: Topology,
    config: CompilerConfig,
    initial_mapping: Dict[int, int],
    dag: Optional[CircuitDag] = None,
) -> Tuple[List[List[ScheduledOp]], Dict[int, int]]:
    """Route and schedule ``circuit`` starting from ``initial_mapping``.

    Returns ``(schedule, final_mapping)`` where the schedule is a list of
    timesteps, each a list of :class:`ScheduledOp`.  Callers that already
    built a :class:`CircuitDag` for ``circuit`` (the compile pipeline
    does, for placement weights) may pass it to avoid a rebuild.
    """
    if dag is None:
        dag = CircuitDag(circuit)
    frontier = Frontier(dag)
    restriction = config.restriction_model()
    grid = topology.grid

    phi: Dict[int, int] = dict(initial_mapping)
    inverse_phi: Dict[int, int] = {site: q for q, site in phi.items()}
    if len(inverse_phi) != len(phi):
        raise ValueError("initial mapping is not injective")

    schedule: List[List[ScheduledOp]] = []
    max_timesteps = config.max_timestep_factor * (len(circuit) + 1)
    dag_gate = dag.gate
    #: sites tuple -> Zone.  Zones are immutable functions of the operand
    #: sites (restriction and grid are fixed per schedule), and the same
    #: few site tuples recur timestep after timestep.
    zone_cache: Dict[Tuple[int, ...], Zone] = {}

    # The lookahead weights are pure functions of the set of completed
    # gates, so they are computed lazily (only when a SWAP must actually
    # be scored) and reused across consecutive swap-only timesteps.
    cached_weights = None
    cached_num_done = -1

    def current_weights():
        nonlocal cached_weights, cached_num_done
        if cached_num_done != frontier.num_done:
            cached_weights = frontier_weights(
                frontier, config.lookahead_layers, config.lookahead_decay
            )
            cached_num_done = frontier.num_done
        return cached_weights

    while not frontier.all_done():
        if len(schedule) >= max_timesteps:
            raise SchedulingStalledError(
                f"no progress after {len(schedule)} timesteps "
                f"({frontier.num_done}/{len(dag)} gates scheduled)"
            )
        timestep_index = len(schedule)
        ops: List[ScheduledOp] = []
        zones: List[Zone] = []
        busy: Set[int] = set()
        completed: List[int] = []
        pending_swaps: List[Tuple[int, int]] = []

        ready = sorted(frontier.ready)
        blocked_far: List[int] = []
        track_zones = not restriction.disabled

        site_of = phi.__getitem__

        # Phase 1: execute everything already in range.
        for idx in ready:
            gate = dag_gate(idx)
            sites = tuple(map(site_of, gate.qubits))
            if not busy.isdisjoint(sites):
                continue
            if gate.arity >= 2 and not topology.can_interact(sites):
                blocked_far.append(idx)
                continue
            if not _zone_fits(sites, zones, restriction, grid, zone_cache):
                continue
            ops.append(ScheduledOp(gate, sites, timestep_index, source_index=idx))
            if track_zones:
                zones.append(_zone_of(sites, restriction, grid, zone_cache))
            busy.update(sites)
            completed.append(idx)

        # Phase 2: one routing SWAP per still-blocked gate, if it fits.
        for idx in blocked_far:
            gate = dag_gate(idx)
            if not busy.isdisjoint(map(site_of, gate.qubits)):
                continue
            proposal = propose_swap(
                gate.qubits, phi, inverse_phi, topology, current_weights()
            )
            if proposal is None:
                if not ops and not pending_swaps:
                    raise DisconnectedTopologyError(
                        f"cannot route gate {gate} — interaction graph "
                        "is disconnected"
                    )
                continue
            swap_sites = proposal.sites
            if not busy.isdisjoint(swap_sites):
                continue
            if not _zone_fits(swap_sites, zones, restriction, grid, zone_cache):
                continue
            ops.append(
                ScheduledOp(None, swap_sites, timestep_index, source_index=None)
            )
            if track_zones:
                zones.append(_zone_of(swap_sites, restriction, grid, zone_cache))
            busy.update(swap_sites)
            pending_swaps.append(swap_sites)

        if not ops:
            raise SchedulingStalledError(
                "timestep committed no operations; "
                f"{len(blocked_far)} gates blocked"
            )

        # Commit: mark gates done, then apply SWAP permutations.
        for idx in completed:
            frontier.complete(idx)
        for site_a, site_b in pending_swaps:
            _apply_swap(phi, inverse_phi, site_a, site_b)
        schedule.append(ops)

    return schedule, phi


def _zone_of(
    sites: Tuple[int, ...],
    restriction: RestrictionModel,
    grid,
    cache: Optional[Dict[Tuple[int, ...], Zone]] = None,
) -> Zone:
    if cache is not None:
        zone = cache.get(sites)
        if zone is not None:
            return zone
    zone = _build_zone(sites, restriction, grid)
    if cache is not None:
        cache[sites] = zone
    return zone


def _build_zone(sites: Tuple[int, ...], restriction: RestrictionModel, grid) -> Zone:
    positions_list = grid.positions_list()
    n = len(sites)
    if n == 1:
        span = 0.0
    elif n == 2:
        span = grid.distance_rows()[sites[0]][sites[1]]
    else:
        rows = grid.distance_rows()
        span = 0.0
        for i in range(n):
            row = rows[sites[i]]
            for j in range(i + 1, n):
                dist = row[sites[j]]
                if dist > span:
                    span = dist
    return restriction.zone_for_span(
        [positions_list[s] for s in sites], span
    )


def _zone_fits(
    sites: Tuple[int, ...],
    committed: List[Zone],
    restriction: RestrictionModel,
    grid,
    cache: Optional[Dict[Tuple[int, ...], Zone]] = None,
) -> bool:
    """Whether a gate at ``sites`` is zone-compatible with this timestep.

    Shared-site conflicts are checked by the caller via the busy set, so
    this is purely the zone-intersection test (always true when zones are
    disabled).
    """
    if restriction.disabled or not committed:
        return True
    zone = _zone_of(sites, restriction, grid, cache)
    return not any(zone.intersects(other) for other in committed)


def _apply_swap(
    phi: Dict[int, int],
    inverse_phi: Dict[int, int],
    site_a: int,
    site_b: int,
) -> None:
    """Exchange the (possibly absent) program qubits at two sites."""
    qubit_a: Optional[int] = inverse_phi.pop(site_a, None)
    qubit_b: Optional[int] = inverse_phi.pop(site_b, None)
    if qubit_a is not None:
        phi[qubit_a] = site_b
        inverse_phi[site_b] = qubit_a
    if qubit_b is not None:
        phi[qubit_b] = site_a
        inverse_phi[site_a] = qubit_b
