"""Compiler configuration.

One :class:`CompilerConfig` captures every knob the paper sweeps:

* ``max_interaction_distance`` — the MID, from 1 (superconducting-like)
  to the device diagonal (all-to-all);
* restriction-zone shape and scale (``f(d) = d/2`` by default, ``"none"``
  for the idealized Fig 5 baseline, ``zone_scale > 1`` for the crosstalk
  extension mentioned in §IV-A);
* ``native_max_arity`` — 3 to execute Toffolis natively, 2 to force the
  decomposed mode of Fig 6;
* lookahead depth/decay of the §III-A weight function.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.hardware.restriction import RADIUS_FUNCTIONS, RestrictionModel


@dataclass(frozen=True)
class CompilerConfig:
    """All policy knobs for one compilation."""

    #: Maximum Euclidean interaction distance (>= 1).
    max_interaction_distance: float = 3.0
    #: Restriction-zone radius as a function of gate span: "half" (paper),
    #: "full", or "none" (idealized parallel baseline).
    restriction_radius: str = "half"
    #: Multiplier on the zone radius (crosstalk-suppression extension).
    zone_scale: float = 1.0
    #: Largest gate arity executed natively; larger gates are decomposed
    #: before mapping.  2 reproduces the paper's "decomposed" mode.
    native_max_arity: int = 3
    #: How many future DAG layers the lookahead weight function examines.
    lookahead_layers: int = 10
    #: Exponential decay rate of the lookahead weight, w = e^{-decay * |dl|}.
    lookahead_decay: float = 1.0
    #: Layers examined when computing the *initial* placement weights
    #: (deeper than the routing lookahead since placement is one-shot).
    initial_mapping_layers: int = 40
    #: Depth units charged per routing SWAP (3 = its CX decomposition).
    swap_depth_cost: int = 3
    #: Gate-count units charged per routing SWAP in reported metrics.
    swap_gate_cost: int = 3
    #: Hard cap on scheduler timesteps, as a multiple of (gates + 1); a
    #: compile exceeding it raises instead of looping forever.
    max_timestep_factor: int = 200

    def __post_init__(self) -> None:
        if self.max_interaction_distance < 1.0:
            raise ValueError("max_interaction_distance must be >= 1")
        if self.restriction_radius not in RADIUS_FUNCTIONS:
            raise ValueError(
                f"restriction_radius must be one of {sorted(RADIUS_FUNCTIONS)}"
            )
        if self.zone_scale < 0:
            raise ValueError("zone_scale must be non-negative")
        if self.native_max_arity < 2:
            raise ValueError("native_max_arity must be >= 2")
        if self.lookahead_layers < 1:
            raise ValueError("lookahead_layers must be >= 1")
        if self.lookahead_decay <= 0:
            raise ValueError("lookahead_decay must be positive")
        if self.swap_depth_cost < 1 or self.swap_gate_cost < 1:
            raise ValueError("swap costs must be >= 1")

    # -- derived -----------------------------------------------------------------

    def restriction_model(self) -> RestrictionModel:
        return RestrictionModel(
            RADIUS_FUNCTIONS[self.restriction_radius], self.zone_scale
        )

    @property
    def decompose_to_two_qubit(self) -> bool:
        return self.native_max_arity == 2

    # -- variants ----------------------------------------------------------------

    def with_mid(self, max_interaction_distance: float) -> "CompilerConfig":
        return replace(self, max_interaction_distance=max_interaction_distance)

    def without_zones(self) -> "CompilerConfig":
        """The idealized fully-parallel baseline of Fig 5."""
        return replace(self, restriction_radius="none")

    def decomposed(self) -> "CompilerConfig":
        """Force lowering to one- and two-qubit gates (Fig 6 baseline)."""
        return replace(self, native_max_arity=2)

    @classmethod
    def neutral_atom(
        cls, max_interaction_distance: float = 3.0, **overrides
    ) -> "CompilerConfig":
        """The paper's NA configuration at a given MID."""
        return cls(max_interaction_distance=max_interaction_distance, **overrides)

    @classmethod
    def superconducting_like(cls, **overrides) -> "CompilerConfig":
        """MID 1, no zones, all gates decomposed — emulates an SC grid device.

        This is both the paper's comparison baseline (§V) and its
        compiler-validation configuration (§III-A).
        """
        defaults = dict(
            max_interaction_distance=1.0,
            restriction_radius="none",
            native_max_arity=2,
        )
        defaults.update(overrides)
        return cls(**defaults)
