"""HTTP transport for the serving layer.

A :class:`ThreadingHTTPServer` whose handler forwards every request to a
:class:`repro.serve.app.ServeApp` — the transport adds nothing but
sockets, headers, and an access-log line on stderr (stdout stays clean,
the same contract as the CLI).  ``build_server`` wires the full stack:

    store + compile cache
        -> per-job Session factory (read-through, shared cache/store)
        -> JobQueue (N worker threads, in-flight dedup)
        -> ServeApp (routing + metrics)
        -> ReproHTTPServer

Thread model: the HTTP server spawns one thread per connection (cheap:
handlers only route, queue, and read the store), while experiment
execution is bounded by the job queue's worker count.  A ``wait=true``
run request parks its connection thread on the job's completion event
without occupying a queue worker.
"""

from __future__ import annotations

import os
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.api.circuits import CircuitStore
from repro.api.session import Session
from repro.api.store import ResultStore
from repro.exec.cache import CompileCache
from repro.fleet.protocol import DEFAULT_LEASE_TTL
from repro.obs import TRACE_HEADER, Tracer, TraceStore
from repro.serve.app import ServeApp
from repro.serve.jobs import JobQueue
from repro.serve.metrics import ServeMetrics
from repro.serve.sweeps import SweepTable


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Transport shim: socket + headers in, ServeApp response out."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def _dispatch(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length > 0 else b""
        response = self.server.app.handle(
            self.command, self.path, body,
            trace=self.headers.get(TRACE_HEADER))
        if response.stream is not None:
            self._stream(response)
            return
        self.send_response(response.status)
        # JSON is the default; a route serving another media type
        # (GET /circuits/<digest> returns QASM text) sets its own.
        if "Content-Type" not in response.headers:
            self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _stream(self, response) -> None:
        """Write a streaming response with chunked transfer-encoding,
        flushing per chunk so consumers see each line the moment the
        app yields it.

        A dropped client (BrokenPipe/ConnectionReset) just ends the
        stream: the generator is closed and the connection discarded —
        the underlying jobs are queue-owned, so nothing leaks.
        """
        self.send_response(response.status)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        try:
            for chunk in response.stream:
                if not chunk:
                    continue
                self.wfile.write(f"{len(chunk):x}\r\n".encode())
                self.wfile.write(chunk)
                self.wfile.write(b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            self.close_connection = True
        finally:
            close = getattr(response.stream, "close", None)
            if close is not None:
                close()

    do_GET = _dispatch
    do_POST = _dispatch

    def log_message(self, format: str, *args) -> None:
        # Access log to stderr, like every other repro diagnostic; the
        # server owns no stdout at all.
        if not getattr(self.server, "quiet", False):
            print(f"[serve] {self.address_string()} {format % args}",
                  file=sys.stderr)


class ReproHTTPServer(ThreadingHTTPServer):
    """The serving endpoint: one app, one queue, per-connection threads."""

    daemon_threads = True

    def __init__(self, address, app: ServeApp, quiet: bool = False):
        super().__init__(address, ReproRequestHandler)
        self.app = app
        self.quiet = quiet

    @property
    def port(self) -> int:
        return self.server_address[1]

    def close(self) -> None:
        """Stop accepting connections and drain the job queue."""
        self.server_close()
        self.app.jobs.shutdown(wait=True)


def build_server(
    host: str,
    port: int,
    store_dir: str,
    cache_dir: Optional[str] = None,
    workers: int = 2,
    quiet: bool = False,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    circuit_dir: Optional[str] = None,
    trace_dir: Optional[str] = None,
) -> ReproHTTPServer:
    """Assemble the full serving stack on ``host:port`` (0 = ephemeral).

    All jobs share one compile cache, one result store, and one circuit
    store (uploaded workloads; defaults to ``<store_dir>/circuits``);
    each job gets its own read-through :class:`Session` (sweeps run
    inline, ``jobs=1`` — concurrency comes from the queue's ``workers``
    threads, not from nested process pools), wired to the shared circuit
    store so jobs resolve ``circuit:<digest>`` workloads against exactly
    what was uploaded.  ``workers=0`` starts no local execution threads
    at all: every job waits for a fleet worker (``python -m repro
    worker``) to claim it over the ``/fleet/*`` routes, under a lease of
    ``lease_ttl`` seconds.  ``trace_dir`` enables end-to-end tracing
    (see :mod:`repro.obs`): spans from request handling, the queue,
    executing sessions, and remote exporters land in an append-only
    JSONL store there, browsable via ``GET /trace/<id>``; ``None``
    records nothing.
    """
    store = ResultStore(store_dir)
    cache = CompileCache(cache_dir)
    circuits = CircuitStore(circuit_dir
                            or os.path.join(store.path, "circuits"))
    metrics = ServeMetrics()
    tracer = None
    if trace_dir is not None:
        # The tracer tees span durations into the latency histograms
        # (compile wall, queue wait), so one scrape covers both worlds.
        tracer = Tracer(TraceStore(trace_dir), service="serve",
                        observer=metrics.observe_span)
    jobs = JobQueue(
        lambda: Session(jobs=1, cache=cache, store=store,
                        circuits=circuits),
        workers=workers,
        metrics=metrics,
        store=store,
        lease_ttl=lease_ttl,
        tracer=tracer,
    )
    sweeps = SweepTable(store, jobs, metrics)
    app = ServeApp(store=store, jobs=jobs, metrics=metrics, sweeps=sweeps,
                   circuits=circuits, tracer=tracer)
    return ReproHTTPServer((host, port), app, quiet=quiet)
