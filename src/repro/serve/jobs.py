"""Background execution: the serving layer's job queue.

A ``POST /run`` that misses the result store does not compute inline in
the request handler — it becomes a :class:`Job` on a :class:`JobQueue`,
executed by one of N worker threads **or pulled by a fleet worker over
HTTP** (:mod:`repro.fleet`): remote workers :meth:`~JobQueue.claim` the
next queued job under a lease, renew it with
:meth:`~JobQueue.heartbeat`, and report the outcome with
:meth:`~JobQueue.complete`; a lease that expires (the worker died or
partitioned) is reaped and the job goes back on the queue for the next
claimant — local thread or remote worker alike.  ``workers=0`` runs the
queue in fleet-only mode.  Three properties matter:

* **In-flight deduplication.**  Concurrent requests for the same store
  key coalesce onto one job (``submit`` returns the existing in-flight
  job), so a thundering herd of identical requests performs exactly one
  execution.  The store-check in the router and ``submit`` are not
  atomic, and do not need to be: every job runs through a read-through
  session, so a job submitted just after an identical one finished
  replays the freshly-stored envelope and executes zero tasks.

* **Per-job session isolation.**  Each job executes under its *own*
  :class:`repro.api.Session` (built by the queue's ``session_factory``),
  sharing the server's compile cache and result store objects but
  nothing else — so ``Session.tasks_executed`` attributes work to the
  job that did it, and two jobs activating their sessions in different
  worker threads never see each other's policy (``contextvars`` scoping
  is per-thread).

* **Observability.**  A job carries its full lifecycle (``queued`` →
  ``running`` → ``done``/``failed``), wall time, task count, and — on
  success — the result envelope, which ``GET /jobs/<id>`` exposes.

``force=True`` jobs opt out of deduplication in both directions: they
exist to recompute, so neither attaching them to an in-flight job nor
letting later requests attach to *them* (and observe a result the
requester did not force) would be correct.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.fleet.leases import LeaseLost, LeaseTable
from repro.fleet.protocol import DEFAULT_LEASE_TTL
from repro.obs import trace as _obs
from repro.serve.metrics import ServeMetrics

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


@dataclass
class Job:
    """One queued experiment execution and its observable lifecycle."""

    id: str
    experiment: str
    key: str
    quick: bool
    params: Dict[str, Any]
    force: bool = False
    status: str = QUEUED
    error: Optional[str] = None
    #: ``to_dict()`` envelope of the result, set when the job succeeds.
    envelope: Optional[Dict[str, Any]] = None
    wall_s: Optional[float] = None
    #: The job session's dispatch counter after the run — zero when the
    #: read-through session replayed a stored envelope.
    tasks_executed: Optional[int] = None
    #: The fleet worker currently holding (or last to hold) this job;
    #: ``None`` for local thread execution.
    worker: Optional[str] = None
    #: Times this job was handed to an executor (> 1 after a reclaim).
    attempts: int = 0
    #: Trace context ``(trace_id, parent_span_id)`` captured at
    #: submission time — ContextVars do not cross the worker-thread
    #: boundary, so the job carries its trace explicitly (and fleet
    #: claim payloads forward it to remote workers).
    trace: Optional[Tuple[str, Optional[str]]] = None
    created_at: float = field(default_factory=time.time)
    #: Enqueue stamps (wall for span display, monotonic for the
    #: interval) backing the queue-wait measurement; reset on requeue.
    _queued_wall: float = field(default_factory=time.time, repr=False)
    _queued_perf: float = field(default_factory=time.perf_counter,
                                repr=False)
    #: ``(wall, perf_counter)`` at lease grant; cleared when the lease
    #: span is emitted (release or expiry).
    _lease_started: Optional[Tuple[float, float]] = field(default=None,
                                                          repr=False)
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)
    #: Callables invoked exactly once when the job reaches a terminal
    #: state (see :meth:`JobQueue.on_done`); sweeps subscribe here.
    _callbacks: list = field(default_factory=list, repr=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; ``True`` unless timed out."""
        return self._done.wait(timeout)

    def describe(self) -> Dict[str, Any]:
        """The JSON shape ``GET /jobs/<id>`` returns."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "experiment": self.experiment,
            "key": self.key,
            "status": self.status,
            "quick": self.quick,
            "force": self.force,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.wall_s is not None:
            payload["wall_s"] = round(self.wall_s, 4)
        if self.tasks_executed is not None:
            payload["tasks_executed"] = self.tasks_executed
        if self.worker is not None:
            payload["worker"] = self.worker
        if self.attempts > 1:
            payload["attempts"] = self.attempts
        if self.trace is not None:
            payload["trace"] = self.trace[0]
        if self.status == DONE:
            payload["result_url"] = f"/results/{self.key}"
        return payload


class JobQueue:
    """N worker threads draining a FIFO of :class:`Job` instances.

    ``session_factory`` builds one fresh read-through
    :class:`repro.api.Session` per job; sharing the underlying
    ``CompileCache``/``ResultStore`` objects between those sessions is
    the factory's (deliberate) choice, not the queue's concern.
    """

    def __init__(self, session_factory: Callable[[], Any], workers: int = 2,
                 metrics: Optional[ServeMetrics] = None,
                 max_finished: int = 1024,
                 store=None,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 tracer: Optional[_obs.Tracer] = None):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if max_finished < 1:
            raise ValueError(f"max_finished must be >= 1, got {max_finished}")
        self._session_factory = session_factory
        #: Terminal jobs retained for GET /jobs/<id>; beyond this the
        #: oldest are forgotten, bounding a long-lived server's memory.
        self._max_finished = max_finished
        self.metrics = metrics if metrics is not None else ServeMetrics()
        #: ResultStore that fleet completions persist envelopes into
        #: (local thread jobs persist through their read-through
        #: sessions instead); ``None`` keeps results in-memory only.
        self._store = store
        #: Tracer the queue records spans through (queue wait, job
        #: execution, lease lifetime); ``None`` records nothing.
        self.tracer = tracer
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        #: store key -> the queued/running (non-force) job computing it.
        self._inflight: Dict[str, Job] = {}
        #: Remote claims, bounded by lease expiry (see repro.fleet).
        self.leases = LeaseTable(ttl=lease_ttl)
        #: worker id -> counters; every fleet worker ever seen.
        self._fleet_workers: Dict[str, Dict[str, Any]] = {}
        self._reaper: Optional[threading.Thread] = None
        self._reaper_stop = threading.Event()
        self._shutdown = False
        #: workers == 0 is fleet-only mode: jobs wait for remote claims.
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-serve-job-{index}")
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission / lookup -----------------------------------------------------

    def submit(self, experiment: str, key: str, quick: bool,
               params: Dict[str, Any],
               force: bool = False) -> Tuple[Job, bool]:
        """Enqueue one execution, coalescing onto an in-flight duplicate.

        Returns ``(job, coalesced)``; ``coalesced`` is ``True`` when the
        returned job was already in flight for the same store key.
        """
        with self._lock:
            if self._shutdown:
                raise RuntimeError("job queue is shut down")
            if not force:
                existing = self._inflight.get(key)
                if existing is not None:
                    self.metrics.count("jobs_coalesced")
                    return existing, True
            job = Job(id=uuid.uuid4().hex[:12], experiment=experiment,
                      key=key, quick=quick, params=dict(params), force=force)
            # Capture the submitting request's trace context (if any):
            # the job crosses thread — possibly host — boundaries, so
            # ambient context stops here and explicit context rides on.
            active = _obs.current()
            if active is not None:
                job.trace = (active.trace_id, active.span_id)
            self._jobs[job.id] = job
            if not force:
                self._inflight[key] = job
            self.metrics.count("jobs_submitted")
            # Enqueue under the lock: a put racing shutdown() could
            # otherwise land behind the worker sentinels and leave the
            # job QUEUED forever (hanging every wait() on it).
            self._queue.put(job)
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def describe(self) -> Dict[str, Any]:
        """Queue-level state for ``GET /metrics``."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            in_flight = len(self._inflight)
        return {
            "workers": len(self._threads),
            "in_flight": in_flight,
            "by_status": dict(sorted(by_status.items())),
        }

    def describe_fleet(self) -> Dict[str, Any]:
        """Fleet-level state for ``GET /metrics``: leases + per-worker."""
        self.reap_expired()
        with self._lock:
            workers = {
                worker_id: dict(stats)
                for worker_id, stats in sorted(self._fleet_workers.items())
            }
        return {
            "workers": workers,
            "leases": self.leases.describe(),
        }

    # -- execution ---------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._run_job(job)

    def _observe_queue_wait(self, job: Job) -> None:
        """Record how long ``job`` sat queued before an executor took it.

        With a traced job the interval becomes a ``queue.wait`` span
        (teed into the histogram by the tracer's observer); untraced
        jobs still feed the histogram directly.
        """
        wait = max(0.0, time.perf_counter() - job._queued_perf)
        if self.tracer is not None and job.trace is not None:
            _obs.record_span(self.tracer, job.trace[0], job.trace[1],
                             "queue.wait", "serve", job._queued_wall, wait,
                             job_id=job.id)
        else:
            self.metrics.observe("queue_wait_seconds", wait)

    def _run_job(self, job: Job) -> None:
        job.status = RUNNING
        job.attempts += 1
        self._observe_queue_wait(job)

        def execute() -> str:
            start = time.perf_counter()
            session = None
            outcome = FAILED
            try:
                # Inside the try: a raising session factory must fail
                # the job, not kill the worker and wedge the in-flight
                # key.
                session = self._session_factory()
                result = session.run(job.experiment, quick=job.quick,
                                     force=job.force, **job.params)
                job.envelope = result.to_dict()
                outcome = DONE
            except BaseException as error:
                # A failed job must never kill a worker.
                job.error = f"{type(error).__name__}: {error}"
            finally:
                job.wall_s = time.perf_counter() - start
                job.tasks_executed = getattr(session, "tasks_executed",
                                             None)
            return outcome

        if self.tracer is not None and job.trace is not None:
            # Worker threads never inherit the submitting request's
            # ContextVars — re-activate the job's trace explicitly.
            # The span closes before _finalize wakes waiters, so a
            # client that saw the job finish can read its whole trace.
            with _obs.activate(self.tracer, job.trace[0], job.trace[1]):
                with _obs.span("job.execute", job_id=job.id,
                               experiment=job.experiment) as handle:
                    outcome = execute()
                    handle.set(status=outcome)
        else:
            outcome = execute()
        self._finalize(job, outcome)

    def _finalize(self, job: Job, outcome: str) -> None:
        """Shared terminal transition for local and fleet execution."""
        if job.wall_s is not None:
            self.metrics.observe("cell_duration_seconds", job.wall_s)
        # The terminal status flips last: a poller that observes
        # "done" must already see envelope/wall_s/tasks_executed.
        job.status = outcome
        self.metrics.count("jobs_completed" if outcome == DONE
                           else "jobs_failed")
        with self._lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            self._prune_finished_locked()
            callbacks = job._callbacks[:]
            job._callbacks.clear()
        # Outside the lock: a subscriber may re-enter queue methods.
        for callback in callbacks:
            try:
                callback(job)
            except Exception:  # a bad subscriber must not wedge the queue
                pass
        job._done.set()

    def on_done(self, job: Job, callback: Callable[[Job], None]) -> None:
        """Invoke ``callback(job)`` exactly once when ``job`` finishes.

        Registration races the terminal transition safely: a job that is
        already terminal fires the callback immediately (on the caller's
        thread), otherwise :meth:`_finalize` fires it — never both,
        because the pending-callback list is drained under the queue
        lock and status flips terminal before that drain.
        """
        with self._lock:
            if job.status not in (DONE, FAILED):
                job._callbacks.append(callback)
                return
        callback(job)

    # -- fleet (remote pull) dispatch --------------------------------------------

    def claim(self, worker_id: str) -> Optional[Job]:
        """Hand the next queued job to a fleet worker, under a lease.

        Expired leases are reaped first, so a dead worker's job is
        immediately claimable by the survivor doing the asking.  Returns
        ``None`` when nothing is queued (or the queue is shut down).
        """
        self.reap_expired()
        with self._lock:
            if self._shutdown:
                return None
            job = None
            while job is None:
                try:
                    candidate = self._queue.get_nowait()
                except queue.Empty:
                    return None
                if candidate is None:
                    # A local-thread shutdown sentinel (unreachable
                    # before shutdown, but never swallow one).
                    self._queue.put(None)
                    return None
                if candidate.status == QUEUED:
                    job = candidate
            job.status = RUNNING
            job.worker = worker_id
            job.attempts += 1
            self._observe_queue_wait(job)
            job._lease_started = (time.time(), time.perf_counter())
            self.leases.grant(job.id, worker_id)
            stats = self._fleet_stats_locked(worker_id)
            stats["claims"] += 1
            stats["last_seen"] = time.time()
            self.metrics.count("fleet_claims")
            self._ensure_reaper_locked()
            return job

    def heartbeat(self, worker_id: str, job_id: str) -> float:
        """Renew ``worker_id``'s lease on ``job_id``; seconds left.

        Raises :class:`KeyError` for an unknown job and
        :class:`~repro.fleet.leases.LeaseLost` when the lease is gone —
        the transport maps these to 404 / 409.
        """
        with self._lock:
            if job_id not in self._jobs:
                raise KeyError(f"unknown job {job_id!r}")
            stats = self._fleet_stats_locked(worker_id)
            stats["last_seen"] = time.time()
        remaining = self.leases.heartbeat(job_id, worker_id)
        with self._lock:
            self._fleet_stats_locked(worker_id)["heartbeats"] += 1
        self.metrics.count("fleet_heartbeats")
        return remaining

    def complete(self, worker_id: str, job_id: str,
                 envelope: Optional[Dict[str, Any]] = None,
                 error: Optional[str] = None,
                 wall_s: Optional[float] = None,
                 tasks_executed: Optional[int] = None) -> Job:
        """Accept a fleet worker's outcome for its leased job.

        The lease must still be held: a worker that went dark long
        enough to be reclaimed gets :class:`LeaseLost` (HTTP 409) and
        its result is discarded — whoever holds the lease now completes
        the job exactly once.  A successful envelope is persisted into
        the shared result store and ledgered, so ``GET /results/<key>``
        serves it from any node.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if job.status in (DONE, FAILED):
            raise LeaseLost(f"job {job_id} already completed")
        self.leases.release(job_id, worker_id)
        self._emit_lease_span(job, "released", worker_id)
        job.worker = worker_id
        job.wall_s = wall_s
        job.tasks_executed = tasks_executed
        start = time.perf_counter()
        if envelope is not None:
            job.envelope = envelope
            # Persist through the server's store handle — unless the
            # worker's read-through session already landed the bytes
            # there (shared filesystem), in which case a second put and
            # a second ledger line would only duplicate its record.
            if self._store is not None and self._store.peek(job.key) is None:
                self._store.put(job.key, envelope)
                self._store.record(job.key, job.experiment,
                                   wall_s if wall_s is not None
                                   else time.perf_counter() - start,
                                   hit=False,
                                   trace=job.trace[0] if job.trace else None)
            outcome = DONE
        else:
            job.error = error or "worker reported failure"
            outcome = FAILED
        with self._lock:
            stats = self._fleet_stats_locked(worker_id)
            stats["completions" if outcome == DONE else "failures"] += 1
            stats["last_seen"] = time.time()
        self.metrics.count("fleet_completions" if outcome == DONE
                           else "fleet_failures")
        self._finalize(job, outcome)
        return job

    def _emit_lease_span(self, job: Job, outcome: str,
                         worker_id: str) -> None:
        """Record one lease lifetime span (grant → release/expiry)."""
        started = job._lease_started
        job._lease_started = None
        if (started is None or self.tracer is None
                or job.trace is None):
            return
        wall, perf = started
        _obs.record_span(self.tracer, job.trace[0], job.trace[1],
                         "lease", "serve", wall,
                         time.perf_counter() - perf,
                         outcome=outcome, worker=worker_id,
                         job_id=job.id)

    def reap_expired(self) -> int:
        """Requeue every job whose lease expired; the reclaim count."""
        expired = self.leases.pop_expired()
        if not expired:
            return 0
        reclaimed = 0
        with self._lock:
            for lease in expired:
                job = self._jobs.get(lease.job_id)
                if (job is None or job.status != RUNNING
                        or job.worker != lease.worker):
                    continue
                self._emit_lease_span(job, "expired", lease.worker)
                job.status = QUEUED
                job.worker = None
                job._queued_wall = time.time()
                job._queued_perf = time.perf_counter()
                self._queue.put(job)
                reclaimed += 1
                stats = self._fleet_stats_locked(lease.worker)
                stats["leases_lost"] += 1
            if reclaimed:
                self.metrics.count("leases_reclaimed", reclaimed)
        return reclaimed

    def _fleet_stats_locked(self, worker_id: str) -> Dict[str, Any]:
        stats = self._fleet_workers.get(worker_id)
        if stats is None:
            stats = {"claims": 0, "heartbeats": 0, "completions": 0,
                     "failures": 0, "leases_lost": 0, "last_seen": None}
            self._fleet_workers[worker_id] = stats
        return stats

    def _ensure_reaper_locked(self) -> None:
        """Start the dead-worker reaper on first fleet activity.

        Lazy so a purely local queue keeps its historical thread count;
        once any worker claims, expiry must be detected even if no
        further requests ever arrive (a waiting ``POST /run`` client
        must not hang on a lease nobody will reap).
        """
        if self._reaper is not None or self._shutdown:
            return
        interval = max(0.05, min(1.0, self.leases.ttl / 4))

        def reap_loop() -> None:
            while not self._reaper_stop.wait(interval):
                self.reap_expired()

        self._reaper = threading.Thread(target=reap_loop, daemon=True,
                                        name="repro-fleet-reaper")
        self._reaper.start()

    def _prune_finished_locked(self) -> None:
        terminal = [job_id for job_id, job in self._jobs.items()
                    if job.status in (DONE, FAILED)]
        for job_id in terminal[:max(0, len(terminal) - self._max_finished)]:
            del self._jobs[job_id]

    # -- shutdown ----------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and (optionally) drain the workers.

        Already-queued jobs still run — a client holding a job id must
        eventually observe a terminal state, even across shutdown.
        """
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            reaper = self._reaper
        self._reaper_stop.set()
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()
            if reaper is not None:
                reaper.join(timeout=5)
