"""Background execution: the serving layer's job queue.

A ``POST /run`` that misses the result store does not compute inline in
the request handler — it becomes a :class:`Job` on a :class:`JobQueue`,
executed by one of N worker threads.  Three properties matter:

* **In-flight deduplication.**  Concurrent requests for the same store
  key coalesce onto one job (``submit`` returns the existing in-flight
  job), so a thundering herd of identical requests performs exactly one
  execution.  The store-check in the router and ``submit`` are not
  atomic, and do not need to be: every job runs through a read-through
  session, so a job submitted just after an identical one finished
  replays the freshly-stored envelope and executes zero tasks.

* **Per-job session isolation.**  Each job executes under its *own*
  :class:`repro.api.Session` (built by the queue's ``session_factory``),
  sharing the server's compile cache and result store objects but
  nothing else — so ``Session.tasks_executed`` attributes work to the
  job that did it, and two jobs activating their sessions in different
  worker threads never see each other's policy (``contextvars`` scoping
  is per-thread).

* **Observability.**  A job carries its full lifecycle (``queued`` →
  ``running`` → ``done``/``failed``), wall time, task count, and — on
  success — the result envelope, which ``GET /jobs/<id>`` exposes.

``force=True`` jobs opt out of deduplication in both directions: they
exist to recompute, so neither attaching them to an in-flight job nor
letting later requests attach to *them* (and observe a result the
requester did not force) would be correct.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.serve.metrics import ServeMetrics

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


@dataclass
class Job:
    """One queued experiment execution and its observable lifecycle."""

    id: str
    experiment: str
    key: str
    quick: bool
    params: Dict[str, Any]
    force: bool = False
    status: str = QUEUED
    error: Optional[str] = None
    #: ``to_dict()`` envelope of the result, set when the job succeeds.
    envelope: Optional[Dict[str, Any]] = None
    wall_s: Optional[float] = None
    #: The job session's dispatch counter after the run — zero when the
    #: read-through session replayed a stored envelope.
    tasks_executed: Optional[int] = None
    created_at: float = field(default_factory=time.time)
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; ``True`` unless timed out."""
        return self._done.wait(timeout)

    def describe(self) -> Dict[str, Any]:
        """The JSON shape ``GET /jobs/<id>`` returns."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "experiment": self.experiment,
            "key": self.key,
            "status": self.status,
            "quick": self.quick,
            "force": self.force,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.wall_s is not None:
            payload["wall_s"] = round(self.wall_s, 4)
        if self.tasks_executed is not None:
            payload["tasks_executed"] = self.tasks_executed
        if self.status == DONE:
            payload["result_url"] = f"/results/{self.key}"
        return payload


class JobQueue:
    """N worker threads draining a FIFO of :class:`Job` instances.

    ``session_factory`` builds one fresh read-through
    :class:`repro.api.Session` per job; sharing the underlying
    ``CompileCache``/``ResultStore`` objects between those sessions is
    the factory's (deliberate) choice, not the queue's concern.
    """

    def __init__(self, session_factory: Callable[[], Any], workers: int = 2,
                 metrics: Optional[ServeMetrics] = None,
                 max_finished: int = 1024):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_finished < 1:
            raise ValueError(f"max_finished must be >= 1, got {max_finished}")
        self._session_factory = session_factory
        #: Terminal jobs retained for GET /jobs/<id>; beyond this the
        #: oldest are forgotten, bounding a long-lived server's memory.
        self._max_finished = max_finished
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        #: store key -> the queued/running (non-force) job computing it.
        self._inflight: Dict[str, Job] = {}
        self._shutdown = False
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-serve-job-{index}")
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission / lookup -----------------------------------------------------

    def submit(self, experiment: str, key: str, quick: bool,
               params: Dict[str, Any],
               force: bool = False) -> Tuple[Job, bool]:
        """Enqueue one execution, coalescing onto an in-flight duplicate.

        Returns ``(job, coalesced)``; ``coalesced`` is ``True`` when the
        returned job was already in flight for the same store key.
        """
        with self._lock:
            if self._shutdown:
                raise RuntimeError("job queue is shut down")
            if not force:
                existing = self._inflight.get(key)
                if existing is not None:
                    self.metrics.count("jobs_coalesced")
                    return existing, True
            job = Job(id=uuid.uuid4().hex[:12], experiment=experiment,
                      key=key, quick=quick, params=dict(params), force=force)
            self._jobs[job.id] = job
            if not force:
                self._inflight[key] = job
            self.metrics.count("jobs_submitted")
            # Enqueue under the lock: a put racing shutdown() could
            # otherwise land behind the worker sentinels and leave the
            # job QUEUED forever (hanging every wait() on it).
            self._queue.put(job)
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def describe(self) -> Dict[str, Any]:
        """Queue-level state for ``GET /metrics``."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "workers": len(self._threads),
            "in_flight": len(self._inflight),
            "by_status": dict(sorted(by_status.items())),
        }

    # -- execution ---------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.status = RUNNING
        start = time.perf_counter()
        session = None
        outcome = FAILED
        try:
            # Inside the try: a raising session factory must fail the
            # job, not kill the worker and wedge the in-flight key.
            session = self._session_factory()
            result = session.run(job.experiment, quick=job.quick,
                                 force=job.force, **job.params)
            job.envelope = result.to_dict()
            outcome = DONE
        except BaseException as error:  # a failed job must never kill a worker
            job.error = f"{type(error).__name__}: {error}"
        finally:
            job.wall_s = time.perf_counter() - start
            job.tasks_executed = getattr(session, "tasks_executed", None)
            # The terminal status flips last: a poller that observes
            # "done" must already see envelope/wall_s/tasks_executed.
            job.status = outcome
            self.metrics.count("jobs_completed" if outcome == DONE
                               else "jobs_failed")
            with self._lock:
                if self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
                self._prune_finished_locked()
            job._done.set()

    def _prune_finished_locked(self) -> None:
        terminal = [job_id for job_id, job in self._jobs.items()
                    if job.status in (DONE, FAILED)]
        for job_id in terminal[:max(0, len(terminal) - self._max_finished)]:
            del self._jobs[job_id]

    # -- shutdown ----------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and (optionally) drain the workers.

        Already-queued jobs still run — a client holding a job id must
        eventually observe a terminal state, even across shutdown.
        """
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()
