"""Request routing for the serving layer — transport-free.

:class:`ServeApp` maps ``(method, path, body)`` to a :class:`Response`;
the HTTP transport (:mod:`repro.serve.http`) is a thin shell around it,
and tests can drive the full routing/queue/store stack without opening a
socket.

Endpoints::

    GET  /healthz            liveness + uptime
    GET  /experiments        every registered ExperimentSpec (param
                             schema, defaults, --quick preset)
    GET  /experiments/<name> one spec
    GET  /results/<key>      the stored envelope — byte-identical to
                             `python -m repro run X --format json`
    POST /circuits           ingest an OpenQASM body -> its canonical
                             digest (content-addressed, idempotent)
    GET  /circuits           every stored circuit digest
    GET  /circuits/<digest>  the canonical QASM text (text/plain)
    POST /run                resolve params -> store key; serve a hit
                             directly, queue a miss ({"wait": true}
                             blocks for the result bytes); params may
                             reference uploaded circuits by digest
    GET  /jobs/<id>          job lifecycle/status
    POST /sweeps             expand a SweepSpec server-side; one job per
                             cell (store hits short-circuit, misses ride
                             the queue's in-flight dedup)
    GET  /sweeps/<id>        per-cell sweep status/progress
    GET  /sweeps/<id>/stream line-delimited JSON: each cell's envelope
                             the moment it finalizes, then a summary
    GET  /metrics            counters + queue + fleet state + recent
                             ledger tail (?format=prometheus renders
                             text exposition instead)
    GET  /trace              stored trace ids (tracing enabled servers)
    GET  /trace/<id>         every span of one trace, sorted by start
    POST /trace              ingest externally-recorded spans (remote
                             clients and fleet workers export here)
    POST /fleet/claim        a fleet worker pulls the next queued job
                             (lease granted; {"job": null} when idle)
    POST /fleet/heartbeat    renew a claimed job's lease (409 LeaseLost
                             once reclaimed)
    POST /fleet/complete     report a leased job's envelope or error

With tracing enabled (``serve --trace-dir``) an ``X-Repro-Trace``
request header joins the request to the caller's trace; POST /run and
POST /sweeps mint a fresh trace when none is sent.  Responses echo the
context back in the same header.

Every response body is JSON.  Result-envelope bodies are rendered with
:func:`repro.api.store.canonical_json`, the single spelling of envelope
bytes across the CLI, the store, and this server — which is what makes
the byte-identity contract in the tests a construction, not a
coincidence.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple
from urllib.parse import parse_qs

from repro.api.circuits import CircuitStore
from repro.api.registry import ExperimentSpec, all_experiments
from repro.api.store import ResultStore, canonical_json, store_key
from repro.api.sweep import SweepSpec
from repro.circuits.digest import circuit_digest, is_circuit_digest
from repro.circuits.qasm import from_qasm
from repro.workloads.ref import iter_circuit_digests
from repro.fleet.leases import LeaseLost
from repro.fleet.protocol import (
    CLAIM_PATH,
    COMPLETE_PATH,
    DEFAULT_POLL_INTERVAL,
    HEARTBEAT_PATH,
    describe_claim,
    validate_worker_id,
)
from repro.obs import trace as _obs
from repro.obs.store import TraceStore
from repro.serve.jobs import FAILED, JobQueue
from repro.serve.metrics import ServeMetrics
from repro.serve.sweeps import SweepTable

#: A full store key: SHA-256 hex.  Anything else in /results/<key> is
#: rejected before it can reach the filesystem layer.
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")

#: Ledger window summarized in GET /metrics.
RECENT_WINDOW = 100


@dataclass
class Response:
    """One routed response: status, JSON body bytes, extra headers.

    When ``stream`` is set the response is an incremental body instead:
    the transport sends each yielded bytes chunk as it arrives (chunked
    transfer-encoding over HTTP) and ``body`` is ignored.  Streams carry
    line-delimited JSON, one complete JSON object per line.
    """

    status: int
    body: bytes
    headers: Dict[str, str] = field(default_factory=dict)
    stream: Optional[Iterator[bytes]] = None


def _json_response(status: int, payload: Any,
                   headers: Optional[Dict[str, str]] = None) -> Response:
    return Response(status, canonical_json(payload).encode(),
                    dict(headers or {}))


def _error(status: int, message: str,
           error_type: Optional[str] = None) -> Response:
    """A JSON error body; ``error_type`` names the local exception the
    failure corresponds to, so clients (RemoteSession) can re-raise the
    right type without parsing the human-readable message."""
    payload: Dict[str, Any] = {"error": message}
    if error_type is not None:
        payload["error_type"] = error_type
    return _json_response(status, payload)


def _jsonable(value: Any) -> Any:
    """A JSON-compatible rendering of a spec default / preset value.

    Parameter defaults are primitives or tuples of primitives; anything
    exotic degrades to ``repr`` rather than failing the whole listing.
    """
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    return repr(value)


def _describe_spec(spec: ExperimentSpec) -> Dict[str, Any]:
    return {
        "name": spec.name,
        "doc": spec.doc,
        "result_type": spec.result_type.__name__,
        "params": [
            {"name": p.name, "default": _jsonable(p.default),
             "required": p.required}
            for p in spec.params
        ],
        "quick": {name: _jsonable(value)
                  for name, value in spec.quick.items()},
    }


class ServeApp:
    """The serving layer's router over one store + one job queue."""

    def __init__(self, store: ResultStore, jobs: JobQueue,
                 metrics: Optional[ServeMetrics] = None,
                 sweeps: Optional[SweepTable] = None,
                 circuits: Optional[CircuitStore] = None,
                 tracer: Optional[_obs.Tracer] = None,
                 traces: Optional[TraceStore] = None):
        self.store = store
        self.jobs = jobs
        self.metrics = metrics if metrics is not None else jobs.metrics
        self.sweeps = (sweeps if sweeps is not None
                       else SweepTable(store, jobs, self.metrics))
        # Uploaded-workload storage defaults to a sibling of the result
        # store, so a bare ServeApp(store, jobs) still serves /circuits.
        self.circuits = (circuits if circuits is not None
                         else CircuitStore(os.path.join(store.path,
                                                        "circuits")))
        # Tracing is optional end to end: no tracer, no spans, no /trace
        # routes.  The tracer defaults to the queue's (one server, one
        # tracer) and the browsable store to the tracer's own sink when
        # that sink is a TraceStore.
        self.tracer = tracer if tracer is not None else jobs.tracer
        if traces is None and self.tracer is not None:
            sink = self.tracer.sink
            if isinstance(sink, TraceStore):
                traces = sink
        self.traces = traces

    # -- dispatch ----------------------------------------------------------------

    def handle(self, method: str, path: str, body: bytes = b"",
               trace: Optional[str] = None) -> Response:
        """Route one request; never raises (unexpected failures → 500).

        ``trace`` is the raw ``X-Repro-Trace`` request header value (or
        ``None``): with a tracer configured it joins this request to the
        caller's trace, the handling is recorded as a ``server.request``
        span, and the context is echoed back in the response header.
        POST /run and POST /sweeps mint a fresh trace when the caller
        sent none — polling GETs never do (a scrape is not an
        operation).
        """
        bare, _, query = path.partition("?")
        start = time.perf_counter()
        context = (_obs.parse_trace_header(trace)
                   if self.tracer is not None else None)
        if (self.tracer is not None and context is None
                and method == "POST" and bare in ("/run", "/sweeps")):
            context = (_obs.new_trace_id(), None)
        if context is None:
            route, response = self._dispatch(method, bare, body, query)
        else:
            with _obs.activate(self.tracer, context[0], context[1]):
                with _obs.span("server.request", service="serve",
                               method=method) as request_span:
                    route, response = self._dispatch(method, bare, body,
                                                     query)
                    request_span.set(route=route, status=response.status)
            response.headers.setdefault(
                _obs.TRACE_HEADER,
                _obs.format_trace_header(context[0], request_span.span_id))
        self.metrics.count_request(route, response.status,
                                   seconds=time.perf_counter() - start)
        return response

    def _dispatch(self, method: str, path: str, body: bytes,
                  query: str = "") -> Tuple[str, Response]:
        try:
            if path == "/healthz" and method == "GET":
                return "GET /healthz", self._healthz()
            if path == "/experiments" and method == "GET":
                return "GET /experiments", self._experiments()
            if path.startswith("/experiments/") and method == "GET":
                return ("GET /experiments/<name>",
                        self._experiment(path[len("/experiments/"):]))
            if path.startswith("/results/") and method == "GET":
                return ("GET /results/<key>",
                        self._result(path[len("/results/"):]))
            if path == "/circuits" and method == "POST":
                return "POST /circuits", self._circuit_upload(body)
            if path == "/circuits" and method == "GET":
                return "GET /circuits", self._circuit_list()
            if path.startswith("/circuits/") and method == "GET":
                return ("GET /circuits/<digest>",
                        self._circuit(path[len("/circuits/"):]))
            if path == "/run" and method == "POST":
                return "POST /run", self._run(body)
            if path.startswith("/jobs/") and method == "GET":
                return "GET /jobs/<id>", self._job(path[len("/jobs/"):])
            if path == "/sweeps" and method == "POST":
                return "POST /sweeps", self._sweep_submit(body)
            if path.startswith("/sweeps/") and method == "GET":
                rest = path[len("/sweeps/"):]
                if rest.endswith("/stream"):
                    return ("GET /sweeps/<id>/stream",
                            self._sweep_stream(rest[:-len("/stream")]))
                return "GET /sweeps/<id>", self._sweep_status(rest)
            if path == "/metrics" and method == "GET":
                return "GET /metrics", self._metrics(query)
            if path == "/trace" and method == "GET":
                return "GET /trace", self._trace_list()
            if path == "/trace" and method == "POST":
                return "POST /trace", self._trace_ingest(body)
            if path.startswith("/trace/") and method == "GET":
                return ("GET /trace/<id>",
                        self._trace(path[len("/trace/"):]))
            if path == CLAIM_PATH and method == "POST":
                return f"POST {CLAIM_PATH}", self._fleet_claim(body)
            if path == HEARTBEAT_PATH and method == "POST":
                return f"POST {HEARTBEAT_PATH}", self._fleet_heartbeat(body)
            if path == COMPLETE_PATH and method == "POST":
                return f"POST {COMPLETE_PATH}", self._fleet_complete(body)
            return (f"{method} (unrouted)",
                    _error(404, f"no route for {method} {path}"))
        except Exception as error:  # pragma: no cover - defensive boundary
            return (f"{method} (failed)",
                    _error(500, f"{type(error).__name__}: {error}"))

    # -- endpoints ---------------------------------------------------------------

    def _healthz(self) -> Response:
        return _json_response(200, {
            "status": "ok",
            "uptime_s": self.metrics.snapshot()["uptime_s"],
        })

    def _experiments(self) -> Response:
        return _json_response(200, {
            "experiments": [_describe_spec(spec)
                            for spec in all_experiments().values()],
        })

    def _experiment(self, name: str) -> Response:
        spec = all_experiments().get(name)
        if spec is None:
            return _error(404, f"unknown experiment {name!r}")
        return _json_response(200, _describe_spec(spec))

    def _result(self, key: str) -> Response:
        if not _KEY_RE.match(key):
            return _error(400, "a result key is 64 lowercase hex digits")
        envelope = self.store.get(key)
        if envelope is None:
            return _error(404, f"no stored result under key {key[:16]}…")
        self.metrics.count("results_served")
        return Response(200, canonical_json(envelope).encode(),
                        {"X-Repro-Key": key})

    # -- circuits ----------------------------------------------------------------

    def _circuit_upload(self, body: bytes) -> Response:
        """Ingest an OpenQASM body; 200 with the digest (idempotent —
        re-uploading known content returns the same digest)."""
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            return _error(400, "circuit body must be UTF-8 OpenQASM text")
        try:
            circuit = from_qasm(text)
        except ValueError as error:
            return _error(400, str(error), "ValueError")
        digest = circuit_digest(circuit)
        known = self.circuits.has(digest)
        if not known:
            self.circuits.add_circuit(circuit)
        self.metrics.count("circuits_uploaded")
        return _json_response(200, {
            "digest": digest,
            "ref": f"circuit:{digest}",
            "created": not known,
        }, {"X-Repro-Circuit": digest})

    def _circuit_list(self) -> Response:
        rows = sorted(self.circuits.entries())
        return _json_response(200, {
            "circuits": [{"digest": digest, "bytes": size}
                         for digest, _, size, _ in rows],
        })

    def _circuit(self, digest: str) -> Response:
        if not is_circuit_digest(digest):
            return _error(400, "a circuit digest is 64 lowercase hex "
                               "digits")
        text = self.circuits.get_qasm(digest)
        if text is None:
            return _error(404, f"no stored circuit under digest "
                               f"{digest[:16]}…")
        self.metrics.count("circuits_served")
        return Response(200, text.encode("utf-8"),
                        {"Content-Type": "text/plain; charset=utf-8",
                         "X-Repro-Circuit": digest})

    def _missing_circuits(self, resolved: Dict[str, Any]) -> list:
        """Digests referenced by ``resolved`` that the store lacks."""
        return sorted(digest for digest in set(iter_circuit_digests(resolved))
                      if not self.circuits.has(digest))

    def _run(self, body: bytes) -> Response:
        try:
            request = json.loads(body or b"{}")
        except ValueError:
            return _error(400, "request body must be JSON")
        if not isinstance(request, dict):
            return _error(400, "request body must be a JSON object")
        experiment = request.get("experiment")
        if not isinstance(experiment, str):
            return _error(400, 'request needs an "experiment" name')
        spec = all_experiments().get(experiment)
        if spec is None:
            return _error(404, f"unknown experiment {experiment!r}")
        quick = bool(request.get("quick", False))
        force = bool(request.get("force", False))
        wait = bool(request.get("wait", False))
        params = request.get("params")
        if params is None:
            params = {}
        if not isinstance(params, dict):
            # Checked before any falsy coercion: a client sending the
            # wrong shape ([], false, "") must get the 400, not a
            # silently-accepted default-params run.
            return _error(400, '"params" must be a JSON object')
        try:
            resolved = spec.resolved_params(quick=quick, overrides=params)
            key = store_key(experiment, resolved)
            missing = self._missing_circuits(resolved)
        except (TypeError, ValueError) as error:
            return _error(400, str(error), type(error).__name__)
        if missing:
            # Validated before keying the store or queueing: a run
            # naming an unknown digest would only fail later inside a
            # job thread, costing a queue slot to report a client error.
            return _error(400, "params reference circuit(s) not in the "
                               "server's store (upload via POST /circuits "
                               "first): " + ", ".join(missing), "KeyError")

        if not force:
            start = time.perf_counter()
            envelope = self.store.get(key)
            if envelope is not None:
                # Served straight from the store: ledger it like any
                # other read-through hit, so /metrics' recent window
                # sees served traffic, not only queue traffic.
                self.store.record(key, experiment,
                                  time.perf_counter() - start, hit=True,
                                  trace=_obs.current_trace_id())
                self.metrics.count("store_hits")
                return Response(200, canonical_json(envelope).encode(),
                                {"X-Repro-Store": "hit", "X-Repro-Key": key})

        self.metrics.count("store_misses")
        job, coalesced = self.jobs.submit(experiment, key, quick, params,
                                          force=force)
        if not wait:
            payload = job.describe()
            payload["coalesced"] = coalesced
            return _json_response(202, payload, {"X-Repro-Store": "miss",
                                                 "X-Repro-Key": key})
        job.wait()
        if job.status == FAILED:
            return _error(500, f"job {job.id} failed: {job.error}")
        return Response(200, canonical_json(job.envelope).encode(),
                        {"X-Repro-Store": "miss", "X-Repro-Key": key,
                         "X-Repro-Job": job.id})

    def _job(self, job_id: str) -> Response:
        job = self.jobs.get(job_id)
        if job is None:
            return _error(404, f"unknown job {job_id!r}")
        return _json_response(200, job.describe())

    # -- sweeps ------------------------------------------------------------------

    def _sweep_submit(self, body: bytes) -> Response:
        try:
            request = json.loads(body or b"{}")
        except ValueError:
            return _error(400, "request body must be JSON")
        if not isinstance(request, dict):
            return _error(400, "request body must be a JSON object")
        experiment = request.get("experiment")
        if not isinstance(experiment, str):
            return _error(400, 'request needs an "experiment" name')
        if all_experiments().get(experiment) is None:
            # 404 before spec validation, matching POST /run's split
            # between "no such experiment" and "bad parameters".
            return _error(404, f"unknown experiment {experiment!r}")
        force = bool(request.get("force", False))
        try:
            spec = SweepSpec.from_dict(request)
            missing = self._missing_circuits(
                {"params": request.get("params"),
                 "axes": request.get("axes")})
        except (TypeError, ValueError) as error:
            return _error(400, str(error), type(error).__name__)
        if missing:
            return _error(400, "sweep references circuit(s) not in the "
                               "server's store (upload via POST /circuits "
                               "first): " + ", ".join(missing), "KeyError")
        record = self.sweeps.submit(spec, force=force)
        return _json_response(202, record.describe(),
                              {"X-Repro-Sweep": record.id})

    def _sweep_status(self, sweep_id: str) -> Response:
        record = self.sweeps.get(sweep_id)
        if record is None:
            return _error(404, f"unknown sweep {sweep_id!r}")
        return _json_response(200, record.describe(),
                              {"X-Repro-Sweep": record.id})

    def _sweep_stream(self, sweep_id: str) -> Response:
        record = self.sweeps.get(sweep_id)
        if record is None:
            return _error(404, f"unknown sweep {sweep_id!r}")
        self.metrics.count("sweep_streams")

        def lines() -> Iterator[bytes]:
            # One compact JSON object per line.  Each cell record's
            # "envelope" value re-renders byte-identically through
            # canonical_json — the stream embeds objects, not bytes, so
            # line framing and envelope canonical form never fight.
            for event in record.events():
                yield json.dumps(event, sort_keys=True,
                                 separators=(",", ":")).encode() + b"\n"
            yield json.dumps(record.summary(), sort_keys=True,
                             separators=(",", ":")).encode() + b"\n"

        return Response(200, b"", {"X-Repro-Sweep": record.id},
                        stream=lines())

    def _metrics(self, query: str = "") -> Response:
        formats = parse_qs(query).get("format")
        if formats and formats[-1] == "prometheus":
            return Response(
                200, self.metrics.prometheus().encode(),
                {"Content-Type":
                 "text/plain; version=0.0.4; charset=utf-8"})
        recent = self.store.tail(RECENT_WINDOW)
        hits = sum(1 for entry in recent if entry.get("hit"))
        return _json_response(200, {
            **self.metrics.snapshot(),
            "queue": self.jobs.describe(),
            "sweep_table": self.sweeps.describe(),
            "fleet_workers": self.jobs.describe_fleet(),
            "store_dir": self.store.path,
            "circuit_store": self.circuits.stats(),
            "recent_runs": {
                "window": RECENT_WINDOW,
                "events": len(recent),
                "hits": hits,
                "misses": len(recent) - hits,
            },
        })

    # -- traces ------------------------------------------------------------------

    def _trace_list(self) -> Response:
        if self.traces is None:
            return _error(404, "tracing is not enabled on this server "
                               "(start it with --trace-dir)")
        rows = self.traces.traces()
        return _json_response(200, {
            "count": len(rows),
            "traces": [{"id": trace_id, "bytes": size}
                       for trace_id, size, _ in rows[-RECENT_WINDOW:]],
        })

    def _trace(self, trace_id: str) -> Response:
        if self.traces is None:
            return _error(404, "tracing is not enabled on this server "
                               "(start it with --trace-dir)")
        if not _obs.is_trace_id(trace_id):
            return _error(400, "a trace id is 32 lowercase hex digits")
        spans = self.traces.read(trace_id)
        if not spans:
            return _error(404, "no spans recorded under trace "
                               f"{trace_id[:16]}…")
        self.metrics.count("traces_served")
        return _json_response(200, {
            "trace": trace_id,
            "count": len(spans),
            "spans": spans,
        }, {_obs.TRACE_HEADER: trace_id})

    def _trace_ingest(self, body: bytes) -> Response:
        """Accept spans recorded off-host: remote clients and fleet
        workers buffer their spans and export them here, so one
        ``GET /trace/<id>`` shows the whole distributed operation."""
        if self.traces is None:
            return _error(404, "tracing is not enabled on this server "
                               "(start it with --trace-dir)")
        try:
            payload = json.loads(body or b"{}")
        except ValueError:
            return _error(400, "request body must be JSON")
        if (not isinstance(payload, dict)
                or not isinstance(payload.get("spans"), list)):
            return _error(400, 'request needs a "spans" list')
        accepted = self.traces.ingest(payload["spans"],
                                      observer=self.metrics.observe_span)
        if accepted:
            self.metrics.count("spans_ingested", accepted)
        return _json_response(200, {"accepted": accepted})

    # -- fleet protocol ----------------------------------------------------------

    def _fleet_body(self, body: bytes, need_job: bool):
        """``(worker_id, job_id, payload)`` from a fleet request body.

        Raises ``ValueError`` (→ 400) on anything malformed; ``job_id``
        is only required (and validated) when ``need_job`` is set.
        """
        try:
            payload = json.loads(body or b"{}")
        except ValueError:
            raise ValueError("request body must be JSON") from None
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        worker_id = validate_worker_id(payload.get("worker"))
        job_id = payload.get("job")
        if need_job and not isinstance(job_id, str):
            raise ValueError('request needs a "job" id string')
        return worker_id, job_id, payload

    def _fleet_claim(self, body: bytes) -> Response:
        try:
            worker_id, _, _ = self._fleet_body(body, need_job=False)
        except ValueError as error:
            return _error(400, str(error), "ValueError")
        job = self.jobs.claim(worker_id)
        if job is None:
            return _json_response(200, {
                "job": None,
                "retry_in_s": DEFAULT_POLL_INTERVAL,
            })
        return _json_response(200, {
            "job": describe_claim(job, self.jobs.leases.ttl),
        })

    def _fleet_heartbeat(self, body: bytes) -> Response:
        try:
            worker_id, job_id, _ = self._fleet_body(body, need_job=True)
        except ValueError as error:
            return _error(400, str(error), "ValueError")
        try:
            remaining = self.jobs.heartbeat(worker_id, job_id)
        except KeyError as error:
            return _error(404, str(error).strip("'\""), "KeyError")
        except LeaseLost as error:
            return _error(409, str(error), "LeaseLost")
        return _json_response(200, {"expires_in_s": round(remaining, 3)})

    def _fleet_complete(self, body: bytes) -> Response:
        try:
            worker_id, job_id, payload = self._fleet_body(body, need_job=True)
        except ValueError as error:
            return _error(400, str(error), "ValueError")
        envelope = payload.get("envelope")
        error_text = payload.get("error")
        if envelope is None and error_text is None:
            return _error(400, 'complete needs an "envelope" or an '
                               '"error"', "ValueError")
        if envelope is not None and not isinstance(envelope, dict):
            return _error(400, '"envelope" must be a JSON object',
                          "ValueError")
        if error_text is not None and not isinstance(error_text, str):
            return _error(400, '"error" must be a string', "ValueError")
        wall_s = payload.get("wall_s")
        tasks_executed = payload.get("tasks_executed")
        if wall_s is not None and not isinstance(wall_s, (int, float)):
            return _error(400, '"wall_s" must be a number', "ValueError")
        if tasks_executed is not None and not isinstance(tasks_executed,
                                                         int):
            return _error(400, '"tasks_executed" must be an integer',
                          "ValueError")
        try:
            job = self.jobs.complete(
                worker_id, job_id, envelope=envelope, error=error_text,
                wall_s=wall_s, tasks_executed=tasks_executed)
        except KeyError as error:
            return _error(404, str(error).strip("'\""), "KeyError")
        except LeaseLost as error:
            return _error(409, str(error), "LeaseLost")
        return _json_response(200, {"status": job.status,
                                    "key": job.key})
