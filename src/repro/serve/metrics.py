"""Thread-safe counters and histograms behind ``GET /metrics``.

One :class:`ServeMetrics` instance is shared by the request router and
the background job queue.  Every mutation happens under one lock, so the
snapshot an operator polls is internally consistent — a request counted
as received is never missing from its per-endpoint bucket.

The counters deliberately mirror the store/queue vocabulary used
everywhere else in the repo (*hit*/*miss*, *coalesced*, *failed*), so a
``/metrics`` payload reads like the ledger and the CLI diagnostics do.
Latency distributions live in fixed-bucket histograms
(:mod:`repro.obs.metrics`) and render — together with the counters —
into Prometheus text exposition via :meth:`ServeMetrics.prometheus`
(``GET /metrics?format=prometheus``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from repro.obs.metrics import Histogram
from repro.obs import prometheus as _prom

#: Every counter :meth:`ServeMetrics.count` may touch.  ``count`` on any
#: other name raises — a typo must fail loudly, not silently mint a new
#: attribute that no snapshot ever reports.
COUNTERS = (
    "requests_total",
    "errors_total",
    "store_hits",
    "store_misses",
    "results_served",
    "jobs_submitted",
    "jobs_coalesced",
    "jobs_completed",
    "jobs_failed",
    "sweeps_submitted",
    "sweep_cells_total",
    "sweep_cells_hit",
    "sweep_cells_queued",
    "sweep_cells_coalesced",
    "sweep_streams",
    "circuits_uploaded",
    "circuits_served",
    "fleet_claims",
    "fleet_heartbeats",
    "fleet_completions",
    "fleet_failures",
    "leases_reclaimed",
    "spans_ingested",
    "traces_served",
)

#: The declared histogram vocabulary: name → (label name or None).
#: ``request_duration_seconds`` is labelled per route; the rest are
#: single-series stage latencies.
HISTOGRAMS = {
    "request_duration_seconds": "route",
    "queue_wait_seconds": None,
    "cell_duration_seconds": None,
    "compile_duration_seconds": None,
}

#: Span names teed into histograms by :meth:`ServeMetrics.observe_span`.
_SPAN_HISTOGRAMS = {
    "compile": "compile_duration_seconds",
    "queue.wait": "queue_wait_seconds",
}


class ServeMetrics:
    """Monotonic counters + latency histograms for one server process."""

    def __init__(self):
        self._lock = threading.Lock()
        #: Wall-clock start, for display only.
        self.started_at = time.time()
        #: Monotonic start — uptime must survive wall-clock jumps.
        self._started_monotonic = time.monotonic()
        self._requests: Dict[str, int] = {}
        self._histograms: Dict[str, Dict[Optional[str], Histogram]] = {
            name: {} for name in HISTOGRAMS
        }
        self.requests_total = 0
        self.errors_total = 0
        #: POST /run answered straight from the result store.
        self.store_hits = 0
        #: POST /run that had to go through the job queue.
        self.store_misses = 0
        #: GET /results/<key> lookups served (hits only).
        self.results_served = 0
        self.jobs_submitted = 0
        #: Requests that attached to an already-in-flight job instead of
        #: starting their own execution.
        self.jobs_coalesced = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        #: Sweep traffic (POST /sweeps and its per-cell fan-out).
        self.sweeps_submitted = 0
        self.sweep_cells_total = 0
        #: Cells answered straight from the store at submission time.
        self.sweep_cells_hit = 0
        #: Cells that became (or attached to) queue jobs.
        self.sweep_cells_queued = 0
        #: Cells that attached to an already-in-flight job — the
        #: overlapping-sweeps dedup the tests and CI gate assert on.
        self.sweep_cells_coalesced = 0
        #: GET /sweeps/<id>/stream consumers started.
        self.sweep_streams = 0
        #: Circuit-store traffic (POST /circuits, GET /circuits/<digest>).
        self.circuits_uploaded = 0
        self.circuits_served = 0
        #: Fleet protocol traffic (remote pull workers; see repro.fleet).
        self.fleet_claims = 0
        self.fleet_heartbeats = 0
        self.fleet_completions = 0
        self.fleet_failures = 0
        #: Jobs requeued after their worker's lease expired unrenewed.
        self.leases_reclaimed = 0
        #: Span records accepted over POST /trace (remote exporters).
        self.spans_ingested = 0
        #: GET /trace/<id> lookups answered with spans.
        self.traces_served = 0

    def count_request(self, route: str, status: int,
                      seconds: Optional[float] = None) -> None:
        """Record one handled request under its route label, optionally
        with its handling latency."""
        with self._lock:
            self.requests_total += 1
            self._requests[route] = self._requests.get(route, 0) + 1
            if status >= 400:
                self.errors_total += 1
            if seconds is not None:
                self._observe_locked("request_duration_seconds",
                                     seconds, route)

    def count(self, counter: str, amount: int = 1) -> None:
        """Increment one of the declared counters (e.g. ``"store_hits"``).

        Raises ``ValueError`` on an undeclared name: a silent
        ``setattr`` on a typo would create an attribute no snapshot
        reports and no test can catch.
        """
        if counter not in COUNTERS:
            raise ValueError(
                f"unknown counter {counter!r}; declared counters: "
                + ", ".join(COUNTERS))
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    # -- histograms --------------------------------------------------------------

    def _observe_locked(self, name: str, seconds: float,
                        label: Optional[str]) -> None:
        series = self._histograms[name]
        histogram = series.get(label)
        if histogram is None:
            histogram = series[label] = Histogram()
        histogram.observe(seconds)

    def observe(self, name: str, seconds: float,
                label: Optional[str] = None) -> None:
        """Record one latency observation into a declared histogram."""
        if name not in HISTOGRAMS:
            raise ValueError(
                f"unknown histogram {name!r}; declared histograms: "
                + ", ".join(sorted(HISTOGRAMS)))
        if HISTOGRAMS[name] is None and label is not None:
            raise ValueError(f"histogram {name!r} takes no label")
        with self._lock:
            self._observe_locked(name, seconds, label)

    def observe_span(self, record: Dict[str, Any]) -> None:
        """Tracer observer hook: tee span durations into histograms.

        Only spans with a declared histogram mapping are observed, so
        attaching this to the server's tracer is always safe.
        """
        name = _SPAN_HISTOGRAMS.get(record.get("name"))
        if name is None:
            return
        duration = record.get("duration_s")
        if not isinstance(duration, (int, float)):
            return
        with self._lock:
            self._observe_locked(name, float(duration), None)

    # -- exposition --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A consistent point-in-time copy of every counter."""
        with self._lock:
            return {
                "uptime_s": round(
                    time.monotonic() - self._started_monotonic, 3),
                "started_at": round(self.started_at, 3),
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "requests_by_route": dict(sorted(self._requests.items())),
                "store": {
                    "hits": self.store_hits,
                    "misses": self.store_misses,
                    "results_served": self.results_served,
                },
                "jobs": {
                    "submitted": self.jobs_submitted,
                    "coalesced": self.jobs_coalesced,
                    "completed": self.jobs_completed,
                    "failed": self.jobs_failed,
                },
                "sweeps": {
                    "submitted": self.sweeps_submitted,
                    "cells_total": self.sweep_cells_total,
                    "cells_hit": self.sweep_cells_hit,
                    "cells_queued": self.sweep_cells_queued,
                    "cells_coalesced": self.sweep_cells_coalesced,
                    "streams": self.sweep_streams,
                },
                "circuits": {
                    "uploaded": self.circuits_uploaded,
                    "served": self.circuits_served,
                },
                "fleet": {
                    "claims": self.fleet_claims,
                    "heartbeats": self.fleet_heartbeats,
                    "completions": self.fleet_completions,
                    "failures": self.fleet_failures,
                    "leases_reclaimed": self.leases_reclaimed,
                },
                "trace": {
                    "spans_ingested": self.spans_ingested,
                    "traces_served": self.traces_served,
                },
                "latency": {
                    name: {
                        (label if label is not None else "all"):
                            histogram.snapshot()
                        for label, histogram in sorted(
                            series.items(), key=lambda kv: str(kv[0]))
                    }
                    for name, series in self._histograms.items()
                    if series
                },
            }

    def prometheus(self) -> str:
        """The counters and histograms in Prometheus text exposition
        format (``GET /metrics?format=prometheus``).  Metric names are
        prefixed ``repro_``; counters gain the ``_total`` convention."""
        with self._lock:
            families = [
                _prom.family(
                    "repro_uptime_seconds", "gauge",
                    "Seconds since this server process started.",
                    [(None, time.monotonic() - self._started_monotonic)]),
                _prom.family(
                    "repro_requests_total", "counter",
                    "Requests handled, by route.",
                    [({"route": route}, count)
                     for route, count in sorted(self._requests.items())]
                    or [(None, 0)]),
            ]
            for counter in COUNTERS:
                if counter == "requests_total":
                    continue
                name = "repro_" + counter
                if not name.endswith("_total"):
                    name += "_total"
                families.append(_prom.family(
                    name, "counter",
                    f"Monotonic count of {counter.replace('_', ' ')}.",
                    [(None, getattr(self, counter))]))
            for hist_name, label_name in sorted(HISTOGRAMS.items()):
                series = self._histograms[hist_name]
                if not series:
                    continue
                items = [
                    ({label_name: label} if label is not None else None,
                     histogram)
                    for label, histogram in sorted(
                        series.items(), key=lambda kv: str(kv[0]))
                ]
                families.append(_prom.histogram_family(
                    "repro_" + hist_name,
                    f"Latency distribution: {hist_name.replace('_', ' ')}.",
                    items))
            return _prom.render(families)
