"""Thread-safe counters behind the serving layer's ``GET /metrics``.

One :class:`ServeMetrics` instance is shared by the request router and
the background job queue.  Every mutation happens under one lock, so the
snapshot an operator polls is internally consistent — a request counted
as received is never missing from its per-endpoint bucket.

The counters deliberately mirror the store/queue vocabulary used
everywhere else in the repo (*hit*/*miss*, *coalesced*, *failed*), so a
``/metrics`` payload reads like the ledger and the CLI diagnostics do.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict


class ServeMetrics:
    """Monotonic counters for one server process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._started = time.time()
        self._requests: Dict[str, int] = {}
        self.requests_total = 0
        self.errors_total = 0
        #: POST /run answered straight from the result store.
        self.store_hits = 0
        #: POST /run that had to go through the job queue.
        self.store_misses = 0
        #: GET /results/<key> lookups served (hits only).
        self.results_served = 0
        self.jobs_submitted = 0
        #: Requests that attached to an already-in-flight job instead of
        #: starting their own execution.
        self.jobs_coalesced = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        #: Sweep traffic (POST /sweeps and its per-cell fan-out).
        self.sweeps_submitted = 0
        self.sweep_cells_total = 0
        #: Cells answered straight from the store at submission time.
        self.sweep_cells_hit = 0
        #: Cells that became (or attached to) queue jobs.
        self.sweep_cells_queued = 0
        #: Cells that attached to an already-in-flight job — the
        #: overlapping-sweeps dedup the tests and CI gate assert on.
        self.sweep_cells_coalesced = 0
        #: GET /sweeps/<id>/stream consumers started.
        self.sweep_streams = 0
        #: Circuit-store traffic (POST /circuits, GET /circuits/<digest>).
        self.circuits_uploaded = 0
        self.circuits_served = 0
        #: Fleet protocol traffic (remote pull workers; see repro.fleet).
        self.fleet_claims = 0
        self.fleet_heartbeats = 0
        self.fleet_completions = 0
        self.fleet_failures = 0
        #: Jobs requeued after their worker's lease expired unrenewed.
        self.leases_reclaimed = 0

    def count_request(self, route: str, status: int) -> None:
        """Record one handled request under its route label."""
        with self._lock:
            self.requests_total += 1
            self._requests[route] = self._requests.get(route, 0) + 1
            if status >= 400:
                self.errors_total += 1

    def count(self, counter: str, amount: int = 1) -> None:
        """Increment one of the named counters (e.g. ``"store_hits"``)."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def snapshot(self) -> Dict[str, Any]:
        """A consistent point-in-time copy of every counter."""
        with self._lock:
            return {
                "uptime_s": round(time.time() - self._started, 3),
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "requests_by_route": dict(sorted(self._requests.items())),
                "store": {
                    "hits": self.store_hits,
                    "misses": self.store_misses,
                    "results_served": self.results_served,
                },
                "jobs": {
                    "submitted": self.jobs_submitted,
                    "coalesced": self.jobs_coalesced,
                    "completed": self.jobs_completed,
                    "failed": self.jobs_failed,
                },
                "sweeps": {
                    "submitted": self.sweeps_submitted,
                    "cells_total": self.sweep_cells_total,
                    "cells_hit": self.sweep_cells_hit,
                    "cells_queued": self.sweep_cells_queued,
                    "cells_coalesced": self.sweep_cells_coalesced,
                    "streams": self.sweep_streams,
                },
                "circuits": {
                    "uploaded": self.circuits_uploaded,
                    "served": self.circuits_served,
                },
                "fleet": {
                    "claims": self.fleet_claims,
                    "heartbeats": self.fleet_heartbeats,
                    "completions": self.fleet_completions,
                    "failures": self.fleet_failures,
                    "leases_reclaimed": self.leases_reclaimed,
                },
            }
