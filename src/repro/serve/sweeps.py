"""Server-side sweep tracking: per-cell fan-out over the job queue.

A ``POST /sweeps`` expands its :class:`repro.api.sweep.SweepSpec`
server-side and becomes one :class:`SweepRecord`: every cell either
short-circuits on a result-store hit or fans out as one
:class:`repro.serve.jobs.Job` — riding the queue's in-flight
deduplication, so two users' overlapping grids execute each shared cell
exactly once, and fleet workers claim cells like any other job (the
ROADMAP's cell-level distribution, with no new protocol).

The record keeps a **completion-order log** of cell indices guarded by
one condition variable; any number of stream consumers
(``GET /sweeps/<id>/stream``) replay that log from the top and then
block for the next completion, so a late subscriber sees the full
history and a live one is woken the moment a cell finalizes.  Cells are
processed in canonical order at submission, which is why a sweep whose
cells all hit the store streams instantly *in canonical cell order*.

Nothing here owns execution: jobs belong to the queue, envelopes to the
store.  Dropping a stream consumer (client disconnect) therefore leaks
nothing — the generator dies, the jobs finish under queue ownership,
and the record remains pollable.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any, Dict, Iterator, List, Optional

from repro.api.store import ResultStore
from repro.api.sweep import SweepCell, SweepSpec
from repro.obs import trace as _obs
from repro.serve.jobs import DONE, FAILED, Job, JobQueue
from repro.serve.metrics import ServeMetrics

#: Cell states reuse the job-lifecycle vocabulary; a cell is "queued"
#: until its job (or store short-circuit) finalizes it.
QUEUED = "queued"


class _CellState:
    """One cell's observable progress inside a sweep record."""

    __slots__ = ("cell", "status", "source", "job_id", "coalesced",
                 "envelope", "error", "tasks_executed", "wall_s")

    def __init__(self, cell: SweepCell):
        self.cell = cell
        self.status = QUEUED
        #: "store" (submission-time hit) or "computed" (queue job).
        self.source: Optional[str] = None
        self.job_id: Optional[str] = None
        self.coalesced = False
        self.envelope: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.tasks_executed: Optional[int] = None
        self.wall_s: Optional[float] = None

    def describe(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            **self.cell.describe(),
            "status": self.status,
        }
        if self.source is not None:
            payload["source"] = self.source
        if self.job_id is not None:
            payload["job"] = self.job_id
        if self.coalesced:
            payload["coalesced"] = True
        if self.error is not None:
            payload["error"] = self.error
        if self.tasks_executed is not None:
            payload["tasks_executed"] = self.tasks_executed
        return payload


class SweepRecord:
    """One submitted sweep: cells, their lifecycle, a completion log."""

    def __init__(self, sweep_id: str, spec: SweepSpec, force: bool):
        self.id = sweep_id
        self.spec = spec
        self.force = force
        self.created_at = time.time()
        self.cells: List[_CellState] = [_CellState(cell)
                                        for cell in spec.cells()]
        self._cond = threading.Condition()
        #: Cell indices in the order they finalized — the stream replay
        #: log every consumer reads from the top.
        self._completed: List[int] = []

    # -- lifecycle ---------------------------------------------------------------

    def _finish_cell(self, state: _CellState, status: str, source: str,
                     envelope: Optional[Dict[str, Any]] = None,
                     error: Optional[str] = None,
                     tasks_executed: Optional[int] = None,
                     wall_s: Optional[float] = None) -> None:
        with self._cond:
            if state.status in (DONE, FAILED):
                return  # one job can finalize a cell only once
            state.status = status
            state.source = source
            state.envelope = envelope
            state.error = error
            state.tasks_executed = tasks_executed
            state.wall_s = wall_s
            self._completed.append(state.cell.index)
            self._cond.notify_all()

    def _cell_job_done(self, state: _CellState, job: Job) -> None:
        """The queue's done-callback for one cell's job."""
        if job.status == DONE:
            self._finish_cell(state, DONE, "computed",
                              envelope=job.envelope,
                              tasks_executed=job.tasks_executed,
                              wall_s=job.wall_s)
        else:
            self._finish_cell(state, FAILED, "computed",
                              error=job.error or "job failed",
                              tasks_executed=job.tasks_executed,
                              wall_s=job.wall_s)

    # -- observation -------------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.cells)

    def finished(self) -> bool:
        with self._cond:
            return len(self._completed) >= self.total

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every cell finalized; ``True`` unless timed out."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self._completed) < self.total:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining if remaining is not None else 0.5)
        return True

    def describe(self) -> Dict[str, Any]:
        """The JSON shape of ``GET /sweeps/<id>``."""
        with self._cond:
            by_status: Dict[str, int] = {}
            for state in self.cells:
                by_status[state.status] = by_status.get(state.status, 0) + 1
            completed = len(self._completed)
            detail = [state.describe() for state in self.cells]
        return {
            "id": self.id,
            "experiment": self.spec.experiment,
            "quick": self.spec.quick,
            "force": self.force,
            "total": self.total,
            "completed": completed,
            "by_status": dict(sorted(by_status.items())),
            "cells": detail,
            "stream_url": f"/sweeps/{self.id}/stream",
        }

    def events(self) -> Iterator[Dict[str, Any]]:
        """Yield one record per cell **in completion order**, blocking
        until the next cell finalizes; ends after the last cell.

        Safe for any number of concurrent consumers: each replays the
        completion log from the top (already-finished cells stream
        immediately) and then waits on the shared condition.
        """
        delivered = 0
        while delivered < self.total:
            with self._cond:
                while len(self._completed) <= delivered:
                    self._cond.wait(0.5)
                index = self._completed[delivered]
                state = self.cells[index]
                payload = state.describe()
            delivered += 1
            if state.envelope is not None:
                payload["envelope"] = state.envelope
            yield payload

    def summary(self) -> Dict[str, Any]:
        """The stream's terminal line: outcome counts, no envelopes."""
        with self._cond:
            failed = sum(1 for state in self.cells
                         if state.status == FAILED)
            done = sum(1 for state in self.cells if state.status == DONE)
        return {
            "sweep": self.id,
            "total": self.total,
            "done": done,
            "failed": failed,
        }


class SweepTable:
    """Every live sweep, keyed by id, over one store + one job queue."""

    def __init__(self, store: ResultStore, jobs: JobQueue,
                 metrics: Optional[ServeMetrics] = None,
                 max_finished: int = 256):
        if max_finished < 1:
            raise ValueError(f"max_finished must be >= 1, got {max_finished}")
        self.store = store
        self.jobs = jobs
        self.metrics = metrics if metrics is not None else jobs.metrics
        self._max_finished = max_finished
        self._lock = threading.Lock()
        self._sweeps: Dict[str, SweepRecord] = {}

    def submit(self, spec: SweepSpec, force: bool = False) -> SweepRecord:
        """Expand ``spec`` into one job per cell (store hits short-
        circuit; misses ride the queue's in-flight dedup)."""
        record = SweepRecord(uuid.uuid4().hex[:12], spec, force)
        with self._lock:
            self._sweeps[record.id] = record
            self._prune_finished_locked()
        self.metrics.count("sweeps_submitted")
        self.metrics.count("sweep_cells_total", record.total)
        for state in record.cells:
            cell = state.cell
            if not force:
                start = time.perf_counter()
                envelope = self.store.get(cell.key)
                if envelope is not None:
                    # Same contract as a POST /run store hit: ledger the
                    # replay, count it, never touch the queue.
                    self.store.record(cell.key, spec.experiment,
                                      time.perf_counter() - start,
                                      hit=True, trace=_obs.current_trace_id())
                    self.metrics.count("sweep_cells_hit")
                    record._finish_cell(state, DONE, "store",
                                        envelope=envelope,
                                        tasks_executed=0)
                    continue
            job, coalesced = self.jobs.submit(
                spec.experiment, cell.key, spec.quick, dict(cell.params),
                force=force)
            state.job_id = job.id
            state.coalesced = coalesced
            self.metrics.count("sweep_cells_queued")
            if coalesced:
                self.metrics.count("sweep_cells_coalesced")
            self.jobs.on_done(
                job, lambda job, state=state:
                record._cell_job_done(state, job))
        return record

    def get(self, sweep_id: str) -> Optional[SweepRecord]:
        with self._lock:
            return self._sweeps.get(sweep_id)

    def describe(self) -> Dict[str, Any]:
        """Table-level state for ``GET /metrics``."""
        with self._lock:
            records = list(self._sweeps.values())
        active = sum(1 for record in records if not record.finished())
        return {"tracked": len(records), "active": active}

    def _prune_finished_locked(self) -> None:
        finished = [sweep_id for sweep_id, record in self._sweeps.items()
                    if record.finished()]
        for sweep_id in finished[:max(0,
                                      len(finished) - self._max_finished)]:
            del self._sweeps[sweep_id]
