"""The experiment-serving subsystem.

``python -m repro serve --port P --store DIR --jobs N`` turns the
registry + session + result-store stack into a long-lived HTTP JSON
service: cached results are served straight from the
:class:`~repro.api.store.ResultStore`, misses run on a background job
queue with in-flight deduplication, and everything a run produces
persists back into the store so replays are free.

Layering (each importable and testable on its own):

* :mod:`repro.serve.metrics` — thread-safe counters behind ``/metrics``;
* :mod:`repro.serve.jobs` — the job queue: worker threads, lifecycle,
  dedup, per-job :class:`~repro.api.Session` isolation;
* :mod:`repro.serve.sweeps` — server-side sweep tracking: a
  ``POST /sweeps`` expands a :class:`~repro.api.sweep.SweepSpec` into
  one queue job per cell (store hits short-circuit; overlapping grids
  share in-flight cells), and ``GET /sweeps/<id>/stream`` delivers each
  cell's envelope the moment it finalizes as line-delimited JSON;
* :mod:`repro.serve.app` — transport-free request routing;
* :mod:`repro.serve.http` — the ``ThreadingHTTPServer`` shell and
  :func:`build_server`, which wires the whole stack.

The matching client is :class:`repro.api.client.RemoteSession`, whose
``run()`` proxies to a server — a backend really is just a Session
policy.

The queue also speaks the :mod:`repro.fleet` pull protocol
(``/fleet/claim``, ``/fleet/heartbeat``, ``/fleet/complete``): remote
workers claim queued jobs under heartbeat-renewed leases, and a lease
that expires is reaped and the job requeued — run the server with zero
local workers (``--jobs 0``) for a fleet-only deployment.
"""

from repro.serve.app import Response, ServeApp
from repro.serve.http import ReproHTTPServer, build_server
from repro.serve.jobs import Job, JobQueue
from repro.serve.metrics import ServeMetrics
from repro.serve.sweeps import SweepRecord, SweepTable

__all__ = [
    "Job",
    "JobQueue",
    "ReproHTTPServer",
    "Response",
    "ServeApp",
    "ServeMetrics",
    "SweepRecord",
    "SweepTable",
    "build_server",
]
