"""Declarative task grids: canonical keys + derived seeds + the engine.

``run_tasks`` (:mod:`repro.exec.engine`) executes any flat task list, but
every driver used to hand-roll the same three steps around it: build a
canonical :func:`repro.exec.keys.task_key` per cell, derive the cell's
RNG seed from that key, and zip results back into grid order.
:func:`grid_map` owns those steps, so a driver is reduced to

* a **cell**: one frozen dataclass (or plain dict) of picklable
  parameters describing one grid point;
* a **task function**: a module-level callable mapping one cell to one
  result, reading its randomness only from the cell's ``seed`` field;
* a **reduction**: plain serial code folding the returned list into the
  driver's result object.

The determinism contract is inherited from the keys module: a cell's
seed depends only on the *identity* of the cell (its primitive fields,
under an experiment namespace) and the caller's base seed — never on
enumeration order, worker count, or how many draws other cells made.
Adding or removing grid cells therefore cannot shift the seeds of the
cells that remain.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.exec.engine import run_tasks
from repro.exec.keys import derive_seed, task_key

#: Field types admissible in a cell's canonical key.  Everything else —
#: model objects, architectures, arrays — rides along to the task
#: function but stays out of the key (and so cannot perturb seeds).
_KEYABLE_TYPES = (str, int, float, bool, type(None))

#: The cell field grid_map owns: it is overwritten with the key-derived
#: seed and never participates in the key itself.
SEED_FIELD = "seed"


def _is_keyable(value) -> bool:
    if isinstance(value, _KEYABLE_TYPES):
        return True
    if isinstance(value, tuple):
        return all(_is_keyable(item) for item in value)
    return False


def _cell_fields(cell) -> Dict:
    """A cell's fields as a plain mapping (dataclass or dict alike)."""
    if dataclasses.is_dataclass(cell) and not isinstance(cell, type):
        return {f.name: getattr(cell, f.name)
                for f in dataclasses.fields(cell)}
    if isinstance(cell, dict):
        return dict(cell)
    raise TypeError(
        f"grid cells must be dataclass instances or dicts, got {type(cell)!r}"
    )


def cell_key(
    experiment: str,
    cell,
    key_fields: Optional[Sequence[str]] = None,
) -> str:
    """The canonical key identifying one grid cell.

    ``key_fields=None`` selects every primitive field automatically
    (minus ``seed``); pass an explicit tuple to pin the key schema —
    required when a driver must stay byte-compatible with seeds derived
    before a field was added.
    """
    fields = _cell_fields(cell)
    fields.pop(SEED_FIELD, None)
    if key_fields is None:
        names = [name for name, value in fields.items() if _is_keyable(value)]
    else:
        names = list(key_fields)
        for name in names:
            if name not in fields:
                raise KeyError(
                    f"key field {name!r} missing from cell {cell!r}")
            if not _is_keyable(fields[name]):
                raise TypeError(
                    f"key field {name!r} has non-primitive value "
                    f"{fields[name]!r}; keys must be built from "
                    "str/int/float/bool/None (or tuples of them)")
    return task_key(experiment=experiment,
                    **{name: fields[name] for name in names})


def _seeded(cell, seed: int):
    if dataclasses.is_dataclass(cell) and not isinstance(cell, type):
        return dataclasses.replace(cell, **{SEED_FIELD: seed})
    task = dict(cell)
    task[SEED_FIELD] = seed
    return task


def grid_map(
    task_fn: Callable,
    cells: Iterable,
    *,
    experiment: str,
    base_seed: int = 0,
    key_fields: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    session=None,
) -> List:
    """Run ``task_fn`` over every cell, results in cell order.

    Each cell (a frozen dataclass with a ``seed`` field, or a dict) is
    stamped with ``seed = derive_seed(cell_key(experiment, cell,
    key_fields), base_seed)`` and fanned out over
    :func:`repro.exec.engine.run_tasks` under the active
    :class:`repro.api.Session` (or ``session``/``jobs`` overrides).
    ``task_fn`` must be module-level and each stamped cell picklable
    when running with more than one worker.

    Whatever the caller put in ``seed`` is overwritten — the field
    belongs to grid_map, which is what makes ``jobs=1`` and ``jobs=N``
    bitwise-identical for stochastic tasks.  Deterministic tasks simply
    ignore it.
    """
    tasks = [
        _seeded(cell, derive_seed(cell_key(experiment, cell, key_fields),
                                  base=base_seed))
        for cell in cells
    ]
    return run_tasks(task_fn, tasks, jobs=jobs, session=session)
