"""Persistent, cross-process compilation cache.

Compilation dominates every sweep: the figure drivers and the shot
simulator compile the same (circuit, topology, config) points over and
over, and each fresh process used to start from zero.  This module backs
every compile with a two-tier cache:

* an **in-memory** tier (always on) deduplicating work within a process;
* an optional **on-disk** tier shared between processes and across runs,
  keyed by :func:`repro.exec.keys.compile_key`.

Disk entries are content-addressed pickles written atomically (temp file
+ ``os.replace``), so concurrent workers hammering the same directory
never observe a torn entry; a corrupt or unreadable file is treated as a
miss and overwritten.  Because a :class:`CompiledProgram` stores the
wall-clock ``compile_seconds`` measured when it was first built, a warm
cache also pins the *measured compile time* — which is what makes
figure output containing compile durations reproducible run-to-run.

Cached programs are shared objects: treat them as immutable (the loss
strategies replace their program, never mutate it).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from typing import List, Optional, Tuple

from repro.circuits.circuit import Circuit
from repro.core.config import CompilerConfig
from repro.core.result import CompiledProgram
from repro.exec.diskutil import lru_evict, sweep_stale_temp_files
from repro.exec.keys import compile_key
from repro.hardware.topology import Topology

#: Environment variable naming the default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class CompileCache:
    """Two-tier (memory + optional disk) store of compiled programs."""

    def __init__(self, path: Optional[str] = None):
        self.path = os.path.abspath(path) if path else None
        self._memory: dict = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    # -- lookup/store ------------------------------------------------------------

    def lookup(self, key: str) -> Optional[CompiledProgram]:
        program = self._memory.get(key)
        if program is not None:
            self.memory_hits += 1
            return program
        program = self._read_disk(key)
        if program is not None:
            self.disk_hits += 1
            self._memory[key] = program
            return program
        self.misses += 1
        return None

    def store(self, key: str, program: CompiledProgram) -> None:
        self._memory[key] = program
        if self.path is not None:
            self._write_disk(key, program)

    def clear_memory(self) -> None:
        self._memory.clear()

    def stats(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "entries_in_memory": len(self._memory),
        }

    # -- disk tier ---------------------------------------------------------------

    def _file_for(self, key: str) -> str:
        return os.path.join(self.path, key[:2], key + ".pkl")

    def _read_disk(self, key: str) -> Optional[CompiledProgram]:
        if self.path is None:
            return None
        target = self._file_for(key)
        try:
            with open(target, "rb") as handle:
                program = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(program, CompiledProgram):
            return None
        try:
            # Touch on hit so prune_disk evicts least-recently-used
            # entries first.
            os.utime(target)
        except OSError:
            pass
        return program

    def _write_disk(self, key: str, program: CompiledProgram) -> None:
        target = self._file_for(key)
        directory = os.path.dirname(target)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(program, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_path, target)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache directory degrades to memory-only.
            pass

    # -- disk-tier maintenance ---------------------------------------------------

    def disk_entries(self) -> List[Tuple[str, int, float]]:
        """Every persisted entry as ``(path, bytes, mtime)``.

        Skips in-flight temp files; a concurrently-deleted file is
        silently dropped.
        """
        if self.path is None:
            return []
        entries = []
        for dirpath, _, filenames in os.walk(self.path):
            for name in filenames:
                if not name.endswith(".pkl") or name.startswith(".tmp-"):
                    continue
                target = os.path.join(dirpath, name)
                try:
                    info = os.stat(target)
                except OSError:
                    continue
                entries.append((target, info.st_size, info.st_mtime))
        return entries

    def disk_stats(self) -> dict:
        entries = self.disk_entries()
        return {
            "path": self.path,
            "entries": len(entries),
            "total_bytes": sum(size for _, size, _ in entries),
        }

    def _sweep_stale_temp_files(self, max_age_seconds: float) -> None:
        """Remove ``.tmp-*`` leftovers from writers that died mid-write
        (see :func:`repro.exec.diskutil.sweep_stale_temp_files` for the
        mtime-boundary contract)."""
        if self.path is None:
            return
        sweep_stale_temp_files(self.path, max_age_seconds)

    def clear_disk(self) -> int:
        """Delete every persisted entry (and any orphaned temp files);
        returns the number of entries removed."""
        removed = 0
        for target, _, _ in self.disk_entries():
            try:
                os.unlink(target)
                removed += 1
            except OSError:
                pass
        # One second of grace covers the coarsest common mtime
        # granularity: a temp file a live writer touched in the same
        # second as this clear survives and becomes (or replaces) an
        # entry; genuinely orphaned ones fall to the next maintenance
        # pass.
        self._sweep_stale_temp_files(max_age_seconds=1.0)
        return removed

    def prune_disk(self, max_bytes: int) -> dict:
        """Evict least-recently-used entries until the tier fits
        ``max_bytes``; returns ``{"removed", "remaining_entries",
        "remaining_bytes"}``.

        The in-memory tier is untouched (it dies with the process); only
        the unbounded on-disk tier needs eviction.
        """
        # Orphans from killed writers never become entries, so evicting
        # only entries could leave the directory over budget forever.
        self._sweep_stale_temp_files(max_age_seconds=3600.0)
        return lru_evict(self.disk_entries(), max_bytes)


# -- session resolution and deprecation shims --------------------------------------

# Execution state lives on repro.api.Session objects now.  The functions
# below forward to the *current* session (reads) or mutate the process
# *default* session (the deprecated writers), so legacy callers keep
# working without reintroducing module-global mutable state.


def get_cache() -> CompileCache:
    """The current session's compile cache."""
    from repro.api.session import current_session

    return current_session().cache


def set_cache_dir(path: Optional[str]) -> CompileCache:
    """Deprecated, slated for removal: repoint the *default session's*
    cache at ``path``.

    Prefer ``Session(cache_dir=...)``.  Always starts from an empty
    memory tier, mirroring the historical behavior.  This shim is not
    part of the supported ``repro.api.__all__`` surface and will be
    removed in a future release.
    """
    from repro.api.session import default_session

    warnings.warn(
        "repro.exec.cache.set_cache_dir is deprecated and will be "
        "removed; configure a repro.api.Session instead",
        DeprecationWarning,
        stacklevel=2,
    )
    session = default_session()
    session.cache = CompileCache(path)
    return session.cache


def swap_cache(cache: Optional[CompileCache]) -> Optional[CompileCache]:
    """Deprecated, slated for removal: install ``cache`` on the
    *default session*, returning the previous cache object (warm tier
    and stats intact).  Prefer activating a dedicated ``Session``; like
    the other legacy shims this is outside ``repro.api.__all__`` and
    will be removed in a future release.

    ``swap_cache(None)`` restores the historical "uninitialized" state:
    a fresh cache rebuilt from ``REPRO_CACHE_DIR`` — it does NOT disable
    the disk tier.
    """
    from repro.api.session import default_session

    warnings.warn(
        "repro.exec.cache.swap_cache is deprecated and will be removed; "
        "activate a repro.api.Session instead",
        DeprecationWarning,
        stacklevel=2,
    )
    session = default_session()
    previous = session.cache
    session.cache = (cache if cache is not None
                     else CompileCache(os.environ.get(CACHE_DIR_ENV) or None))
    return previous


def get_cache_dir() -> Optional[str]:
    return get_cache().path


# -- the cached compile entry point ------------------------------------------------


def cached_compile(
    circuit: Circuit,
    topology: Topology,
    config: Optional[CompilerConfig] = None,
    persist: bool = True,
    cache: Optional[CompileCache] = None,
) -> CompiledProgram:
    """``compile_circuit`` behind a compile cache.

    ``cache`` defaults to the current session's (see
    :class:`repro.api.Session`); pass one explicitly to bypass session
    resolution.  ``persist=False`` keeps the result out of the cache
    entirely (the lookup still runs) — used for mid-run recompilations
    against transient hole patterns: their keys are almost never seen
    twice, so storing them would only grow the memory tier and bloat the
    disk store without ever producing a hit.
    """
    from repro.core.compiler import compile_circuit

    if config is None:
        config = CompilerConfig(
            max_interaction_distance=topology.max_interaction_distance
        )
    if abs(config.max_interaction_distance
           - topology.max_interaction_distance) > 1e-9:
        # Mirror compile_circuit's normalization so equal effective
        # compilations share one key.
        config = config.with_mid(topology.max_interaction_distance)

    from repro.obs import trace as _trace

    if cache is None:
        cache = get_cache()
    key = compile_key(circuit, topology, config)
    with _trace.span("compile", key=key[:16]) as compile_span:
        memory_before, disk_before = cache.memory_hits, cache.disk_hits
        program = cache.lookup(key)
        if program is None:
            compile_span.set(cache="miss")
            program = compile_circuit(circuit, topology, config)
            if persist:
                cache.store(key, program)
        elif cache.memory_hits > memory_before:
            compile_span.set(cache="memory")
        elif cache.disk_hits > disk_before:
            compile_span.set(cache="disk")
    return program
