"""Persistent, cross-process compilation cache.

Compilation dominates every sweep: the figure drivers and the shot
simulator compile the same (circuit, topology, config) points over and
over, and each fresh process used to start from zero.  This module backs
every compile with a two-tier cache:

* an **in-memory** tier (always on) deduplicating work within a process;
* an optional **on-disk** tier shared between processes and across runs,
  keyed by :func:`repro.exec.keys.compile_key`.

Disk entries are content-addressed pickles written atomically (temp file
+ ``os.replace``), so concurrent workers hammering the same directory
never observe a torn entry; a corrupt or unreadable file is treated as a
miss and overwritten.  Because a :class:`CompiledProgram` stores the
wall-clock ``compile_seconds`` measured when it was first built, a warm
cache also pins the *measured compile time* — which is what makes
figure output containing compile durations reproducible run-to-run.

Cached programs are shared objects: treat them as immutable (the loss
strategies replace their program, never mutate it).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Optional

from repro.circuits.circuit import Circuit
from repro.core.config import CompilerConfig
from repro.core.result import CompiledProgram
from repro.exec.keys import compile_key
from repro.hardware.topology import Topology

#: Environment variable naming the default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class CompileCache:
    """Two-tier (memory + optional disk) store of compiled programs."""

    def __init__(self, path: Optional[str] = None):
        self.path = os.path.abspath(path) if path else None
        self._memory: dict = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    # -- lookup/store ------------------------------------------------------------

    def lookup(self, key: str) -> Optional[CompiledProgram]:
        program = self._memory.get(key)
        if program is not None:
            self.memory_hits += 1
            return program
        program = self._read_disk(key)
        if program is not None:
            self.disk_hits += 1
            self._memory[key] = program
            return program
        self.misses += 1
        return None

    def store(self, key: str, program: CompiledProgram) -> None:
        self._memory[key] = program
        if self.path is not None:
            self._write_disk(key, program)

    def clear_memory(self) -> None:
        self._memory.clear()

    def stats(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "entries_in_memory": len(self._memory),
        }

    # -- disk tier ---------------------------------------------------------------

    def _file_for(self, key: str) -> str:
        return os.path.join(self.path, key[:2], key + ".pkl")

    def _read_disk(self, key: str) -> Optional[CompiledProgram]:
        if self.path is None:
            return None
        target = self._file_for(key)
        try:
            with open(target, "rb") as handle:
                program = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        return program if isinstance(program, CompiledProgram) else None

    def _write_disk(self, key: str, program: CompiledProgram) -> None:
        target = self._file_for(key)
        directory = os.path.dirname(target)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(program, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_path, target)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache directory degrades to memory-only.
            pass


# -- process-global cache ----------------------------------------------------------

_ACTIVE: Optional[CompileCache] = None


def get_cache() -> CompileCache:
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = CompileCache(os.environ.get(CACHE_DIR_ENV) or None)
    return _ACTIVE


def set_cache_dir(path: Optional[str]) -> CompileCache:
    """Point the process-global cache at ``path`` (None = memory only).

    Always starts from an empty memory tier; to restore a previous
    cache *object* (warm tier and stats intact), use :func:`swap_cache`.
    """
    global _ACTIVE
    _ACTIVE = CompileCache(path)
    return _ACTIVE


def swap_cache(cache: Optional[CompileCache]) -> Optional[CompileCache]:
    """Install ``cache`` as the process-global cache, returning the
    previous one (which may be None if never initialized)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    return previous


def get_cache_dir() -> Optional[str]:
    return get_cache().path


# -- the cached compile entry point ------------------------------------------------


def cached_compile(
    circuit: Circuit,
    topology: Topology,
    config: Optional[CompilerConfig] = None,
    persist: bool = True,
) -> CompiledProgram:
    """``compile_circuit`` behind the process-global cache.

    ``persist=False`` keeps the result out of the cache entirely (the
    lookup still runs) — used for mid-run recompilations against
    transient hole patterns: their keys are almost never seen twice, so
    storing them would only grow the memory tier and bloat the disk
    store without ever producing a hit.
    """
    from repro.core.compiler import compile_circuit

    if config is None:
        config = CompilerConfig(
            max_interaction_distance=topology.max_interaction_distance
        )
    if abs(config.max_interaction_distance
           - topology.max_interaction_distance) > 1e-9:
        # Mirror compile_circuit's normalization so equal effective
        # compilations share one key.
        config = config.with_mid(topology.max_interaction_distance)

    cache = get_cache()
    key = compile_key(circuit, topology, config)
    program = cache.lookup(key)
    if program is None:
        program = compile_circuit(circuit, topology, config)
        if persist:
            cache.store(key, program)
    return program
