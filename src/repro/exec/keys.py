"""Canonical keys for compilation caching and sweep-task seeding.

Every repeated computation in the library is identified by a *canonical
key*: a stable string derived from the semantic content of its inputs,
never from object identity, memory layout, or process state.  Two
properties matter:

* **Stability** — the same (circuit, topology, config) yields the same
  key in any process, on any run, after any restart.  Keys are built
  from primitive values (ints, floats via ``repr``, strings) and hashed
  with SHA-256.
* **Canonicalization** — gate-list orderings that cannot change program
  semantics (reordering gates *within* one ASAP dependency layer) map to
  the same key, while any change to the circuit's semantics, the grid,
  the interaction distance, the hole pattern, or any compiler knob maps
  to a distinct key.

The same machinery derives per-task RNG seeds for the sweep engine:
``derive_seed`` hashes a task's canonical key, so a task's random stream
depends only on *which* task it is — not on scheduling order, worker
count, or how many draws other tasks made.  That is what makes sweeps
bitwise-reproducible at any ``--jobs`` level.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.circuits.circuit import Circuit
from repro.core.config import CompilerConfig
from repro.hardware.topology import Topology

#: Bump to invalidate every persisted cache entry (schema or compiler
#: semantics change).
SCHEMA_VERSION = 1


# -- fingerprints ------------------------------------------------------------------


def circuit_fingerprint(circuit: Circuit) -> Tuple:
    """Canonical form of a circuit: gates grouped by ASAP layer.

    Within one dependency layer no two gates share a qubit, so their
    relative list order is semantically irrelevant; each layer is sorted
    into a canonical order.  Across layers, order is the dependency
    structure itself and is preserved.
    """
    gates = circuit.gates
    layers = []
    for layer_indices in circuit.layers():
        layer = sorted(
            (gates[i].name, gates[i].qubits, gates[i].params)
            for i in layer_indices
        )
        layers.append(tuple(layer))
    return ("circuit", circuit.num_qubits, tuple(layers))


def topology_fingerprint(topology: Topology) -> Tuple:
    """Canonical form of a device: grid shape, MID, and hole pattern."""
    return (
        "topology",
        topology.grid.rows,
        topology.grid.cols,
        repr(float(topology.max_interaction_distance)),
        tuple(sorted(topology.lost_sites)),
    )


def config_fingerprint(config: CompilerConfig) -> Tuple:
    """Canonical form of a compiler configuration: every field, by name."""
    fields = []
    for field in sorted(dataclasses.fields(config), key=lambda f: f.name):
        value = getattr(config, field.name)
        if isinstance(value, float):
            value = repr(value)
        fields.append((field.name, value))
    return ("config", tuple(fields))


# -- keys --------------------------------------------------------------------------


def _digest(payload: Tuple) -> str:
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def compile_key(
    circuit: Circuit, topology: Topology, config: CompilerConfig
) -> str:
    """Content hash identifying one compilation.

    Invalidation rules: the key changes whenever the circuit semantics,
    the grid dimensions, the interaction distance, the set of lost
    sites, any :class:`CompilerConfig` field, or :data:`SCHEMA_VERSION`
    changes — and only then.
    """
    return _digest((
        "repro-compile",
        SCHEMA_VERSION,
        circuit_fingerprint(circuit),
        topology_fingerprint(topology),
        config_fingerprint(config),
    ))


def task_key(**params) -> str:
    """Canonical key for one sweep task, from primitive keyword params.

    Floats are rendered with ``repr`` so 3.0 and 3 stay distinct from
    3.5 but identical across processes.

    Values carrying a callable ``store_form()`` (typed workload
    references — :class:`repro.workloads.ref.WorkloadRef`) canonicalize
    to that string, so the typed object and its string spelling
    (``"bv@20"``, ``"circuit:<digest>"``) produce the same key.

    **SCHEMA_VERSION rules:** adding acceptance of a *new* value type
    (as here) needs no bump — no pre-existing key ever contained such a
    value, so every named-benchmark key is unchanged.  A bump is
    required only when the canonicalization of an *already-accepted*
    type changes (e.g. a different float rendering), which would silently
    re-key existing results.
    """
    parts = []
    for name in sorted(params):
        value = params[name]
        store_form = getattr(value, "store_form", None)
        if callable(store_form):
            value = store_form()
        if isinstance(value, float):
            value = repr(value)
        parts.append(f"{name}={value!r}")
    return ";".join(parts)


def params_digest(namespace: Tuple, params: Dict) -> str:
    """Content hash of a parameter mapping under a namespace tuple.

    Shares :func:`task_key`'s canonicalization (sorted names, floats via
    ``repr``) so every layer that identifies work by its parameters —
    sweep-task seeding and the persistent result store alike — agrees on
    what makes two parameter sets "the same".  ``namespace`` carries the
    consumer's own invariants (schema versions, experiment name) into
    the digest.
    """
    return _digest((namespace, task_key(**params)))


def derive_seed(key: str, base: int = 0) -> int:
    """Deterministic 63-bit seed for the task identified by ``key``.

    Seeds depend only on (key, base): spawn-safe, restart-stable, and
    independent of the order tasks are scheduled or completed in.
    """
    digest = hashlib.sha256(
        repr(("repro-seed", int(base), key)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


# -- task grids --------------------------------------------------------------------


def task_grid(**axes: Iterable) -> List[Dict]:
    """Flatten named axes into a task list (cartesian product).

    ``task_grid(mid=(2.0, 3.0), strategy=("a", "b"))`` yields four dicts
    in deterministic row-major order (last axis fastest), ready to fan
    out over the sweep engine.

    This ordering is a public contract: :class:`repro.api.SweepSpec`
    expands its (name-sorted) axes through this exact function, so a
    sweep's canonical cell order — relied on by the result stream and
    by client/server expansion agreement — is this row-major order.
    """
    names = list(axes)
    tasks: List[Dict] = [{}]
    for name in names:
        values = list(axes[name])
        tasks = [dict(t, **{name: v}) for t in tasks for v in values]
    return tasks
