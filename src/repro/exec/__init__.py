"""Parallel sweep execution: task grids, deterministic seeding, and a
persistent compile cache.

The subsystem has three parts:

* :mod:`repro.exec.keys` — canonical content keys for compilations and
  sweep tasks, plus spawn-safe per-task seed derivation;
* :mod:`repro.exec.cache` — a two-tier (memory + on-disk) compile cache
  shared by every figure driver, strategy, and worker process;
* :mod:`repro.exec.engine` — ``run_tasks``: execute a flat task list
  through an :class:`ExecBackend` (inline or spawn-pool) with results
  returned in task order;
* :mod:`repro.exec.grid` — ``grid_map``: the declarative layer every
  experiment driver routes through — cells in, canonical keys and
  derived seeds stamped, results out in grid order.

Execution *policy* (worker count, which cache, RNG base) lives on
:class:`repro.api.Session` objects; the engine and cache resolve the
active session per call.  ``set_jobs``/``set_cache_dir``/``swap_cache``
remain importable as deprecation shims that forward to the process
default session.

The invariant the whole package exists to uphold: **any worker count
produces bitwise-identical results**, because every task's randomness is
derived from its canonical key and compile artifacts are content-
addressed.
"""

from repro.exec.cache import (
    CompileCache,
    cached_compile,
    get_cache,
    get_cache_dir,
    set_cache_dir,
    swap_cache,
)
from repro.exec.engine import (
    ExecBackend,
    InlineBackend,
    SpawnPoolBackend,
    current_jobs,
    resolve_backend,
    run_tasks,
    set_jobs,
    sweep_settings,
)
from repro.exec.grid import cell_key, grid_map
from repro.exec.keys import (
    SCHEMA_VERSION,
    compile_key,
    derive_seed,
    task_grid,
    task_key,
)

__all__ = [
    "SCHEMA_VERSION",
    "CompileCache",
    "ExecBackend",
    "InlineBackend",
    "SpawnPoolBackend",
    "cached_compile",
    "cell_key",
    "compile_key",
    "current_jobs",
    "derive_seed",
    "grid_map",
    "get_cache",
    "get_cache_dir",
    "resolve_backend",
    "run_tasks",
    "set_cache_dir",
    "set_jobs",
    "swap_cache",
    "sweep_settings",
    "task_grid",
    "task_key",
]
