"""Parallel sweep engine.

Experiment drivers describe their work as a flat list of picklable task
dicts (built with :func:`repro.exec.keys.task_grid`) plus a module-level
task function; :func:`run_tasks` executes the list either inline
(``jobs=1``) or fanned out over a spawn-context ``ProcessPoolExecutor``.

Determinism contract: results are returned **in task order** regardless
of completion order, and every stochastic task must derive its RNG seed
from its canonical task key (:func:`repro.exec.keys.derive_seed`), never
from a shared sequential stream.  Under that contract ``jobs=1`` and
``jobs=N`` are bitwise-identical.

The spawn context (rather than fork) is deliberate: workers start from a
clean interpreter, so results cannot depend on whatever compile caches
or RNG state the parent had accumulated — the same guarantee a fresh CLI
run gets.  Workers inherit the parent's on-disk cache directory so all
processes share compile work.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterable, List, Optional

from repro.exec import cache as _cache

#: Process-global default worker count, set by the CLI's ``--jobs``.
_JOBS = 1


def set_jobs(jobs: int) -> None:
    global _JOBS
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _JOBS = int(jobs)


def current_jobs() -> int:
    return _JOBS


@contextmanager
def sweep_settings(jobs: Optional[int] = None,
                   cache_dir: Optional[str] = "__keep__"):
    """Temporarily override the global jobs count and/or cache directory.

    On exit the previous cache *object* is reinstated, warm memory tier
    and stats included — the override is transparent to surrounding
    code.
    """
    global _JOBS
    saved_jobs = _JOBS
    saved_cache = None
    try:
        if jobs is not None:
            set_jobs(jobs)
        if cache_dir != "__keep__":
            saved_cache = _cache.swap_cache(_cache.CompileCache(cache_dir))
        yield
    finally:
        _JOBS = saved_jobs
        if cache_dir != "__keep__":
            _cache.swap_cache(saved_cache)


def _worker_init(cache_dir: Optional[str]) -> None:
    # Mirror the parent's cache state exactly — including "disabled".
    # A worker must not fall back to REPRO_CACHE_DIR from the inherited
    # environment when the parent explicitly runs without a disk cache.
    _cache.set_cache_dir(cache_dir)


def run_tasks(
    task_fn: Callable,
    tasks: Iterable,
    jobs: Optional[int] = None,
) -> List:
    """Run ``task_fn`` over every task, returning results in task order.

    ``task_fn`` must be a module-level callable and each task picklable
    when ``jobs > 1`` (spawn-based workers re-import the module).  A task
    raising an exception propagates it to the caller.
    """
    tasks = list(tasks)
    if jobs is None:
        jobs = current_jobs()
    jobs = max(1, min(int(jobs), len(tasks))) if tasks else 1

    if jobs == 1:
        return [task_fn(task) for task in tasks]

    context = multiprocessing.get_context("spawn")
    pool = ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=context,
        initializer=_worker_init,
        initargs=(_cache.get_cache_dir(),),
    )
    try:
        futures = [pool.submit(task_fn, task) for task in tasks]
        return [future.result() for future in futures]
    except BaseException:
        # Fail fast: don't let a 200-cell grid grind on for minutes
        # after cell 3 has already doomed the sweep.
        pool.shutdown(wait=True, cancel_futures=True)
        raise
    finally:
        pool.shutdown(wait=True)
