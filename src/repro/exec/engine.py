"""Parallel sweep engine.

Experiment drivers describe their work as a flat list of picklable task
dicts (built with :func:`repro.exec.keys.task_grid`) plus a module-level
task function; :func:`run_tasks` executes the list through an
:class:`ExecBackend` — inline (:class:`InlineBackend`) or fanned out
over a spawn-context ``ProcessPoolExecutor``
(:class:`SpawnPoolBackend`).

The backend is the seam "a backend = a Session policy" refers to: a
:class:`repro.api.Session` may pin one explicitly (``Session(backend=
InlineBackend())``), and anything that executes task grids — the CLI,
the serving layer's job queue, a fleet worker — selects execution by
configuring its session, never by branching inside a driver.  When no
backend is pinned, ``run_tasks`` picks inline vs. spawn-pool from the
session's ``jobs`` count, exactly as it always has.

Execution policy — worker count and compile cache — belongs to the
active :class:`repro.api.Session`; ``run_tasks`` resolves it per call,
so two differently-configured sessions can sweep concurrently in one
process.  The legacy module-global setter (:func:`set_jobs`) survives
only as a deprecation shim that mutates the process *default* session.

Determinism contract: results are returned **in task order** regardless
of completion order, and every stochastic task must derive its RNG seed
from its canonical task key (:func:`repro.exec.keys.derive_seed`), never
from a shared sequential stream.  Under that contract ``jobs=1`` and
``jobs=N`` are bitwise-identical.

The spawn context (rather than fork) is deliberate: workers start from a
clean interpreter, so results cannot depend on whatever compile caches
or RNG state the parent had accumulated — the same guarantee a fresh CLI
run gets.  Workers inherit the session's on-disk cache directory so all
processes share compile work.
"""

from __future__ import annotations

import multiprocessing
import signal
import warnings
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterable, List, Optional


def set_jobs(jobs: int) -> None:
    """Deprecated, slated for removal: set the *default session's*
    worker count.

    Prefer constructing a :class:`repro.api.Session` (or using
    :func:`sweep_settings`) instead of mutating process state.  This
    shim is not part of the supported ``repro.api.__all__`` surface and
    will be removed in a future release.
    """
    from repro.api.session import default_session

    warnings.warn(
        "repro.exec.engine.set_jobs is deprecated and will be removed; "
        "configure a repro.api.Session instead",
        DeprecationWarning,
        stacklevel=2,
    )
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    default_session().jobs = int(jobs)


def current_jobs() -> int:
    """The active session's worker count."""
    from repro.api.session import current_session

    return current_session().jobs


@contextmanager
def sweep_settings(jobs: Optional[int] = None,
                   cache_dir: Optional[str] = "__keep__"):
    """Run a block under a temporary session override.

    A convenience wrapper over ``Session(...).activate()``: ``jobs``
    and/or ``cache_dir`` that are not given are inherited from the
    current session — in particular ``cache_dir="__keep__"`` (the
    default) *shares the current cache object*, warm memory tier and
    stats included.  On exit the previous session is active again,
    untouched.
    """
    from repro.api.session import Session, current_session
    from repro.exec.cache import CompileCache

    base = current_session()
    cache = (base.cache if cache_dir == "__keep__"
             else CompileCache(cache_dir))
    overlay = Session(jobs=base.jobs if jobs is None else jobs, cache=cache,
                      circuits=base.circuits)
    with overlay.activate():
        yield overlay


def _worker_init(cache_dir: Optional[str],
                 circuit_dir: Optional[str] = None,
                 trace: Optional[tuple] = None) -> None:
    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group.  Workers must not also raise KeyboardInterrupt mid-task
    # (half-written state, a traceback storm, and a pool that can hang
    # in shutdown): the parent alone handles the interrupt, cancels the
    # pending futures, and lets the workers exit via pool shutdown.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    # Mirror the parent session's cache policy exactly — including
    # "disabled".  A worker must not fall back to REPRO_CACHE_DIR from
    # the inherited environment when the parent session explicitly runs
    # without a disk cache.  The circuit store is mirrored the same way
    # so a task resolving a circuit:<digest> workload reads the parent's
    # store, not the environment default.
    from repro.api.session import Session, install_default

    install_default(Session(jobs=1, cache_dir=cache_dir,
                            circuit_dir=circuit_dir))

    # Re-establish the parent's trace context: ContextVars do not cross
    # the spawn boundary, so the parent ships (sink dir, trace id,
    # parent span id) explicitly and the worker appends spans to the
    # same on-disk trace for its whole lifetime.
    if trace is not None:
        from repro.obs import Tracer, TraceStore, install

        sink_path, trace_id, parent_span = trace
        install(Tracer(TraceStore(sink_path), service="task"),
                trace_id, parent_span)


def _reclaim_interrupted_temp_files(cache) -> None:
    """Sweep ``.tmp-*`` files after an interrupted sweep.

    Called only once every writer this run owned has stopped (inline
    execution, or after ``pool.shutdown(wait=True)``), so any temp file
    of ours still on disk is an orphan from a writer that died between
    ``mkstemp`` and ``os.replace``.  The cache directory is shared,
    though: another process (a server, a second CLI run) may be
    mid-write right now, and deleting *its* temp file would silently
    lose that persist (``os.replace`` failures degrade to memory-only).
    The same one-second grace as ``CompileCache.clear_disk`` protects
    such writers at any mtime granularity; an orphan of ours younger
    than that survives to the next maintenance pass (``gc``/``prune``/
    ``clear``) instead.
    """
    from repro.exec.diskutil import sweep_stale_temp_files

    if cache is not None and cache.path is not None:
        sweep_stale_temp_files(cache.path, max_age_seconds=1.0)


class ExecBackend:
    """How a flat task list actually executes.

    One instance is stateless execution *mechanism*; everything that is
    *policy* (which cache, how many jobs, RNG base) stays on the
    :class:`repro.api.Session` the backend receives.  Implementations
    must uphold the engine contract: results in task order, exceptions
    propagated, and bitwise-identical output for any backend whenever
    tasks derive their seeds from canonical keys.
    """

    #: Short human-readable name (diagnostics, ``repr``).
    name = "abstract"

    def run(self, task_fn: Callable, tasks: List, session) -> List:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class InlineBackend(ExecBackend):
    """Execute every task in the calling thread, under the session."""

    name = "inline"

    def run(self, task_fn: Callable, tasks: List, session) -> List:
        try:
            with session.activate():
                return [task_fn(task) for task in tasks]
        except KeyboardInterrupt:
            _reclaim_interrupted_temp_files(session.cache)
            raise


class SpawnPoolBackend(ExecBackend):
    """Fan tasks over a spawn-context ``ProcessPoolExecutor``.

    ``jobs=None`` (the default) sizes the pool from the session's
    ``jobs`` at run time; a fixed ``jobs`` pins it.  A run whose
    effective worker count collapses to one (a single task, or
    ``jobs=1``) delegates to :class:`InlineBackend` — identical results
    either way, without pool startup cost.
    """

    name = "spawn-pool"

    def __init__(self, jobs: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def __repr__(self) -> str:
        return f"SpawnPoolBackend(jobs={self.jobs!r})"

    def run(self, task_fn: Callable, tasks: List, session) -> List:
        jobs = self.jobs if self.jobs is not None else session.jobs
        jobs = max(1, min(int(jobs), len(tasks))) if tasks else 1
        if jobs == 1:
            return INLINE.run(task_fn, tasks, session)

        from repro.obs import trace as _trace

        # Trace context crosses the spawn boundary only when the sink is
        # a directory workers can append to themselves (an in-memory
        # buffer in the parent is unreachable from another process).
        worker_trace = None
        active = _trace.current()
        if active is not None:
            sink_path = getattr(active.tracer.sink, "path", None)
            if sink_path is not None:
                worker_trace = (sink_path, active.trace_id, active.span_id)

        context = multiprocessing.get_context("spawn")
        pool = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=_worker_init,
            initargs=(session.cache.path, session.circuits.path,
                      worker_trace),
        )
        try:
            futures = [pool.submit(task_fn, task) for task in tasks]
            return [future.result() for future in futures]
        except BaseException as error:
            # Fail fast: don't let a 200-cell grid grind on for minutes
            # after cell 3 has already doomed the sweep.
            pool.shutdown(wait=True, cancel_futures=True)
            if isinstance(error, KeyboardInterrupt):
                # Every worker has exited: reclaim the temp files of any
                # writer the interrupt killed mid-write, so Ctrl-C
                # leaves no orphaned .tmp-* litter in the shared cache
                # directory.
                _reclaim_interrupted_temp_files(session.cache)
            raise
        finally:
            pool.shutdown(wait=True)


#: Shared stateless singleton for the inline path.
INLINE = InlineBackend()


def resolve_backend(session, jobs: Optional[int] = None) -> ExecBackend:
    """The backend a ``run_tasks`` call will execute through.

    An explicit ``jobs`` argument wins (it is a per-call override, same
    as it always was); otherwise a backend pinned on the session wins;
    otherwise the session's ``jobs`` count picks inline vs. spawn-pool.
    """
    if jobs is not None:
        return INLINE if int(jobs) <= 1 else SpawnPoolBackend(int(jobs))
    pinned = getattr(session, "backend", None)
    if pinned is not None:
        return pinned
    return INLINE if session.jobs <= 1 else SpawnPoolBackend()


def run_tasks(
    task_fn: Callable,
    tasks: Iterable,
    jobs: Optional[int] = None,
    session=None,
) -> List:
    """Run ``task_fn`` over every task, returning results in task order.

    ``task_fn`` must be a module-level callable and each task picklable
    under a process-pool backend (spawn-based workers re-import the
    module).  A task raising an exception propagates it to the caller.
    ``session`` defaults to the active :class:`repro.api.Session`, which
    supplies the backend (or the worker count to pick one) and the cache
    directory workers share.
    """
    from repro.api.session import current_session
    from repro.obs import trace as _trace

    if session is None:
        session = current_session()
    tasks = list(tasks)
    # Parent-side dispatch counter: a store-replayed experiment must be
    # able to prove it executed zero tasks.
    session.tasks_executed += len(tasks)
    backend = resolve_backend(session, jobs)
    with _trace.span("tasks", backend=backend.name, count=len(tasks)):
        return backend.run(task_fn, tasks, session)
