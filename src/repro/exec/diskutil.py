"""Shared disk-tier maintenance: LRU eviction + stale temp-file sweeps.

Both persistent tiers — the compile cache (``repro.exec.cache``) and the
result store (``repro.api.store``) — are sharded directories of
content-addressed files written atomically via ``.tmp-*`` temp files and
``os.replace``, bounded by the same policy: evict least-recently-used
entries (mtime order, exact ties broken on path so coarse 1s timestamps
stay deterministic) until the tier fits a byte budget, and reclaim
orphaned temp files from writers that died mid-write.  This module is
the single home of that policy, so a boundary fix lands in both tiers
at once.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

#: Prefix marking an in-flight atomic write (``tempfile.mkstemp``).
TEMP_PREFIX = ".tmp-"


def sweep_stale_temp_files(root: str, max_age_seconds: float) -> None:
    """Remove ``.tmp-*`` leftovers from writers that died mid-write.

    ``max_age_seconds`` guards against deleting a temp file a live
    concurrent writer is still about to ``os.replace``.  The comparison
    is strict: filesystem mtimes can be as coarse as one second, so a
    file stamped in the same second as the cutoff must count as *newer*
    than it, or a just-created temp file would be swept out from under
    its writer.
    """
    cutoff = time.time() - max_age_seconds
    for dirpath, _, filenames in os.walk(root):
        for name in filenames:
            if not name.startswith(TEMP_PREFIX):
                continue
            target = os.path.join(dirpath, name)
            try:
                if os.stat(target).st_mtime < cutoff:
                    os.unlink(target)
            except OSError:
                pass


def lru_evict(rows: List[Tuple[str, int, float]],
              max_bytes: int) -> Dict[str, int]:
    """Unlink least-recently-used files until ``rows`` fit ``max_bytes``.

    ``rows`` is ``[(path, bytes, mtime), ...]``; returns ``{"removed",
    "remaining_entries", "remaining_bytes"}``.  Eviction order is
    (mtime, path): coarse (1s) filesystem mtimes routinely produce
    exact ties between files written in one burst, and the path
    tie-break keeps the order deterministic across runs and platforms.
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    rows = sorted(rows, key=lambda r: (r[2], r[0]))
    total = sum(size for _, size, _ in rows)
    removed = 0
    for target, size, _ in rows:
        if total <= max_bytes:
            break
        try:
            os.unlink(target)
        except OSError:
            continue
        total -= size
        removed += 1
    return {
        "removed": removed,
        "remaining_entries": len(rows) - removed,
        "remaining_bytes": total,
    }
