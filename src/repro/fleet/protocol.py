"""The fleet wire protocol: what a worker and the server agree on.

Three POST endpoints on the serving layer, all JSON-bodied:

``POST /fleet/claim``    ``{"worker": id}``
    → ``{"job": null}`` when the queue is empty, else ``{"job": {...}}``
    with the fields of :func:`describe_claim` — everything a worker
    needs to execute the job (experiment, quick, params, force, store
    key) plus the lease terms (``lease_ttl_s``, the derived
    ``heartbeat_interval_s``).

``POST /fleet/heartbeat`` ``{"worker": id, "job": job_id}``
    → ``{"expires_in_s": ...}`` while the lease is held; HTTP 409 with
    ``error_type: "LeaseLost"`` once it is not (expired and reclaimed,
    or completed by another worker) — the worker should abandon the job.

``POST /fleet/complete`` ``{"worker": id, "job": job_id,
                            "envelope": {...}} | {... "error": "..."}``
    → ``{"status": "done"|"failed"}``; HTTP 409 when the lease was lost
    (the late result is discarded — the reclaimed job re-executes
    deterministically on whoever holds the lease now).

The protocol is deliberately *pull*-based: workers poll ``claim``, the
server never needs to reach a worker, so workers can sit behind NAT,
come and go freely, and die without ceremony — a missed-heartbeat lease
expiry is the only death certificate required.
"""

from __future__ import annotations

from typing import Any, Dict

#: Route paths, shared by the router and the worker client.
CLAIM_PATH = "/fleet/claim"
HEARTBEAT_PATH = "/fleet/heartbeat"
COMPLETE_PATH = "/fleet/complete"

#: Default seconds a lease stays valid without a heartbeat.
DEFAULT_LEASE_TTL = 15.0

#: Workers heartbeat every ``ttl / HEARTBEAT_PER_TTL`` seconds, so a
#: lease survives two missed beats but not three.
HEARTBEAT_PER_TTL = 3.0

#: Suggested idle-poll interval returned with an empty claim.
DEFAULT_POLL_INTERVAL = 0.5

#: Worker ids appear in URLs-adjacent logs and metrics keys; keep them
#: printable and bounded.
_MAX_WORKER_ID = 128


def validate_worker_id(value: Any) -> str:
    """A claim/heartbeat/complete body's ``worker`` field, checked."""
    if not isinstance(value, str) or not value.strip():
        raise ValueError('request needs a non-empty "worker" id string')
    if len(value) > _MAX_WORKER_ID:
        raise ValueError(
            f"worker id longer than {_MAX_WORKER_ID} characters")
    return value


def heartbeat_interval(lease_ttl: float) -> float:
    """How often a worker holding a lease of ``lease_ttl`` should beat."""
    return max(0.05, float(lease_ttl) / HEARTBEAT_PER_TTL)


def describe_claim(job, lease_ttl: float) -> Dict[str, Any]:
    """The JSON a successful ``POST /fleet/claim`` hands the worker.

    Carries the raw *override* params (not the resolved grid): the
    worker re-resolves through the same ``ExperimentSpec``, so its
    read-through session lands on the identical store key the server
    computed — one canonicalization, two processes, zero drift.
    """
    payload = {
        "id": job.id,
        "experiment": job.experiment,
        "key": job.key,
        "quick": job.quick,
        "force": job.force,
        "params": dict(job.params),
        "attempt": job.attempts,
        "lease_ttl_s": float(lease_ttl),
        "heartbeat_interval_s": heartbeat_interval(lease_ttl),
    }
    # Trace context rides the claim so the worker's spans join the
    # submitting request's trace (exported back via POST /trace).
    trace = getattr(job, "trace", None)
    if trace is not None:
        payload["trace"] = {"id": trace[0], "parent": trace[1]}
    return payload
