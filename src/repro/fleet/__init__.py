"""The distributed worker fleet: N nodes draining one job queue.

``repro.serve`` turned the experiment stack into a long-lived service
whose throughput was capped by one machine's cores; this package scales
job execution past that box.  The server keeps the queue, the
content-addressed result store, and a :class:`LeaseTable`; workers
(``python -m repro worker --server URL``) pull work over HTTP:

* :mod:`repro.fleet.protocol` — the claim / heartbeat / complete wire
  protocol both sides speak;
* :mod:`repro.fleet.leases` — :class:`LeaseTable`: time-bounded claims,
  heartbeat renewal, and expiry, which is how dead workers are detected
  and their jobs reclaimed;
* :mod:`repro.fleet.worker` — :class:`FleetWorker`: the pull loop that
  claims a job, executes it under its own read-through
  :class:`repro.api.Session`, heartbeats while running, and reports the
  outcome.

Determinism makes the failure story simple: any worker recomputes the
identical envelope (the ``jobs=1 == jobs=N`` contract at fleet scale),
so a lease lost mid-run costs only time, never correctness, and the
content-addressed store absorbs double-writes byte-identically.
"""

from repro.fleet.leases import Lease, LeaseLost, LeaseTable
from repro.fleet.protocol import (
    CLAIM_PATH,
    COMPLETE_PATH,
    DEFAULT_LEASE_TTL,
    HEARTBEAT_PATH,
    heartbeat_interval,
)
from repro.fleet.worker import FleetWorker, WorkerClient, default_worker_id

__all__ = [
    "CLAIM_PATH",
    "COMPLETE_PATH",
    "DEFAULT_LEASE_TTL",
    "FleetWorker",
    "HEARTBEAT_PATH",
    "Lease",
    "LeaseLost",
    "LeaseTable",
    "WorkerClient",
    "default_worker_id",
    "heartbeat_interval",
]
