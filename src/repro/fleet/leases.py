"""Server-side lease bookkeeping for the worker fleet.

A :class:`LeaseTable` answers one question for every claimed job: *is
the worker that took this job still alive?*  Claiming grants a lease
with a time-to-live; each heartbeat renews it; a worker that stops
beating (killed, wedged, partitioned) lets the lease expire, and the
job queue's reaper pops the expired lease and puts the job back on the
queue for the next claimant.  A job is therefore never stranded by a
dead worker, and never executed concurrently by two live ones —
:meth:`heartbeat` and :meth:`release` both refuse a worker whose lease
has been lost, so a zombie coming back from a long GC pause cannot
complete a job someone else now owns.

The clock is injectable (and monotonic by default) so expiry tests
never sleep.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.fleet.protocol import DEFAULT_LEASE_TTL


class LeaseLost(Exception):
    """The worker no longer holds the lease it is acting under."""


@dataclass
class Lease:
    """One worker's time-bounded claim on one job."""

    job_id: str
    worker: str
    granted_at: float
    deadline: float
    heartbeats: int = 0
    renewed_at: float = field(default=0.0)

    def expires_in(self, now: float) -> float:
        return self.deadline - now


class LeaseTable:
    """Thread-safe job-id → :class:`Lease` map with expiry."""

    def __init__(self, ttl: float = DEFAULT_LEASE_TTL,
                 clock: Callable[[], float] = time.monotonic):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be > 0, got {ttl}")
        self.ttl = float(ttl)
        self._clock = clock
        self._lock = threading.Lock()
        self._leases: Dict[str, Lease] = {}
        #: Monotonic count of leases that expired and were popped.
        self.expired_total = 0

    def grant(self, job_id: str, worker: str) -> Lease:
        """Lease ``job_id`` to ``worker`` for one ttl window.

        The queue only claims jobs it just took off the queue, so an
        existing *live* lease for the same job is a bookkeeping bug —
        refuse it loudly rather than silently double-granting.
        """
        now = self._clock()
        with self._lock:
            current = self._leases.get(job_id)
            if current is not None and current.deadline > now:
                raise LeaseLost(
                    f"job {job_id} is already leased to {current.worker}")
            lease = Lease(job_id=job_id, worker=worker, granted_at=now,
                          deadline=now + self.ttl, renewed_at=now)
            self._leases[job_id] = lease
            return lease

    def heartbeat(self, job_id: str, worker: str) -> float:
        """Renew ``worker``'s lease; returns the new seconds-to-expiry.

        Raises :class:`LeaseLost` when the lease is gone, expired, or
        held by someone else — the caller should stop working the job.
        """
        now = self._clock()
        with self._lock:
            lease = self._checked_locked(job_id, worker, now)
            lease.deadline = now + self.ttl
            lease.heartbeats += 1
            lease.renewed_at = now
            return lease.expires_in(now)

    def release(self, job_id: str, worker: str) -> Lease:
        """Drop ``worker``'s lease (the job reached a terminal state).

        Raises :class:`LeaseLost` under the same conditions as
        :meth:`heartbeat`: a worker whose lease expired mid-run must not
        complete the job out from under its new owner.
        """
        now = self._clock()
        with self._lock:
            lease = self._checked_locked(job_id, worker, now)
            del self._leases[job_id]
            return lease

    def _checked_locked(self, job_id: str, worker: str,
                        now: float) -> Lease:
        lease = self._leases.get(job_id)
        if lease is None:
            raise LeaseLost(f"no lease for job {job_id}")
        if lease.worker != worker:
            raise LeaseLost(
                f"job {job_id} is leased to {lease.worker}, not {worker}")
        if lease.deadline <= now:
            raise LeaseLost(
                f"lease on job {job_id} expired "
                f"{now - lease.deadline:.1f}s ago")
        return lease

    def pop_expired(self) -> List[Lease]:
        """Remove and return every expired lease (for requeueing)."""
        now = self._clock()
        with self._lock:
            expired = [lease for lease in self._leases.values()
                       if lease.deadline <= now]
            for lease in expired:
                del self._leases[lease.job_id]
            self.expired_total += len(expired)
            return expired

    def active(self) -> int:
        """Live (unexpired) lease count."""
        now = self._clock()
        with self._lock:
            return sum(1 for lease in self._leases.values()
                       if lease.deadline > now)

    def describe(self) -> Dict[str, Any]:
        """Lease-table state for ``/metrics``."""
        now = self._clock()
        with self._lock:
            return {
                "ttl_s": self.ttl,
                "active": sum(1 for lease in self._leases.values()
                              if lease.deadline > now),
                "expired_total": self.expired_total,
                "held": [
                    {
                        "job": lease.job_id,
                        "worker": lease.worker,
                        "expires_in_s": round(lease.expires_in(now), 3),
                        "heartbeats": lease.heartbeats,
                    }
                    for lease in sorted(self._leases.values(),
                                        key=lambda lease: lease.job_id)
                    if lease.deadline > now
                ],
            }

    def get(self, job_id: str) -> Optional[Lease]:
        with self._lock:
            return self._leases.get(job_id)
