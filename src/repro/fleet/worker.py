"""The fleet worker: a pull loop draining one server's job queue.

A worker is deliberately dumb.  It polls ``POST /fleet/claim``; when the
server hands it a job it executes the experiment under its *own*
read-through :class:`repro.api.Session` (pointing at the shared
content-addressed result store, so a reclaimed job whose result already
landed replays with zero tasks), heartbeats on a side thread while the
run is in flight, and reports the outcome with ``POST /fleet/complete``.
Everything hard — deduplication, lease expiry, dead-worker detection,
requeueing — lives on the server, which is what lets a worker be killed
with ``SIGKILL`` at any instant without stranding work.

In-process use (tests, embedding)::

    worker = FleetWorker(base_url, session_factory, worker_id="w1")
    worker.run(max_jobs=1)          # or run() until stop_event is set

Command-line use (the real fleet)::

    python -m repro worker --server http://host:8000 --jobs 2 \\
        --store /shared/repro-store --cache-dir /shared/repro-cache
"""

from __future__ import annotations

import json
import socket
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Optional

from repro.fleet.protocol import (
    CLAIM_PATH,
    COMPLETE_PATH,
    DEFAULT_POLL_INTERVAL,
    HEARTBEAT_PATH,
)
from repro.fleet.leases import LeaseLost
from repro.obs import trace as _obs


def default_worker_id(slot: Optional[int] = None) -> str:
    """``host-pid[-slot]``: unique per claim loop, stable across jobs."""
    import os

    base = f"{socket.gethostname()}-{os.getpid()}"
    return base if slot is None else f"{base}-{slot}"


class WorkerClient:
    """The worker's half of the fleet wire protocol (stdlib urllib)."""

    def __init__(self, base_url: str, worker_id: str,
                 timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.worker_id = worker_id
        self.timeout = timeout

    def _post(self, path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        request = urllib.request.Request(
            self.base_url + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", "replace")
            try:
                payload = json.loads(body)
            except ValueError:
                payload = {"error": body or f"HTTP {error.code}"}
            if error.code == 409 and payload.get("error_type") == "LeaseLost":
                raise LeaseLost(payload.get("error", "lease lost")) from None
            raise RuntimeError(
                f"{path} failed: HTTP {error.code}: "
                f"{payload.get('error', body)}") from None

    def claim(self) -> Optional[Dict[str, Any]]:
        """One claim attempt; the job description, or ``None`` if idle."""
        return self._post(CLAIM_PATH, {"worker": self.worker_id})["job"]

    def fetch_circuit(self, digest: str) -> str:
        """``GET /circuits/<digest>``: the canonical QASM text.

        Raises ``RuntimeError`` when the server does not hold the digest
        (or any other HTTP failure) — a job referencing it cannot run.
        """
        request = urllib.request.Request(
            self.base_url + "/circuits/" + digest, method="GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", "replace")
            try:
                message = json.loads(body).get("error", body)
            except ValueError:
                message = body or f"HTTP {error.code}"
            raise RuntimeError(
                f"/circuits/{digest[:16]}… failed: HTTP {error.code}: "
                f"{message}") from None

    def heartbeat(self, job_id: str) -> float:
        """Renew the lease; seconds to expiry.  Raises LeaseLost."""
        decoded = self._post(HEARTBEAT_PATH,
                             {"worker": self.worker_id, "job": job_id})
        return float(decoded["expires_in_s"])

    def export_spans(self, spans: list) -> Dict[str, Any]:
        """Ship locally-buffered span records to the server's trace
        store (``POST /trace``), so a distributed job's worker stages
        appear in the same ``GET /trace/<id>`` as the server's."""
        return self._post("/trace", {"worker": self.worker_id,
                                     "spans": spans})

    def complete(self, job_id: str, envelope: Optional[Dict[str, Any]] = None,
                 error: Optional[str] = None,
                 wall_s: Optional[float] = None,
                 tasks_executed: Optional[int] = None) -> Dict[str, Any]:
        """Report the job's outcome.  Raises LeaseLost when beaten."""
        payload: Dict[str, Any] = {"worker": self.worker_id, "job": job_id}
        if envelope is not None:
            payload["envelope"] = envelope
        if error is not None:
            payload["error"] = error
        if wall_s is not None:
            payload["wall_s"] = wall_s
        if tasks_executed is not None:
            payload["tasks_executed"] = tasks_executed
        return self._post(COMPLETE_PATH, payload)


class FleetWorker:
    """One pull loop: claim → execute under a fresh session → complete.

    ``session_factory`` builds one read-through session per job (the
    worker-side analogue of the job queue's factory); ``claim_delay``
    sleeps after each successful claim before executing — a
    fault-injection aid so fleet drills can kill a worker that holds a
    lease but has not finished (CI does exactly this).
    """

    def __init__(
        self,
        base_url: str,
        session_factory: Callable[[], Any],
        worker_id: Optional[str] = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        claim_delay: float = 0.0,
        quiet: bool = True,
        stop_event: Optional[threading.Event] = None,
    ):
        self.worker_id = worker_id or default_worker_id()
        self.client = WorkerClient(base_url, self.worker_id)
        self._session_factory = session_factory
        self.poll_interval = max(0.05, float(poll_interval))
        self.claim_delay = max(0.0, float(claim_delay))
        self.quiet = quiet
        self.stop_event = stop_event or threading.Event()
        #: Jobs this worker completed (DONE or FAILED reported).
        self.jobs_done = 0
        #: Jobs abandoned because the lease was lost mid-run.
        self.jobs_lost = 0

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[worker {self.worker_id}] {message}", file=sys.stderr,
                  flush=True)

    # -- the loop ----------------------------------------------------------------

    def run(self, max_jobs: Optional[int] = None) -> int:
        """Claim and execute until stopped (or ``max_jobs`` completed).

        Returns the number of jobs this call completed.  Transient
        server unavailability (connection refused mid-restart, timeouts)
        degrades to an idle poll, never a crash — a fleet worker outlives
        its server's restarts.
        """
        completed_here = 0
        while not self.stop_event.is_set():
            if max_jobs is not None and completed_here >= max_jobs:
                break
            try:
                claimed = self.client.claim()
            except (urllib.error.URLError, TimeoutError, ConnectionError,
                    RuntimeError) as error:
                self._log(f"claim failed ({error}); retrying")
                self.stop_event.wait(self.poll_interval)
                continue
            if claimed is None:
                self.stop_event.wait(self.poll_interval)
                continue
            if self._execute(claimed):
                completed_here += 1
        return completed_here

    def _prefetch_circuits(self, session, claimed: Dict[str, Any]) -> None:
        """Fetch every circuit digest the claimed job references but the
        worker's local circuit store lacks.

        Fetched circuits are cached locally (content-addressed, so the
        second job naming the same digest is a pure local read), and the
        received bytes are verified: a program that does not re-digest
        to what the job named is refused rather than executed.  Raises
        on any failure — reported as the job's error by the caller.
        """
        from repro.api.registry import get_experiment
        from repro.workloads.ref import iter_circuit_digests

        spec = get_experiment(claimed["experiment"])
        resolved = spec.resolved_params(
            quick=bool(claimed.get("quick")),
            overrides=claimed.get("params", {}))
        for digest in sorted(set(iter_circuit_digests(resolved))):
            if session.circuits.has(digest):
                continue
            stored = session.circuits.add(
                self.client.fetch_circuit(digest))
            if stored != digest:
                raise RuntimeError(
                    f"server returned a circuit digesting to "
                    f"{stored[:16]}… for requested {digest[:16]}…")
            self._log(f"fetched circuit {digest[:16]}…")

    def _export_spans(self, tracer: Optional[_obs.Tracer],
                      trace_id: Optional[str]) -> None:
        """Best-effort span export: a failure drops observability, never
        the job outcome."""
        if tracer is None:
            return
        spans = tracer.sink.drain()
        if not spans:
            return
        try:
            self.client.export_spans(spans)
        except (urllib.error.URLError, TimeoutError, ConnectionError,
                RuntimeError) as error:
            self._log(f"span export for trace {trace_id[:16]}… failed "
                      f"({error}); dropped {len(spans)} spans")

    def _execute(self, claimed: Dict[str, Any]) -> bool:
        """Run one claimed job; ``True`` when an outcome was reported."""
        job_id = claimed["id"]
        interval = float(claimed.get("heartbeat_interval_s", 1.0))
        self._log(f"claimed {claimed['experiment']} job {job_id} "
                  f"(attempt {claimed.get('attempt', 1)})")
        done = threading.Event()
        lost = threading.Event()

        def beat() -> None:
            while not done.wait(interval):
                try:
                    self.client.heartbeat(job_id)
                except LeaseLost:
                    lost.set()
                    return
                except (urllib.error.URLError, TimeoutError,
                        ConnectionError, RuntimeError):
                    # A flaky beat is survivable; the next one renews.
                    continue

        heartbeat_thread = threading.Thread(
            target=beat, daemon=True,
            name=f"repro-fleet-heartbeat-{job_id}")
        heartbeat_thread.start()
        if self.claim_delay:
            # The drill window: lease held (the heartbeat thread is
            # already beating), execution not started — the moment
            # fault-injection drills SIGKILL this process.
            self.stop_event.wait(self.claim_delay)
            if self.stop_event.is_set() or lost.is_set():
                done.set()
                heartbeat_thread.join(timeout=5)
                return False
        session = None
        envelope = error_text = None
        # The claim may carry trace context; worker spans are buffered
        # locally and exported to the server's trace store afterwards —
        # there is no shared filesystem to assume.
        trace_ctx = claimed.get("trace")
        trace_id = (trace_ctx.get("id")
                    if isinstance(trace_ctx, dict) else None)
        tracer = (_obs.Tracer(_obs.SpanBuffer(), service="worker")
                  if _obs.is_trace_id(trace_id) else None)

        def execute_job() -> None:
            nonlocal session, envelope, error_text
            try:
                session = self._session_factory()
                self._prefetch_circuits(session, claimed)
                result = session.run(claimed["experiment"],
                                     quick=bool(claimed.get("quick")),
                                     force=bool(claimed.get("force")),
                                     **claimed.get("params", {}))
                envelope = result.to_dict()
            except Exception as error:
                # Report, don't die: workers are cattle.
                # (KeyboardInterrupt propagates: the unreleased lease
                # simply expires and the job re-runs elsewhere.)
                error_text = f"{type(error).__name__}: {error}"

        start = time.perf_counter()
        try:
            if tracer is not None:
                with _obs.activate(tracer, trace_id,
                                   trace_ctx.get("parent")):
                    with _obs.span("worker.execute",
                                   worker=self.worker_id,
                                   job_id=job_id,
                                   attempt=claimed.get("attempt",
                                                       1)) as handle:
                        execute_job()
                        handle.set(
                            status="failed" if error_text else "done")
            else:
                execute_job()
        finally:
            wall_s = time.perf_counter() - start
            done.set()
            heartbeat_thread.join(timeout=5)
            # Export whatever was recorded on every outcome — even a
            # lost lease leaves a true record of what this worker did.
            self._export_spans(tracer, trace_id)
        if lost.is_set():
            self.jobs_lost += 1
            self._log(f"lease lost on job {job_id}; discarding result")
            return False
        try:
            self.client.complete(
                job_id, envelope=envelope, error=error_text, wall_s=wall_s,
                tasks_executed=getattr(session, "tasks_executed", None))
        except LeaseLost:
            self.jobs_lost += 1
            self._log(f"job {job_id} completed elsewhere; discarding")
            return False
        except (urllib.error.URLError, TimeoutError, ConnectionError,
                RuntimeError) as error:
            # The one lossy window: executed but unreported.  The lease
            # expires and the job re-runs deterministically elsewhere.
            self.jobs_lost += 1
            self._log(f"could not report job {job_id} ({error})")
            return False
        self.jobs_done += 1
        self._log(f"{'failed' if error_text else 'completed'} job {job_id} "
                  f"in {wall_s:.1f}s")
        return True
