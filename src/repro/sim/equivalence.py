"""Circuit equivalence checks.

Compiled circuits are equivalent to their source *up to qubit layout*: the
initial mapping places program qubits on physical sites, and routing SWAPs
permute that mapping over time.  These helpers verify equivalence either
exactly (unitary comparison, tiny circuits) or by probing basis states
(up to ~14 qubits).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.circuits.circuit import Circuit
from repro.sim.statevector import Statevector, circuit_unitary
from repro.utils.rng import RngLike, ensure_rng


def unitaries_equal_up_to_phase(u: np.ndarray, v: np.ndarray, atol: float = 1e-8) -> bool:
    """Whether two unitaries are equal up to a global phase."""
    if u.shape != v.shape:
        return False
    flat_index = int(np.argmax(np.abs(u)))
    ref_u = u.flat[flat_index]
    ref_v = v.flat[flat_index]
    if abs(ref_v) < atol:
        return False
    phase = ref_u / ref_v
    return bool(np.allclose(u, v * phase, atol=atol))


def circuits_equivalent(a: Circuit, b: Circuit, atol: float = 1e-8) -> bool:
    """Exact unitary equivalence (up to global phase) for small circuits."""
    width = max(a.num_qubits, b.num_qubits)
    a_padded = Circuit(width, a.without_measurements().gates)
    b_padded = Circuit(width, b.without_measurements().gates)
    return unitaries_equal_up_to_phase(
        circuit_unitary(a_padded), circuit_unitary(b_padded), atol=atol
    )


def equivalent_on_clean_ancillas(
    reference: Circuit,
    implementation: Circuit,
    ancilla_qubits,
    atol: float = 1e-8,
) -> bool:
    """Equivalence restricted to inputs where every ancilla is |0>.

    Clean-ancilla constructions (the mcx AND-ladder) are only required to
    match the reference on that subspace; they must also return ancillas
    to |0> so the comparison covers leakage too.
    """
    ancillas = set(ancilla_qubits)
    width = max(reference.num_qubits, implementation.num_qubits)
    ref = Circuit(width, reference.without_measurements().gates)
    impl = Circuit(width, implementation.without_measurements().gates)
    data_qubits = [q for q in range(width) if q not in ancillas]
    for pattern in range(1 << len(data_qubits)):
        bits = ["0"] * width
        for position, q in enumerate(data_qubits):
            bits[q] = str((pattern >> position) & 1)
        start = "".join(bits)
        out_ref = Statevector.from_bitstring(start)
        out_ref.apply_circuit(ref)
        out_impl = Statevector.from_bitstring(start)
        out_impl.apply_circuit(impl)
        if abs(out_ref.fidelity_with(out_impl) - 1.0) > atol:
            return False
    return True


def equivalent_under_layouts(
    source: Circuit,
    compiled: Circuit,
    initial_layout: Dict[int, int],
    final_layout: Dict[int, int],
    trials: int = 6,
    rng: RngLike = 0,
    atol: float = 1e-6,
) -> bool:
    """Statistical equivalence for compiled circuits.

    ``initial_layout`` / ``final_layout`` map program qubit -> compiled
    register index at the start / end of execution.  For random basis-state
    inputs the compiled output, marginalized onto the final layout, must
    reproduce the source circuit's output distribution *and* amplitudes.

    Amplitude-level comparison: we require the compiled state restricted to
    the final layout to equal the source state on every probed input, with
    all unused compiled qubits returning to |0> (true when the compiled
    circuit only adds SWAPs over a fixed register).
    """
    generator = ensure_rng(rng)
    n = source.num_qubits
    if set(initial_layout) != set(range(n)) or set(final_layout) != set(range(n)):
        raise ValueError("layouts must cover exactly the source qubits")
    for _ in range(trials):
        bits = "".join(generator.choice(["0", "1"]) for _ in range(n))
        expected = Statevector.from_bitstring(bits)
        expected.apply_circuit(source.without_measurements())

        full_bits = ["0"] * compiled.num_qubits
        for q in range(n):
            full_bits[initial_layout[q]] = bits[q]
        actual = Statevector.from_bitstring("".join(full_bits))
        actual.apply_circuit(compiled.without_measurements())

        marginal = actual.marginal_probabilities([final_layout[q] for q in range(n)])
        expected_probs = expected.probabilities()
        for index, p in enumerate(expected_probs):
            if float(p) < 1e-12 :
                continue
            key = format(index, f"0{n}b")
            if abs(marginal.get(key, 0.0) - float(p)) > atol:
                return False
        # Also ensure no probability mass leaked onto unexpected outcomes.
        total = sum(marginal.values())
        if abs(total - 1.0) > atol:
            return False
    return True
