"""Monte-Carlo noisy shot sampling.

Cross-validates the paper's analytic §V success estimate: instead of the
closed-form ``prod p_i^{n_i} * exp(-D/T)``, sample shots where each gate
independently fails with probability ``1 - p_arity`` and a failed gate
applies a uniformly random Pauli to each of its operands (a standard
depolarizing-style error twirl).  A shot "succeeds" when the final state
projects onto the ideal outcome.

For the basis-state-deterministic benchmarks (BV, the adders), success
has a crisp operational meaning — the measured bitstring equals the ideal
one — which is exactly what the estimate approximates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.hardware.noise import NoiseModel
from repro.sim.statevector import Statevector
from repro.utils.rng import RngLike, ensure_rng

_PAULIS = ("i", "x", "y", "z")


@dataclass
class NoisySimResult:
    """Outcome of a Monte-Carlo noisy run."""

    shots: int
    successes: int
    analytic_estimate: float

    @property
    def empirical_rate(self) -> float:
        if self.shots == 0:
            return 0.0
        return self.successes / self.shots


def sample_noisy_shots(
    circuit: Circuit,
    noise: NoiseModel,
    shots: int = 200,
    initial_bits: Optional[str] = None,
    rng: RngLike = 0,
    include_coherence: bool = False,
) -> NoisySimResult:
    """Sample noisy executions and compare against the ideal output state.

    ``include_coherence=False`` isolates the gate-error part of the model
    (the coherence factor is a deterministic multiplier anyway).  Practical
    up to ~12 qubits.
    """
    generator = ensure_rng(rng)
    clean_circuit = circuit.without_measurements()

    ideal = _initial_state(clean_circuit, initial_bits)
    ideal.apply_circuit(clean_circuit)

    successes = 0
    for _ in range(shots):
        state = _initial_state(clean_circuit, initial_bits)
        for gate in clean_circuit:
            state.apply_gate(gate)
            fidelity = noise.fidelity(gate.arity)
            if fidelity < 1.0 and generator.random() > fidelity:
                _apply_random_pauli(state, gate, generator)
        if generator.random() < ideal.fidelity_with(state):
            successes += 1

    analytic = noise.gate_success(clean_circuit.counts_by_arity())
    if include_coherence:
        duration = clean_circuit.depth() * noise.duration_of(2)
        analytic *= noise.coherence_success(duration)
    return NoisySimResult(
        shots=shots, successes=successes, analytic_estimate=analytic
    )


def _initial_state(circuit: Circuit, initial_bits: Optional[str]) -> Statevector:
    if initial_bits is None:
        return Statevector(circuit.num_qubits)
    return Statevector.from_bitstring(initial_bits)


def _apply_random_pauli(state: Statevector, gate: Gate, generator) -> None:
    """Twirl each operand of a failed gate with a random Pauli."""
    for qubit in gate.qubits:
        pauli = _PAULIS[int(generator.integers(4))]
        if pauli != "i":
            state.apply_gate(Gate(pauli, (qubit,)))
