"""Dense statevector simulator.

Validates circuit semantics: the workload generators (does the Cuccaro
adder add?), the decompositions (is the 6-CNOT Toffoli really a Toffoli?),
and the compiler (is the routed circuit equivalent to the input up to the
final qubit permutation?).  This mirrors the paper's §III-A validation of
its compiler against Qiskit's, which we cannot run offline.

State layout is big-endian: qubit 0 is the most significant bit of the
basis index, so ``|q0 q1 ... q_{n-1}>`` has index ``sum q_i 2^{n-1-i}``.
Practical up to ~14 qubits, which covers every correctness test here.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gate_library import gate_unitary
from repro.circuits.gates import Gate

#: Refuse to simulate above this size; 2^18 complex amplitudes is already
#: 4 MiB and the apply loop is O(gates * 2^n).
MAX_QUBITS = 18


class Statevector:
    """A mutable ``2^n`` amplitude vector with gate application."""

    def __init__(self, num_qubits: int, state: Optional[np.ndarray] = None):
        if num_qubits > MAX_QUBITS:
            raise ValueError(
                f"refusing to simulate {num_qubits} qubits (max {MAX_QUBITS})"
            )
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if state is None:
            self.state = np.zeros(dim, dtype=complex)
            self.state[0] = 1.0
        else:
            state = np.asarray(state, dtype=complex)
            if state.shape != (dim,):
                raise ValueError(f"state must have shape ({dim},)")
            self.state = state.copy()

    @classmethod
    def from_bitstring(cls, bits: str) -> "Statevector":
        """Computational basis state from a string like ``"0110"``.

        ``bits[0]`` is qubit 0 (big-endian).
        """
        num_qubits = len(bits)
        index = int(bits, 2)
        sv = cls(num_qubits)
        sv.state[0] = 0.0
        sv.state[index] = 1.0
        return sv

    def copy(self) -> "Statevector":
        return Statevector(self.num_qubits, self.state)

    # -- evolution -------------------------------------------------------------

    def apply_gate(self, gate: Gate) -> None:
        """Apply one unitary gate in place.

        Measurement gates are ignored here (they delimit readout for the
        loss model; sampling is exposed separately via :meth:`probabilities`).
        """
        if gate.is_measurement:
            return
        unitary = gate_unitary(gate)
        self._apply_unitary(unitary, gate.qubits)

    def apply_circuit(self, circuit: Circuit) -> None:
        if circuit.num_qubits > self.num_qubits:
            raise ValueError("circuit larger than register")
        for gate in circuit:
            self.apply_gate(gate)

    def _apply_unitary(self, unitary: np.ndarray, qubits: Sequence[int]) -> None:
        n = self.num_qubits
        k = len(qubits)
        # Move the operand axes to the front of a rank-n tensor, contract,
        # and move them back.  Axis i of the tensor is qubit i (big-endian).
        tensor = self.state.reshape([2] * n)
        axes = list(qubits)
        tensor = np.moveaxis(tensor, axes, range(k))
        tensor_shape = tensor.shape
        matrix = unitary.reshape([2] * (2 * k))
        contracted = np.tensordot(
            matrix, tensor, axes=(list(range(k, 2 * k)), list(range(k)))
        )
        contracted = np.moveaxis(contracted.reshape(tensor_shape), range(k), axes)
        self.state = contracted.reshape(1 << n)

    # -- readout -----------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        return np.abs(self.state) ** 2

    def probability_of(self, bits: str) -> float:
        return float(self.probabilities()[int(bits, 2)])

    def most_likely_bitstring(self) -> str:
        index = int(np.argmax(self.probabilities()))
        return format(index, f"0{self.num_qubits}b")

    def marginal_probabilities(self, qubits: Sequence[int]) -> Dict[str, float]:
        """Marginal distribution over ``qubits``, keyed by bitstring."""
        probs = self.probabilities()
        out: Dict[str, float] = {}
        n = self.num_qubits
        for index, p in enumerate(probs):
            if p < 1e-12:
                continue
            full = format(index, f"0{n}b")
            key = "".join(full[q] for q in qubits)
            out[key] = out.get(key, 0.0) + float(p)
        return out

    def fidelity_with(self, other: "Statevector") -> float:
        """|<self|other>|^2."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        return float(abs(np.vdot(self.state, other.state)) ** 2)


def run(circuit: Circuit, initial_bits: Optional[str] = None) -> Statevector:
    """Run ``circuit`` from |0...0> or from the given basis state."""
    if initial_bits is None:
        sv = Statevector(circuit.num_qubits)
    else:
        if len(initial_bits) != circuit.num_qubits:
            raise ValueError("initial_bits length must equal circuit width")
        sv = Statevector.from_bitstring(initial_bits)
    sv.apply_circuit(circuit)
    return sv


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Full ``2^n x 2^n`` unitary of a (small) circuit, big-endian."""
    if circuit.num_qubits > 10:
        raise ValueError("circuit_unitary limited to 10 qubits")
    dim = 1 << circuit.num_qubits
    out = np.zeros((dim, dim), dtype=complex)
    for col in range(dim):
        sv = Statevector.from_bitstring(format(col, f"0{circuit.num_qubits}b"))
        sv.apply_circuit(circuit)
        out[:, col] = sv.state
    return out
