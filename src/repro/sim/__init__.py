"""Dense statevector simulation and equivalence checking."""

from repro.sim.equivalence import (
    circuits_equivalent,
    equivalent_on_clean_ancillas,
    equivalent_under_layouts,
    unitaries_equal_up_to_phase,
)
from repro.sim.noisy import NoisySimResult, sample_noisy_shots
from repro.sim.statevector import Statevector, circuit_unitary, run

__all__ = [
    "NoisySimResult",
    "Statevector",
    "sample_noisy_shots",
    "circuit_unitary",
    "circuits_equivalent",
    "equivalent_on_clean_ancillas",
    "equivalent_under_layouts",
    "run",
    "unitaries_equal_up_to_phase",
]
