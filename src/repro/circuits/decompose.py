"""Gate decompositions to smaller-arity native sets.

The paper evaluates two compilation modes: *native multiqubit* (Toffoli and
friends execute in one Rydberg step) and *decomposed* (everything lowered to
one- and two-qubit gates before mapping, as superconducting hardware
requires).  This module implements the lowering.

Decompositions implemented (all verified unitarily in the test suite):

* ``swap``   -> 3 CX
* ``ccx``    -> 6 CX + single-qubit gates (the canonical T-depth circuit,
  the "6x in gate count alone" the paper cites in §IV-B)
* ``ccz``    -> H-conjugated ``ccx``
* ``cswap``  -> CX + ``ccx`` + CX (Fredkin)
* ``cNx``    -> AND-ladder over clean ancilla qubits (N >= 3)
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, ccx, cx, h, t, tdg


def decompose_swap(a: int, b: int) -> List[Gate]:
    """SWAP as three CNOTs.

    This is the identity behind the paper's error accounting: one routing
    SWAP costs three two-qubit gate opportunities for error.
    """
    return [cx(a, b), cx(b, a), cx(a, b)]


def decompose_ccx(control_a: int, control_b: int, target: int) -> List[Gate]:
    """Canonical 6-CNOT Toffoli decomposition (Nielsen & Chuang Fig 4.9)."""
    a, b, c = control_a, control_b, target
    return [
        h(c),
        cx(b, c),
        tdg(c),
        cx(a, c),
        t(c),
        cx(b, c),
        tdg(c),
        cx(a, c),
        t(b),
        t(c),
        h(c),
        cx(a, b),
        t(a),
        tdg(b),
        cx(a, b),
    ]


def decompose_ccz(qubit_a: int, qubit_b: int, qubit_c: int) -> List[Gate]:
    """CCZ via H-conjugation of the Toffoli on the third operand."""
    return [h(qubit_c)] + decompose_ccx(qubit_a, qubit_b, qubit_c) + [h(qubit_c)]


def decompose_cswap(control: int, a: int, b: int) -> List[Gate]:
    """Fredkin gate as CX . CCX . CX."""
    return [cx(b, a)] + decompose_ccx(control, a, b) + [cx(b, a)]


def decompose_mcx(controls: List[int], target: int, ancillas: List[int]) -> List[Gate]:
    """N-controlled X via an AND-ladder over ``len(controls) - 2`` clean ancillas.

    Computes pairwise ANDs into the ancilla chain with Toffolis, applies the
    final Toffoli onto ``target``, then uncomputes.  Ancillas must start and
    end in |0>.
    """
    if len(controls) < 3:
        raise ValueError("decompose_mcx requires at least 3 controls")
    needed = len(controls) - 2
    if len(ancillas) < needed:
        raise ValueError(
            f"{len(controls)}-controlled X needs {needed} ancillas, "
            f"got {len(ancillas)}"
        )
    compute: List[Gate] = [ccx(controls[0], controls[1], ancillas[0])]
    for i in range(2, len(controls) - 1):
        compute.append(ccx(ancillas[i - 2], controls[i], ancillas[i - 1]))
    final = ccx(ancillas[len(controls) - 3], controls[-1], target)
    return compute + [final] + list(reversed(compute))


def decompose_gate(gate: Gate, ancillas: Optional[List[int]] = None) -> List[Gate]:
    """Lower one gate to arity <= 2, or return it unchanged if already small."""
    if gate.arity <= 2 and not gate.is_swap:
        return [gate]
    if gate.is_swap:
        return decompose_swap(*gate.qubits)
    if gate.name == "ccx":
        return decompose_ccx(*gate.qubits)
    if gate.name == "ccz":
        return decompose_ccz(*gate.qubits)
    if gate.name == "cswap":
        return decompose_cswap(*gate.qubits)
    if gate.name.startswith("c") and gate.name.endswith("x") and gate.name[1:-1].isdigit():
        if ancillas is None:
            raise ValueError(f"gate {gate.name} requires ancillas to decompose")
        return decompose_mcx(list(gate.qubits[:-1]), gate.qubits[-1], ancillas)
    raise ValueError(f"no decomposition known for gate {gate.name!r}")


def decompose_circuit(
    circuit: Circuit,
    keep_swaps: bool = True,
    max_arity: int = 2,
) -> Circuit:
    """Lower all gates of arity greater than ``max_arity``.

    ``keep_swaps=True`` leaves SWAP gates intact (the compiler inserts and
    costs them itself); ``False`` additionally lowers SWAPs to CXs.

    Multi-controlled X gates with more than two controls are lowered using
    fresh ancilla qubits appended to the register.  Ancillas are reused
    across gates (each decomposition restores them to |0>), so the register
    grows by the worst single gate's need, mirroring the paper's note that
    efficient decomposition "often requires large numbers of extra ancilla
    qubits" (§IV-B).
    """
    if max_arity < 2:
        raise ValueError("max_arity must be at least 2")
    worst_need = 0
    for gate in circuit:
        if gate.name.startswith("c") and gate.name.endswith("x") and gate.name[1:-1].isdigit():
            worst_need = max(worst_need, gate.arity - 3)
    ancillas = list(range(circuit.num_qubits, circuit.num_qubits + worst_need))
    out = Circuit(circuit.num_qubits + worst_need)
    for gate in circuit:
        _lower_into(out, gate, max_arity, keep_swaps, ancillas)
    return out


def _lower_into(
    out: Circuit,
    gate: Gate,
    max_arity: int,
    keep_swaps: bool,
    ancillas: List[int],
) -> None:
    """Recursively lower ``gate`` until every emitted gate fits the target
    arity (a cNx lowers to Toffolis, which lower again when max_arity is 2)."""
    if gate.is_swap:
        if keep_swaps:
            out.append(gate)
        else:
            out.extend(decompose_swap(*gate.qubits))
        return
    if gate.arity <= max_arity:
        out.append(gate)
        return
    for lowered in decompose_gate(gate, ancillas):
        _lower_into(out, lowered, max_arity, keep_swaps, ancillas)
