"""Quantum circuit intermediate representation.

The compiler's input and output language: immutable gates, ordered
circuits, dependency DAGs, decompositions, and OpenQASM interchange.
"""

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDag, Frontier, interaction_pairs
from repro.circuits.digest import (
    CIRCUIT_REF_PREFIX,
    circuit_digest,
    circuit_ref,
    is_circuit_digest,
    parse_circuit_ref,
)
from repro.circuits.decompose import (
    decompose_ccx,
    decompose_circuit,
    decompose_gate,
    decompose_mcx,
    decompose_swap,
)
from repro.circuits.gates import Gate
from repro.circuits.optimize import (
    cancel_self_inverses,
    merge_rotations,
    optimization_report,
    optimize_circuit,
)
from repro.circuits.qasm import SUPPORTED_QASM_GATES, from_qasm, to_qasm

__all__ = [
    "CIRCUIT_REF_PREFIX",
    "Circuit",
    "CircuitDag",
    "Frontier",
    "Gate",
    "SUPPORTED_QASM_GATES",
    "circuit_digest",
    "circuit_ref",
    "is_circuit_digest",
    "parse_circuit_ref",
    "decompose_ccx",
    "decompose_circuit",
    "decompose_gate",
    "decompose_mcx",
    "decompose_swap",
    "from_qasm",
    "cancel_self_inverses",
    "merge_rotations",
    "optimization_report",
    "optimize_circuit",
    "interaction_pairs",
    "to_qasm",
]
