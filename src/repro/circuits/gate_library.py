"""Unitary matrices for the supported gate set.

Used by the statevector simulator (:mod:`repro.sim`) and by equivalence
checking.  The compiler itself never needs matrices — it treats gates
structurally — so this module keeps the numerics out of the compiler path.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.circuits.gates import Gate

_SQ2 = 1.0 / math.sqrt(2.0)

_FIXED_1Q: Dict[str, np.ndarray] = {
    "i": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex),
}


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]], dtype=complex
    )


def _phase(theta: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)


def _controlled(unitary: np.ndarray, num_controls: int) -> np.ndarray:
    """Embed ``unitary`` as the bottom-right block of a controlled gate.

    Basis ordering is big-endian over the gate's operand tuple: the first
    operand is the most significant bit.  Controls come first, so the
    "all controls on" block is the last ``dim(unitary)`` rows/columns.
    """
    dim_u = unitary.shape[0]
    dim = dim_u * (2**num_controls)
    out = np.eye(dim, dtype=complex)
    out[dim - dim_u:, dim - dim_u:] = unitary
    return out


_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def gate_unitary(gate: Gate) -> np.ndarray:
    """Return the ``2^k x 2^k`` unitary for ``gate`` (big-endian operands).

    Raises ``KeyError`` for measurement (not a unitary) and unknown names.
    """
    name = gate.name
    if name in _FIXED_1Q:
        return _FIXED_1Q[name]
    if name == "rx":
        return _rx(gate.params[0])
    if name == "ry":
        return _ry(gate.params[0])
    if name == "rz":
        return _rz(gate.params[0])
    if name == "p" or name == "phase":
        return _phase(gate.params[0])
    if name == "cx":
        return _controlled(_FIXED_1Q["x"], 1)
    if name == "cz":
        return _controlled(_FIXED_1Q["z"], 1)
    if name == "cphase":
        return _controlled(_phase(gate.params[0]), 1)
    if name == "rzz":
        theta = gate.params[0]
        diag = np.exp(1j * theta / 2 * np.array([-1, 1, 1, -1]))
        return np.diag(diag).astype(complex)
    if name == "swap":
        return _SWAP
    if name == "ccx":
        return _controlled(_FIXED_1Q["x"], 2)
    if name == "ccz":
        return _controlled(_FIXED_1Q["z"], 2)
    if name == "cswap":
        return _controlled(_SWAP, 1)
    if name.startswith("c") and name.endswith("x") and name[1:-1].isdigit():
        return _controlled(_FIXED_1Q["x"], int(name[1:-1]))
    raise KeyError(f"no unitary known for gate {name!r}")


def is_unitary_gate(gate: Gate) -> bool:
    """Whether :func:`gate_unitary` can produce a matrix for ``gate``."""
    try:
        gate_unitary(gate)
    except KeyError:
        return False
    return True
