"""Peephole circuit optimization.

The paper's compilation taxonomy (§II-B) splits compilation into circuit
optimization and hardware translation, and focuses on the latter.  This
module supplies the standard light-weight optimization passes so the
library covers the full pipeline:

* **self-inverse cancellation** — adjacent identical CX/H/X/... pairs on
  the same operands annihilate;
* **rotation merging** — adjacent RZ/RX/RY/CPHASE/RZZ on the same
  operands sum their angles (dropping the gate when the sum is ~0 mod 2pi);
* **fixed-point driver** — passes repeat until the circuit stops
  shrinking.

All passes preserve unitary semantics exactly (verified in the tests).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, SELF_INVERSE_NAMES

#: Rotation families that merge by angle addition.  Maps name -> period.
_MERGEABLE = {
    "rz": 4 * math.pi,
    "rx": 4 * math.pi,
    "ry": 4 * math.pi,
    "cphase": 2 * math.pi,
    "rzz": 4 * math.pi,
    "p": 2 * math.pi,
    "phase": 2 * math.pi,
}

_ANGLE_EPS = 1e-12


def _commutes_trivially(a: Gate, b: Gate) -> bool:
    """Whether two gates act on disjoint qubits (always commute)."""
    return not (set(a.qubits) & set(b.qubits))


def cancel_self_inverses(circuit: Circuit) -> Circuit:
    """Remove adjacent identical self-inverse gate pairs.

    "Adjacent" means no intervening gate touches any of the pair's qubits
    (gates on disjoint qubits are skipped over).
    """
    gates: List[Optional[Gate]] = list(circuit.gates)
    changed = True
    while changed:
        changed = False
        for i, gate in enumerate(gates):
            if gate is None or gate.name not in SELF_INVERSE_NAMES:
                continue
            for j in range(i + 1, len(gates)):
                other = gates[j]
                if other is None:
                    continue
                if other == gate:
                    gates[i] = None
                    gates[j] = None
                    changed = True
                    break
                if not _commutes_trivially(gate, other):
                    break
    return Circuit(circuit.num_qubits, (g for g in gates if g is not None))


def merge_rotations(circuit: Circuit) -> Circuit:
    """Fuse adjacent same-family rotations on the same operands."""
    gates: List[Optional[Gate]] = list(circuit.gates)
    for i, gate in enumerate(gates):
        if gate is None or gate.name not in _MERGEABLE:
            continue
        for j in range(i + 1, len(gates)):
            other = gates[j]
            if other is None:
                continue
            if other.name == gate.name and other.qubits == gate.qubits:
                angle = (gate.params[0] + other.params[0]) % _MERGEABLE[gate.name]
                gates[j] = None
                if abs(angle) < _ANGLE_EPS or abs(
                    angle - _MERGEABLE[gate.name]
                ) < _ANGLE_EPS:
                    gates[i] = None
                else:
                    gates[i] = Gate(gate.name, gate.qubits, (angle,))
                gate = gates[i]
                if gate is None:
                    break
                continue
            if not _commutes_trivially(gate, other):
                break
    return Circuit(circuit.num_qubits, (g for g in gates if g is not None))


def optimize_circuit(circuit: Circuit, max_passes: int = 10) -> Circuit:
    """Run all peephole passes to a fixed point (bounded by ``max_passes``)."""
    current = circuit
    for _ in range(max_passes):
        reduced = merge_rotations(cancel_self_inverses(current))
        if len(reduced) == len(current):
            return reduced
        current = reduced
    return current


def optimization_report(before: Circuit, after: Circuit) -> Dict[str, int]:
    """Gate/depth deltas from an optimization run."""
    return {
        "gates_before": len(before),
        "gates_after": len(after),
        "gates_removed": len(before) - len(after),
        "depth_before": before.depth(),
        "depth_after": after.depth(),
    }
