"""Gate intermediate representation.

A :class:`Gate` is an immutable application of a named operation to a tuple
of qubit indices, optionally with real parameters (rotation angles).  The
compiler cares about *structural* properties — arity, operand set, whether
the gate entangles — while the statevector simulator consults
:mod:`repro.circuits.gate_library` for the actual unitaries.

Multiqubit gates (three or more operands) are first-class citizens because
native execution of e.g. Toffoli is one of the neutral-atom architecture's
headline features (paper §IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Gate names the hardware treats as qubit-state measurement.  Measured
#: qubits are subject to readout atom loss (paper §VI).
MEASUREMENT_NAMES = frozenset({"measure"})

#: Names of gates that are their own inverse (used by equivalence checks
#: and the reroute strategy's swap-undo bookkeeping).
SELF_INVERSE_NAMES = frozenset(
    {"x", "y", "z", "h", "cx", "cz", "swap", "ccx", "ccz", "cswap"}
)


@dataclass(frozen=True)
class Gate:
    """One gate application.

    Attributes:
        name: Lower-case operation mnemonic (``"cx"``, ``"ccx"``, ``"rz"`` ...).
        qubits: Operand qubit indices; order matters (controls before
            targets by convention).
        params: Real parameters, e.g. rotation angles in radians.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate operand in gate {self.name}: {self.qubits}")
        if not self.qubits:
            raise ValueError(f"gate {self.name} has no operands")

    @property
    def arity(self) -> int:
        """Number of operand qubits."""
        return len(self.qubits)

    @property
    def is_measurement(self) -> bool:
        return self.name in MEASUREMENT_NAMES

    @property
    def is_multiqubit(self) -> bool:
        """True for gates on two or more qubits (requires Rydberg coupling)."""
        return self.arity >= 2

    @property
    def is_swap(self) -> bool:
        return self.name == "swap"

    def on(self, *qubits: int) -> "Gate":
        """Return a copy of this gate applied to different qubits."""
        if len(qubits) != self.arity:
            raise ValueError(
                f"gate {self.name} expects {self.arity} operands, got {len(qubits)}"
            )
        return Gate(self.name, tuple(qubits), self.params)

    def remap(self, mapping) -> "Gate":
        """Return this gate with operands translated through ``mapping``.

        ``mapping`` may be a dict or any callable-free ``__getitem__``
        container mapping old index -> new index.
        """
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __str__(self) -> str:
        params = ""
        if self.params:
            params = "(" + ", ".join(f"{p:.4g}" for p in self.params) + ")"
        operands = ", ".join(str(q) for q in self.qubits)
        return f"{self.name}{params} {operands}"


# -- Constructors for the common gate set ----------------------------------
# These read better at call sites than Gate("cx", (a, b)) and centralize
# operand-order conventions.


def x(q: int) -> Gate:
    return Gate("x", (q,))


def y(q: int) -> Gate:
    return Gate("y", (q,))


def z(q: int) -> Gate:
    return Gate("z", (q,))


def h(q: int) -> Gate:
    return Gate("h", (q,))


def s(q: int) -> Gate:
    return Gate("s", (q,))


def sdg(q: int) -> Gate:
    return Gate("sdg", (q,))


def t(q: int) -> Gate:
    return Gate("t", (q,))


def tdg(q: int) -> Gate:
    return Gate("tdg", (q,))


def rx(theta: float, q: int) -> Gate:
    return Gate("rx", (q,), (theta,))


def ry(theta: float, q: int) -> Gate:
    return Gate("ry", (q,), (theta,))


def rz(theta: float, q: int) -> Gate:
    return Gate("rz", (q,), (theta,))


def cx(control: int, target: int) -> Gate:
    return Gate("cx", (control, target))


def cz(control: int, target: int) -> Gate:
    return Gate("cz", (control, target))


def cphase(theta: float, control: int, target: int) -> Gate:
    return Gate("cphase", (control, target), (theta,))


def rzz(theta: float, a: int, b: int) -> Gate:
    return Gate("rzz", (a, b), (theta,))


def swap(a: int, b: int) -> Gate:
    return Gate("swap", (a, b))


def ccx(control_a: int, control_b: int, target: int) -> Gate:
    """Toffoli: the paper's flagship native three-qubit gate."""
    return Gate("ccx", (control_a, control_b, target))


def ccz(a: int, b: int, c: int) -> Gate:
    return Gate("ccz", (a, b, c))


def cswap(control: int, a: int, b: int) -> Gate:
    return Gate("cswap", (control, a, b))


def mcx(controls, target: int) -> Gate:
    """Multi-controlled X with an arbitrary number of controls.

    ``mcx([c], t)`` is a CX and ``mcx([c1, c2], t)`` a Toffoli; larger
    control counts produce ``"c3x"``, ``"c4x"`` ... names so the arity is
    visible in printed circuits.
    """
    controls = tuple(int(c) for c in controls)
    if not controls:
        return x(target)
    if len(controls) == 1:
        return cx(controls[0], target)
    if len(controls) == 2:
        return ccx(controls[0], controls[1], target)
    return Gate(f"c{len(controls)}x", controls + (target,))


def measure(q: int) -> Gate:
    return Gate("measure", (q,))
