"""Dependency DAG over a circuit's gates.

The compiler consumes circuits through this view: gates are nodes, and a
directed edge runs from gate *a* to gate *b* when they share a qubit and
*a* precedes *b* in program order (nearest predecessor per qubit only).

Two consumers:

* the lookahead weight function walks layers *ahead of the frontier*
  (paper §III-A, ``w(u, v) = sum_{l >= l_c} e^{-|l_c - l|}``);
* the scheduler pops executable gates from the frontier as their
  predecessors complete.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate


class CircuitDag:
    """Static dependency structure for one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        num_gates = len(circuit)
        self.predecessors: List[Set[int]] = [set() for _ in range(num_gates)]
        self.successors: List[Set[int]] = [set() for _ in range(num_gates)]
        last_on_qubit: Dict[int, int] = {}
        for idx, gate in enumerate(circuit):
            for q in gate.qubits:
                prev = last_on_qubit.get(q)
                if prev is not None:
                    self.predecessors[idx].add(prev)
                    self.successors[prev].add(idx)
                last_on_qubit[q] = idx
        self._layers: Optional[List[List[int]]] = None
        self._gate_layer: Optional[List[int]] = None
        self._weight_pairs: Optional[List[Tuple[Tuple[int, int], ...]]] = None

    def __len__(self) -> int:
        return len(self.circuit)

    def gate(self, idx: int) -> Gate:
        return self.circuit[idx]

    # -- layering ------------------------------------------------------------

    def layers(self) -> List[List[int]]:
        """ASAP layers of gate indices (cached)."""
        if self._layers is None:
            self._layers = self.circuit.layers()
            self._gate_layer = [0] * len(self.circuit)
            for layer_idx, layer in enumerate(self._layers):
                for gate_idx in layer:
                    self._gate_layer[gate_idx] = layer_idx
        return self._layers

    def gate_layer(self, idx: int) -> int:
        """ASAP layer index of gate ``idx``."""
        self.layers()
        assert self._gate_layer is not None
        return self._gate_layer[idx]

    def roots(self) -> List[int]:
        return [i for i in range(len(self)) if not self.predecessors[i]]

    def weight_pairs(self, idx: int) -> Tuple[Tuple[int, int], ...]:
        """Operand pairs of gate ``idx`` that carry lookahead weight.

        Empty for single-qubit gates and measurements.  Cached: the weight
        function re-walks the same gates every scheduler timestep.
        """
        if self._weight_pairs is None:
            pairs: List[Tuple[Tuple[int, int], ...]] = []
            for gate in self.circuit:
                if gate.arity < 2 or gate.is_measurement:
                    pairs.append(())
                else:
                    pairs.append(tuple(interaction_pairs(gate)))
            self._weight_pairs = pairs
        return self._weight_pairs[idx]


class Frontier:
    """Mutable execution frontier over a :class:`CircuitDag`.

    Tracks which gates are ready (all predecessors done).  The scheduler
    marks gates done one at a time; the lookahead weighting asks for the
    *remaining* layer structure relative to the current frontier.
    """

    def __init__(self, dag: CircuitDag):
        self.dag = dag
        self._remaining_preds: List[int] = [len(p) for p in dag.predecessors]
        self._done: List[bool] = [False] * len(dag)
        self._ready: Set[int] = {i for i, n in enumerate(self._remaining_preds) if n == 0}
        self.num_done = 0

    @property
    def ready(self) -> Set[int]:
        """Indices of gates whose dependencies are all satisfied."""
        return self._ready

    def is_done(self, idx: int) -> bool:
        return self._done[idx]

    def all_done(self) -> bool:
        return self.num_done == len(self.dag)

    def complete(self, idx: int) -> None:
        """Mark gate ``idx`` executed, releasing its successors."""
        if self._done[idx]:
            raise ValueError(f"gate {idx} already completed")
        if idx not in self._ready:
            raise ValueError(f"gate {idx} is not ready (unmet dependencies)")
        self._done[idx] = True
        self._ready.discard(idx)
        self.num_done += 1
        for succ in self.dag.successors[idx]:
            self._remaining_preds[succ] -= 1
            if self._remaining_preds[succ] == 0:
                self._ready.add(succ)

    # -- lookahead support -----------------------------------------------------

    def remaining_layers(self, max_layers: int) -> List[List[int]]:
        """ASAP layering of the *unexecuted* portion of the circuit.

        Layer 0 is the current frontier (``ready`` gates).  Only the first
        ``max_layers`` layers are materialized since the exponential
        lookahead weight decays fast.
        """
        # ``_remaining_preds`` is maintained incrementally by complete(),
        # so for every unexecuted gate it already equals the number of
        # unexecuted predecessors — no need to recount the whole DAG.
        # Layer 0 is exactly the ready set.
        remaining_preds = list(self._remaining_preds)
        layers: List[List[int]] = []
        current = sorted(self._ready)
        produced: Set[int] = set(current)
        while current and len(layers) < max_layers:
            layers.append(current)
            next_layer: List[int] = []
            for idx in current:
                for succ in self.dag.successors[idx]:
                    if succ in produced or self._done[succ]:
                        continue
                    remaining_preds[succ] -= 1
                    if remaining_preds[succ] == 0:
                        next_layer.append(succ)
                        produced.add(succ)
            current = next_layer
        return layers


def interaction_pairs(gate: Gate) -> List[Tuple[int, int]]:
    """All unordered operand pairs of a (multiqubit) gate.

    The lookahead weight of a k-qubit gate is added between every pair of
    its operands (paper §III-A: "when considering a multiqubit gate we add
    this weighting function between all pairs of qubits in the gate").
    """
    qubits = gate.qubits
    return [
        (qubits[i], qubits[j])
        for i in range(len(qubits))
        for j in range(i + 1, len(qubits))
    ]
