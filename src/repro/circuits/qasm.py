"""Minimal OpenQASM 2.0 export/import.

Provides interchange with the wider ecosystem (the paper's artifact is
Qiskit-adjacent).  Only the gate set used by this library is supported;
this is an interchange convenience, not a full OpenQASM front end.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate

#: repro gate name -> OpenQASM mnemonic.
_TO_QASM = {
    "i": "id",
    "cphase": "cp",
    "measure": "measure",
}
#: OpenQASM mnemonic -> repro gate name.
_FROM_QASM = {
    "id": "i",
    "cp": "cphase",
    "cu1": "cphase",
    "ccz": "ccz",
    "toffoli": "ccx",
}

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def to_qasm(circuit: Circuit) -> str:
    """Serialize ``circuit`` as OpenQASM 2.0 text."""
    lines = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    if any(g.is_measurement for g in circuit):
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit:
        name = _TO_QASM.get(gate.name, gate.name)
        operands = ",".join(f"q[{q}]" for q in gate.qubits)
        if gate.is_measurement:
            q = gate.qubits[0]
            lines.append(f"measure q[{q}] -> c[{q}];")
        elif gate.params:
            params = ",".join(f"{p!r}" for p in gate.params)
            lines.append(f"{name}({params}) {operands};")
        else:
            lines.append(f"{name} {operands};")
    return "\n".join(lines) + "\n"


_GATE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*"
    r"(?:\((?P<params>[^)]*)\))?\s+"
    r"(?P<operands>q\[\d+\](?:\s*,\s*q\[\d+\])*)\s*;$"
)
_MEASURE_RE = re.compile(r"^measure\s+q\[(?P<q>\d+)\]\s*->\s*c\[\d+\]\s*;$")
_QREG_RE = re.compile(r"^qreg\s+q\[(?P<n>\d+)\]\s*;$")


def from_qasm(text: str) -> Circuit:
    """Parse OpenQASM 2.0 text produced by :func:`to_qasm` (single qreg)."""
    num_qubits = None
    gates: List[Gate] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line or line.startswith(("OPENQASM", "include", "creg", "barrier")):
            continue
        qreg = _QREG_RE.match(line)
        if qreg:
            num_qubits = int(qreg.group("n"))
            continue
        meas = _MEASURE_RE.match(line)
        if meas:
            gates.append(Gate("measure", (int(meas.group("q")),)))
            continue
        match = _GATE_RE.match(line)
        if not match:
            raise ValueError(f"unsupported QASM line: {raw_line!r}")
        name = _FROM_QASM.get(match.group("name"), match.group("name"))
        params_text = match.group("params")
        params = tuple(
            float(p) for p in params_text.split(",")
        ) if params_text else ()
        qubits = tuple(
            int(m) for m in re.findall(r"q\[(\d+)\]", match.group("operands"))
        )
        gates.append(Gate(name, qubits, params))
    if num_qubits is None:
        raise ValueError("QASM text declares no qreg")
    return Circuit(num_qubits, gates)
