"""Minimal OpenQASM 2.0 export/import.

Provides interchange with the wider ecosystem (the paper's artifact is
Qiskit-adjacent).  Only the gate set used by this library is supported;
this is an interchange convenience, not a full OpenQASM front end.

Because ``from_qasm`` is the ingestion point for *user-supplied*
workloads (``POST /circuits``, ``repro circuits add``), it validates
loudly rather than best-effort: malformed or oversized register
declarations, gates outside :data:`SUPPORTED_QASM_GATES`, bad
parameters, and out-of-range operands all raise ``ValueError`` naming
the offending line — nothing is silently dropped or guessed.
"""

from __future__ import annotations

import re
from typing import List

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate

#: repro gate name -> OpenQASM mnemonic.
_TO_QASM = {
    "i": "id",
    "cphase": "cp",
    "measure": "measure",
}
#: OpenQASM mnemonic -> repro gate name.
_FROM_QASM = {
    "id": "i",
    "cp": "cphase",
    "cu1": "cphase",
    "ccz": "ccz",
    "toffoli": "ccx",
}

#: Every gate name accepted after alias normalization — exactly the set
#: the gate library (:mod:`repro.circuits.gate_library`) can interpret,
#: plus ``measure``.  Multi-controlled X gates (``c<N>x``) are
#: additionally accepted by pattern.
SUPPORTED_QASM_GATES = frozenset({
    "i", "x", "y", "z", "h", "s", "sdg", "t", "tdg",
    "rx", "ry", "rz", "p", "phase",
    "cx", "cz", "cphase", "rzz", "swap",
    "ccx", "ccz", "cswap",
    "measure",
})

_MCX_RE = re.compile(r"^c\d+x$")

#: Register-size ceiling for ingested programs.  Far above any device
#: this library models (the paper's array is 10x10); a declaration past
#: it is a malformed or hostile upload, not a workload.
MAX_QASM_QUBITS = 4096

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def to_qasm(circuit: Circuit) -> str:
    """Serialize ``circuit`` as OpenQASM 2.0 text."""
    lines = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    if any(g.is_measurement for g in circuit):
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit:
        name = _TO_QASM.get(gate.name, gate.name)
        operands = ",".join(f"q[{q}]" for q in gate.qubits)
        if gate.is_measurement:
            q = gate.qubits[0]
            lines.append(f"measure q[{q}] -> c[{q}];")
        elif gate.params:
            params = ",".join(f"{p!r}" for p in gate.params)
            lines.append(f"{name}({params}) {operands};")
        else:
            lines.append(f"{name} {operands};")
    return "\n".join(lines) + "\n"


_GATE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*"
    r"(?:\((?P<params>[^)]*)\))?\s+"
    r"(?P<operands>q\[\d+\](?:\s*,\s*q\[\d+\])*)\s*;$"
)
_MEASURE_RE = re.compile(r"^measure\s+q\[(?P<q>\d+)\]\s*->\s*c\[\d+\]\s*;$")
_QREG_RE = re.compile(r"^qreg\s+q\[(?P<n>\d+)\]\s*;$")


def _supported(name: str) -> bool:
    return name in SUPPORTED_QASM_GATES or bool(_MCX_RE.match(name))


def _reject(lineno: int, raw_line: str, reason: str) -> ValueError:
    return ValueError(f"QASM line {lineno}: {reason} in {raw_line!r}")


def from_qasm(text: str) -> Circuit:
    """Parse OpenQASM 2.0 text (single ``q`` register).

    Raises ``ValueError`` — always naming the offending source line —
    for malformed, duplicate, empty, or oversized ``qreg`` declarations,
    gates outside :data:`SUPPORTED_QASM_GATES` (or ``c<N>x``), malformed
    parameters, operands outside the declared register, and any line
    matching no supported form.
    """
    num_qubits = None
    gates: List[Gate] = []
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("//")[0].strip()
        if not line or line.startswith(("OPENQASM", "include", "creg",
                                        "barrier")):
            continue
        if line.startswith("qreg"):
            qreg = _QREG_RE.match(line)
            if not qreg:
                raise _reject(lineno, raw_line,
                              "malformed register declaration (expected "
                              "'qreg q[N];')")
            if num_qubits is not None:
                raise _reject(lineno, raw_line,
                              "duplicate qreg declaration (a single "
                              "register is supported)")
            declared = int(qreg.group("n"))
            if declared < 1:
                raise _reject(lineno, raw_line, "empty register")
            if declared > MAX_QASM_QUBITS:
                raise _reject(
                    lineno, raw_line,
                    f"oversized register ({declared} qubits; the "
                    f"supported maximum is {MAX_QASM_QUBITS})")
            num_qubits = declared
            continue
        meas = _MEASURE_RE.match(line)
        if meas:
            if num_qubits is None:
                raise _reject(lineno, raw_line,
                              "measurement before the qreg declaration")
            measured = int(meas.group("q"))
            if measured >= num_qubits:
                raise _reject(
                    lineno, raw_line,
                    f"operand q[{measured}] outside the declared register "
                    f"of size {num_qubits}")
            gates.append(Gate("measure", (measured,)))
            continue
        match = _GATE_RE.match(line)
        if not match:
            raise ValueError(f"unsupported QASM line: {raw_line!r}")
        if num_qubits is None:
            raise _reject(lineno, raw_line,
                          "gate before the qreg declaration")
        name = _FROM_QASM.get(match.group("name"), match.group("name"))
        if not _supported(name):
            raise _reject(
                lineno, raw_line,
                f"unsupported gate {match.group('name')!r} (supported: "
                f"{', '.join(sorted(SUPPORTED_QASM_GATES))}, c<N>x)")
        params_text = match.group("params")
        if params_text:
            try:
                params = tuple(float(p) for p in params_text.split(","))
            except ValueError:
                raise _reject(lineno, raw_line,
                              f"malformed parameter list ({params_text!r};"
                              " parameters must be numeric literals)"
                              ) from None
        else:
            params = ()
        qubits = tuple(
            int(m) for m in re.findall(r"q\[(\d+)\]", match.group("operands"))
        )
        try:
            gate = Gate(name, qubits, params)
        except ValueError as error:
            raise _reject(lineno, raw_line, str(error)) from None
        if max(qubits) >= num_qubits:
            raise _reject(
                lineno, raw_line,
                f"operand q[{max(qubits)}] outside the declared register "
                f"of size {num_qubits}")
        gates.append(gate)
    if num_qubits is None:
        raise ValueError("QASM text declares no qreg")
    return Circuit(num_qubits, gates)
