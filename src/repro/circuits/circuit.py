"""Quantum circuit container.

A :class:`Circuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
applications over ``num_qubits`` qubits.  It provides the structural queries
the compiler and analysis layers need: ASAP layering, depth, gate counts by
arity, and qubit remapping.

The circuit is deliberately simple — no classical registers, no conditional
gates — because the paper's benchmarks and compiler operate on straight-line
quantum programs whose control flow is fully known at compile time (§III-A).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuits.gates import Gate


class Circuit:
    """An ordered sequence of gates on a fixed-size qubit register."""

    def __init__(self, num_qubits: int, gates: Optional[Iterable[Gate]] = None):
        if num_qubits <= 0:
            raise ValueError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self._gates: List[Gate] = []
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # -- construction -------------------------------------------------------

    def append(self, gate: Gate) -> None:
        """Append one gate, validating operand indices."""
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise IndexError(
                    f"gate {gate} uses qubit {q} outside register of size "
                    f"{self.num_qubits}"
                )
        self._gates.append(gate)

    def extend(self, gates: Iterable[Gate]) -> None:
        for gate in gates:
            self.append(gate)

    def compose(self, other: "Circuit") -> "Circuit":
        """Return a new circuit running ``self`` then ``other``.

        The register must be at least as large as ``other``'s.
        """
        if other.num_qubits > self.num_qubits:
            raise ValueError("cannot compose a larger circuit onto a smaller one")
        combined = Circuit(self.num_qubits, self._gates)
        combined.extend(other.gates)
        return combined

    def copy(self) -> "Circuit":
        return Circuit(self.num_qubits, self._gates)

    # -- access --------------------------------------------------------------

    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._gates == other._gates

    # -- structural metrics --------------------------------------------------

    def layers(self) -> List[List[int]]:
        """ASAP layering: lists of gate indices with no intra-layer overlap.

        A gate lands in layer ``1 + max(layer of its qubit predecessors)``.
        This is the logical-dependency depth, ignoring hardware constraints;
        the scheduler produces the *physical* depth.
        """
        qubit_layer: Dict[int, int] = {}
        layers: List[List[int]] = []
        for idx, gate in enumerate(self._gates):
            layer = max((qubit_layer.get(q, -1) for q in gate.qubits), default=-1) + 1
            if layer == len(layers):
                layers.append([])
            layers[layer].append(idx)
            for q in gate.qubits:
                qubit_layer[q] = layer
        return layers

    def depth(self) -> int:
        """Length of the critical path in logical layers."""
        qubit_layer: Dict[int, int] = {}
        depth = 0
        for gate in self._gates:
            layer = max((qubit_layer.get(q, -1) for q in gate.qubits), default=-1) + 1
            for q in gate.qubits:
                qubit_layer[q] = layer
            if layer + 1 > depth:
                depth = layer + 1
        return depth

    def gate_counts(self) -> Counter:
        """Counter of gate names."""
        return Counter(g.name for g in self._gates)

    def counts_by_arity(self) -> Counter:
        """Counter mapping arity (1, 2, 3, ...) to number of gates.

        This is the ``n_i`` of the paper's success-rate model (§V).
        Measurement gates are excluded — readout error is modelled
        separately by the loss machinery.
        """
        return Counter(g.arity for g in self._gates if not g.is_measurement)

    def multiqubit_gate_count(self) -> int:
        return sum(1 for g in self._gates if g.is_multiqubit and not g.is_measurement)

    def used_qubits(self) -> set:
        return {q for g in self._gates for q in g.qubits}

    def parallelism(self) -> float:
        """Mean gates per logical layer — the paper's notion of how
        "inherently parallel" a benchmark is (§IV-A)."""
        depth = self.depth()
        if depth == 0:
            return 0.0
        return len(self._gates) / depth

    # -- transformation ------------------------------------------------------

    def remapped(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "Circuit":
        """Return a copy with qubit indices translated through ``mapping``."""
        size = num_qubits if num_qubits is not None else self.num_qubits
        out = Circuit(size)
        for gate in self._gates:
            out.append(gate.remap(mapping))
        return out

    def without_measurements(self) -> "Circuit":
        return Circuit(
            self.num_qubits, (g for g in self._gates if not g.is_measurement)
        )

    def with_final_measurements(self, qubits: Optional[Sequence[int]] = None) -> "Circuit":
        """Return a copy with ``measure`` appended on ``qubits`` (default all)."""
        out = self.copy()
        targets = range(self.num_qubits) if qubits is None else qubits
        for q in targets:
            out.append(Gate("measure", (q,)))
        return out

    def __str__(self) -> str:
        body = "\n".join(f"  {g}" for g in self._gates[:50])
        suffix = "" if len(self._gates) <= 50 else f"\n  ... ({len(self._gates)} total)"
        return f"Circuit({self.num_qubits} qubits, {len(self._gates)} gates)\n{body}{suffix}"

    def __repr__(self) -> str:
        return f"Circuit(num_qubits={self.num_qubits}, gates={len(self._gates)})"
