"""Content identity of circuits: the canonical gate-stream digest.

An uploaded program needs a name before anything else can happen to it
— store keys, in-flight dedup, fleet distribution all identify work by
stable strings.  :func:`circuit_digest` gives every circuit that name: a
SHA-256 over the **gate stream as written** — ``num_qubits`` plus each
gate's ``(name, qubits, params)`` in insertion order, floats rendered
via ``repr`` so the digest is identical in any process.

This is deliberately *not* :func:`repro.exec.keys.circuit_fingerprint`:

* The fingerprint canonicalizes away same-layer gate order because it
  identifies a **compilation** — two semantically-equal spellings may
  share compile work.
* The digest preserves insertion order because it identifies a
  **program as uploaded** — the content address of the artifact a user
  handed us, the way a git blob hashes bytes, not meaning.

The digest is versioned by :data:`CIRCUIT_DIGEST_VERSION`, **not** by
``repro.exec.keys.SCHEMA_VERSION``: program identity must survive
compiler-semantics bumps (the same upload keeps its address forever),
while any result computed *from* it is keyed through ``store_key``,
which does include ``SCHEMA_VERSION``.  Bump
:data:`CIRCUIT_DIGEST_VERSION` only if the encoding below changes what
two circuits hash equal — which orphans every stored circuit, so don't.
"""

from __future__ import annotations

import hashlib
import re
from typing import Optional

from repro.circuits.circuit import Circuit

#: Bump only when the digest encoding itself changes shape (re-addresses
#: every stored circuit; see module docstring).
CIRCUIT_DIGEST_VERSION = 1

#: The workload-reference spelling of a digest: ``circuit:<64 hex>``.
CIRCUIT_REF_PREFIX = "circuit:"

_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


def circuit_digest(circuit: Circuit) -> str:
    """The canonical SHA-256 hex digest of ``circuit``'s gate stream.

    Sensitive to register size, gate names, operand order, parameter
    values (``repr``-rendered floats), and the insertion order of the
    gates; insensitive to everything else (object identity, how the
    circuit was built).
    """
    payload = (
        "repro-circuit",
        CIRCUIT_DIGEST_VERSION,
        circuit.num_qubits,
        tuple(
            (gate.name, gate.qubits,
             tuple(repr(float(p)) for p in gate.params))
            for gate in circuit
        ),
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def is_circuit_digest(text: object) -> bool:
    """Whether ``text`` is a well-formed digest (64 lowercase hex)."""
    return isinstance(text, str) and bool(_DIGEST_RE.match(text))


def circuit_ref(circuit_or_digest) -> str:
    """The ``circuit:<digest>`` workload reference for a circuit.

    Accepts a :class:`Circuit` (digested here) or an existing digest
    string; raises ``ValueError`` on anything else.
    """
    if isinstance(circuit_or_digest, Circuit):
        return CIRCUIT_REF_PREFIX + circuit_digest(circuit_or_digest)
    if is_circuit_digest(circuit_or_digest):
        return CIRCUIT_REF_PREFIX + circuit_or_digest
    raise ValueError(
        f"expected a Circuit or a 64-hex digest, got {circuit_or_digest!r}"
    )


def parse_circuit_ref(text: object) -> Optional[str]:
    """The digest inside a ``circuit:<digest>`` reference, else ``None``.

    A string that *starts* like a reference but carries a malformed
    digest raises ``ValueError`` — silently treating it as a benchmark
    name would misroute a typo into the registry.
    """
    if not isinstance(text, str) or not text.startswith(CIRCUIT_REF_PREFIX):
        return None
    digest = text[len(CIRCUIT_REF_PREFIX):]
    if not is_circuit_digest(digest):
        raise ValueError(
            f"malformed circuit reference {text!r}: expected "
            f"'{CIRCUIT_REF_PREFIX}<64 lowercase hex digits>'"
        )
    return digest
