"""Shared utilities: deterministic RNG helpers, geometry, and text plots."""

from repro.utils.geometry import disks_overlap, euclidean, point_in_disk
from repro.utils.rng import ensure_rng

__all__ = ["disks_overlap", "euclidean", "point_in_disk", "ensure_rng"]
