"""Plane geometry for the 2D atom grid.

Sites live at integer coordinates on a unit-pitch grid.  Distances are
Euclidean (the paper's interaction criterion ``d(u, v) <= d_max`` and its
restriction-zone radii are Euclidean lengths).  All predicates use a small
epsilon so boundary cases (e.g. two zones exactly touching) resolve the
same way on every platform.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

Point = Tuple[float, float]

#: Tolerance for boundary comparisons.  Zones that exactly touch are treated
#: as non-overlapping (open disks), matching the paper's "zones do not
#: intersect" wording for gates allowed to run in parallel.
EPS = 1e-9


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two grid points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def max_pairwise_distance(points: Sequence[Point]) -> float:
    """Largest pairwise Euclidean distance among ``points``.

    This is the ``d`` that parameterizes a multiqubit gate's restriction
    zone ``f(d) = d / 2``.  A single point yields 0.0.
    """
    best = 0.0
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            dist = euclidean(points[i], points[j])
            if dist > best:
                best = dist
    return best


def point_in_disk(point: Point, center: Point, radius: float) -> bool:
    """Whether ``point`` lies strictly inside the open disk."""
    return euclidean(point, center) < radius - EPS


def disks_overlap(c1: Point, r1: float, c2: Point, r2: float) -> bool:
    """Whether two open disks intersect.

    Tangent disks (distance exactly ``r1 + r2``) do not overlap; this is the
    permissive reading that lets maximally packed parallel gates execute.
    """
    return euclidean(c1, c2) < r1 + r2 - EPS


def chebyshev(a: Point, b: Point) -> float:
    """Chebyshev (L-infinity) distance; used for coarse neighbor pruning."""
    return max(abs(a[0] - b[0]), abs(a[1] - b[1]))


def bounding_box(points: Iterable[Point]) -> Tuple[float, float, float, float]:
    """Axis-aligned bounding box ``(min_x, min_y, max_x, max_y)``."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box of empty point set")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    return min(xs), min(ys), max(xs), max(ys)
