"""Deterministic random number handling.

Every stochastic component in the library (QAOA graph generation, atom-loss
injection, tolerance trials) accepts either an integer seed, a
``numpy.random.Generator``, or ``None``.  This module centralizes the
coercion so all call sites behave identically and experiments are
reproducible by construction.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    ``None`` produces a freshly seeded generator, an ``int`` seeds a new
    generator, and an existing generator is passed through untouched so
    callers can share a stream across components.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (bool, np.bool_)):
        # bool is a subclass of int, so without this check True would
        # silently seed as 1 — almost certainly a bug at the call site
        # (e.g. a flag passed where a seed was expected).
        raise TypeError(
            f"seed must not be a bool (got {rng!r}); pass an int, a "
            "numpy Generator, or None"
        )
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected None, int, or numpy Generator, got {type(rng)!r}")


def base_seed_from(rng: RngLike) -> int:
    """Collapse an ``RngLike`` into one integer base seed.

    Sweep drivers combine this base with each task's canonical key
    (:func:`repro.exec.keys.derive_seed`) so per-task streams never
    depend on task enumeration order.  An integer passes through
    unchanged; a generator contributes a single draw; ``None`` draws a
    fresh unseeded value.
    """
    if isinstance(rng, (bool, np.bool_)):
        raise TypeError(
            f"seed must not be a bool (got {rng!r}); pass an int, a "
            "numpy Generator, or None"
        )
    if isinstance(rng, (int, np.integer)):
        return int(rng)
    return int(ensure_rng(rng).integers(0, 2**63 - 1))


def spawn(rng: RngLike, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``.

    Used by experiment drivers that run several trials in a loop: each trial
    gets its own stream so trial *k* is reproducible regardless of how many
    draws earlier trials made.
    """
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
