"""Plain-text tables and sparkline-style series for experiment output.

The benchmark harness regenerates every figure in the paper as printed
rows/series (no matplotlib dependency).  These helpers keep that output
consistent across experiment modules.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table.

    Numbers are rendered with a compact general format; everything else via
    ``str``.  Column widths adapt to content.
    """
    rendered_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    all_rows = [list(map(str, headers))] + rendered_rows
    widths = [max(len(row[i]) for row in all_rows) for i in range(len(headers))]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(all_rows[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e4 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render a named (x, y) series as ``name: (x1, y1) (x2, y2) ...``."""
    pairs = " ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def percent(value: float) -> str:
    """Format a ratio as a percentage string, e.g. ``0.42 -> '42.0%'``."""
    return f"{100.0 * value:.1f}%"
