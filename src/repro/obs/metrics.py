"""Fixed-bucket latency histograms for the serving metrics.

Prometheus-shaped: a histogram is a set of cumulative-on-render bucket
counters with fixed upper bounds, plus a running sum and count.  Fixed
buckets (vs. quantile sketches) keep observation O(log buckets) with no
allocation, merge trivially across scrapes, and render directly into
the text exposition format.

Instances are **not** self-locking — :class:`~repro.serve.metrics.
ServeMetrics` mutates them under its own lock so one snapshot stays
internally consistent with the counters taken beside it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Sequence, Tuple

#: Upper bounds (seconds) spanning the stack's latency range: sub-ms
#: store hits through multi-second compile+shot cells up to minute-long
#: quick-suite sweeps.  The implicit +Inf bucket catches the rest.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Histogram:
    """One fixed-bucket histogram: per-bucket counts, sum, and count."""

    __slots__ = ("bounds", "counts", "overflow", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}")
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        #: Observations above the largest bound (the +Inf bucket).
        self.overflow = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (seconds).  Negative values clamp to
        zero — clock skew must not corrupt the distribution."""
        value = max(0.0, float(value))
        index = bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.counts[index] += 1
        else:
            self.overflow += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> Tuple[Tuple[float, int], ...]:
        """``(upper_bound, cumulative_count)`` per bucket, ascending —
        the ``le``-labelled series Prometheus expects (excluding the
        ``+Inf`` bucket, whose cumulative count is :attr:`count`)."""
        running = 0
        rows = []
        for bound, count in zip(self.bounds, self.counts):
            running += count
            rows.append((bound, running))
        return tuple(rows)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly summary for the ``/metrics`` JSON payload."""
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "buckets": {_format_bound(bound): cum
                        for bound, cum in self.cumulative()},
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.sum:.6f})"


def _format_bound(bound: float) -> str:
    """A bucket bound as Prometheus spells it: shortest exact decimal
    (``0.005``, ``1``, ``30``) — never scientific notation."""
    text = repr(bound)
    if text.endswith(".0"):
        text = text[:-2]
    return text
