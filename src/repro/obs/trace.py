"""Trace context and span recording — the tracing half of ``repro.obs``.

A **trace** is one end-to-end operation (a ``repro run``, one
``RemoteSession.run`` call, one served request chain) identified by a
32-hex ``trace_id`` minted at the outermost entry point.  A **span** is
one timed stage inside it (``server.request``, ``queue.wait``,
``compile``, ``shots``, ...), identified by a 16-hex ``span_id`` and
linked to its parent span — together the spans of a trace reconstruct
where the wall-clock time of a run actually went, across processes and
hosts.

Propagation is ambient: :func:`activate` binds ``(tracer, trace_id,
current span)`` to a :mod:`contextvars` context variable, and
:func:`span` opens a child of whatever is current — so deep code
(``cached_compile``, the shot kernels, the job queue) records spans
without threading arguments through every call.  Across process/host
boundaries the context travels explicitly: the ``X-Repro-Trace`` HTTP
header (``<trace_id>-<span_id>``), fleet claim payloads, and spawn-pool
initializers.

**Zero-perturbation contract.**  Tracing is observability, never
semantics: span timestamps are wall-clock stamps that feed *only* the
trace sink — never cache keys, seeds, parameters, or result envelopes —
and with no active trace :func:`span` is a near-free no-op (one context
variable read).  ``--format json`` output is byte-identical with
tracing on or off; the registry-wide test in ``tests/test_obs.py`` pins
exactly that.
"""

from __future__ import annotations

import re
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, List, Optional, Tuple

#: The HTTP header carrying trace context between client, server, and
#: fleet workers: ``<32-hex trace id>-<16-hex span id>``.
TRACE_HEADER = "X-Repro-Trace"

_TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
_SPAN_ID_RE = re.compile(r"^[0-9a-f]{16}$")


def new_trace_id() -> str:
    """A fresh 32-hex trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex span id."""
    return uuid.uuid4().hex[:16]


def is_trace_id(value: Any) -> bool:
    return isinstance(value, str) and bool(_TRACE_ID_RE.match(value))


def format_trace_header(trace_id: str, span_id: str) -> str:
    """The ``X-Repro-Trace`` value for one context."""
    return f"{trace_id}-{span_id}"


def parse_trace_header(value: Any) -> Optional[Tuple[str, str]]:
    """``(trace_id, span_id)`` from a header value, or ``None``.

    Lenient by design: a malformed header from an arbitrary client must
    degrade to "no trace", never to a failed request.
    """
    if not isinstance(value, str):
        return None
    trace_id, sep, span_id = value.strip().partition("-")
    if not sep or not _TRACE_ID_RE.match(trace_id):
        return None
    if not _SPAN_ID_RE.match(span_id):
        return None
    return trace_id, span_id


def span_record(trace_id: str, span_id: str, parent: Optional[str],
                name: str, service: str, start: float, duration_s: float,
                attrs: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """One span as its JSONL dict — the single record shape every sink
    stores and ``GET /trace/<id>`` returns."""
    record: Dict[str, Any] = {
        "trace": trace_id,
        "span": span_id,
        "parent": parent,
        "name": name,
        "service": service,
        "start": round(float(start), 6),
        "duration_s": round(float(duration_s), 6),
    }
    if attrs:
        record["attrs"] = attrs
    return record


class SpanBuffer:
    """An in-memory sink: collects records for a later batched export.

    Used where the trace store is on another host — ``RemoteSession``
    and fleet workers buffer their spans and ship them to the server
    via ``POST /trace`` when the operation finishes.
    """

    def __init__(self):
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def drain(self) -> List[Dict[str, Any]]:
        records, self.records = self.records, []
        return records


class Tracer:
    """Span emission policy: a sink plus a default service label.

    ``sink`` is anything with ``emit(record)`` — a
    :class:`~repro.obs.store.TraceStore` (append-only JSONL directory)
    or a :class:`SpanBuffer`.  ``observer``, when given, is fed every
    record emitted *here* (not records ingested from elsewhere); the
    serving layer uses it to tee span durations into its latency
    histograms.
    """

    def __init__(self, sink, service: str = "repro", observer=None):
        if not callable(getattr(sink, "emit", None)):
            raise TypeError(
                f"sink must have an emit(record) method, got {sink!r}")
        self.sink = sink
        self.service = service
        self.observer = observer

    def emit(self, record: Dict[str, Any]) -> None:
        self.sink.emit(record)
        if self.observer is not None:
            self.observer(record)

    def __repr__(self) -> str:
        return f"Tracer(service={self.service!r}, sink={self.sink!r})"


class ActiveTrace:
    """The ambient context: which tracer, which trace, which span."""

    __slots__ = ("tracer", "trace_id", "span_id")

    def __init__(self, tracer: Tracer, trace_id: str,
                 span_id: Optional[str]):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id


_ACTIVE: ContextVar[Optional[ActiveTrace]] = ContextVar(
    "repro_active_trace", default=None
)


def current() -> Optional[ActiveTrace]:
    """The active trace context, or ``None`` when tracing is off."""
    return _ACTIVE.get()


def current_trace_id() -> Optional[str]:
    """The active trace id, for stamping side records (ledger rows)."""
    active = _ACTIVE.get()
    return active.trace_id if active is not None else None


def install(tracer: Tracer, trace_id: str,
            parent_span_id: Optional[str] = None) -> None:
    """Activate a context for the *lifetime* of the current thread or
    process — used by spawn-pool worker initializers, where there is no
    enclosing ``with`` block to scope the context to."""
    _ACTIVE.set(ActiveTrace(tracer, trace_id, parent_span_id))


@contextmanager
def activate(tracer: Tracer, trace_id: str,
             parent_span_id: Optional[str] = None):
    """Bind a trace context for the dynamic extent of the block."""
    token = _ACTIVE.set(ActiveTrace(tracer, trace_id, parent_span_id))
    try:
        yield _ACTIVE.get()
    finally:
        _ACTIVE.reset(token)


class SpanHandle:
    """What :func:`span` yields: annotate the live span with ``set``.

    The no-op singleton (``attrs is None``) is yielded when no trace is
    active, so call sites never branch on "is tracing on".
    """

    __slots__ = ("trace_id", "span_id", "attrs")

    def __init__(self, trace_id: Optional[str], span_id: Optional[str],
                 attrs: Optional[Dict[str, Any]]):
        self.trace_id = trace_id
        self.span_id = span_id
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        if self.attrs is not None:
            self.attrs.update(attrs)


_NOOP = SpanHandle(None, None, None)


@contextmanager
def span(name: str, service: Optional[str] = None, **attrs: Any):
    """Record one span around the block — iff a trace is active.

    Children opened inside the block parent to this span.  An exception
    crossing the block stamps an ``error`` attribute (the exception
    type name) and propagates.  Wall-clock ``start`` is stamped from
    ``time.time`` for display; ``duration_s`` from ``time.monotonic``-
    grade ``perf_counter`` so a wall-clock jump cannot corrupt it.
    """
    active = _ACTIVE.get()
    if active is None:
        yield _NOOP
        return
    handle = SpanHandle(active.trace_id, new_span_id(), dict(attrs))
    token = _ACTIVE.set(
        ActiveTrace(active.tracer, active.trace_id, handle.span_id))
    start_wall = time.time()
    start = time.perf_counter()
    try:
        yield handle
    except BaseException as error:
        handle.attrs.setdefault("error", type(error).__name__)
        raise
    finally:
        duration = time.perf_counter() - start
        _ACTIVE.reset(token)
        active.tracer.emit(span_record(
            active.trace_id, handle.span_id, active.span_id, name,
            service or active.tracer.service, start_wall, duration,
            handle.attrs))


@contextmanager
def root_span(tracer: Optional[Tracer], name: str,
              service: Optional[str] = None, **attrs: Any):
    """A child span when a trace is already active; otherwise a fresh
    root trace (when ``tracer`` is configured); otherwise a no-op.

    This is the entry-point helper: ``Session.run`` wraps itself in it,
    so a bare CLI run mints its own trace while the same call nested
    under a served job joins the request's trace instead.
    """
    active = _ACTIVE.get()
    if active is None and tracer is None:
        yield _NOOP
        return
    if active is None:
        with activate(tracer, new_trace_id(), None):
            with span(name, service=service, **attrs) as handle:
                yield handle
        return
    with span(name, service=service, **attrs) as handle:
        yield handle


def record_span(tracer: Tracer, trace_id: str, parent: Optional[str],
                name: str, service: str, start: float, duration_s: float,
                **attrs: Any) -> str:
    """Emit one externally-timed span (queue wait, lease lifetime —
    stages whose start and end happen on different threads, where a
    ``with`` block cannot wrap the interval).  Returns the span id."""
    span_id = new_span_id()
    tracer.emit(span_record(trace_id, span_id, parent, name, service,
                            start, duration_s, attrs or None))
    return span_id
