"""``repro.obs`` — end-to-end tracing, histograms, and exposition.

The observability subsystem, threaded through every layer of the
stack:

* :mod:`repro.obs.trace` — trace/span context (``X-Repro-Trace``
  propagation, ambient :func:`span` recording, :class:`Tracer`,
  :class:`SpanBuffer` for remote export).
* :mod:`repro.obs.store` — the append-only JSONL :class:`TraceStore`
  behind ``--trace-dir``, ``GET /trace/<id>``, and ``repro trace``.
* :mod:`repro.obs.metrics` — fixed-bucket :class:`Histogram` for the
  serving layer's latency distributions.
* :mod:`repro.obs.prometheus` — text exposition rendering and the
  strict :func:`validate_exposition` checker.

Everything here obeys the **zero-perturbation contract**: observability
reads the computation, never feeds it.  Span timestamps and histogram
observations go only to sinks and scrapes — never into cache keys,
seeds, parameters, or result envelopes — so output bytes are identical
with tracing on or off (pinned by the registry-wide test in
``tests/test_obs.py``).
"""

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram
from repro.obs.prometheus import validate_exposition
from repro.obs.store import TRACE_DIR_ENV, TraceStore
from repro.obs.trace import (
    TRACE_HEADER,
    ActiveTrace,
    SpanBuffer,
    SpanHandle,
    Tracer,
    activate,
    current,
    current_trace_id,
    format_trace_header,
    install,
    is_trace_id,
    new_span_id,
    new_trace_id,
    parse_trace_header,
    record_span,
    root_span,
    span,
    span_record,
)

__all__ = [
    "TRACE_HEADER",
    "TRACE_DIR_ENV",
    "DEFAULT_BUCKETS",
    "ActiveTrace",
    "Histogram",
    "SpanBuffer",
    "SpanHandle",
    "TraceStore",
    "Tracer",
    "activate",
    "current",
    "current_trace_id",
    "format_trace_header",
    "install",
    "is_trace_id",
    "new_span_id",
    "new_trace_id",
    "parse_trace_header",
    "record_span",
    "root_span",
    "span",
    "span_record",
    "validate_exposition",
]
