"""Prometheus text exposition — render and strictly validate.

Implements the subset of the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ the
serving layer emits: ``counter``, ``gauge``, and ``histogram``
families, each as ``# HELP`` / ``# TYPE`` comments followed by samples.
Histograms render the cumulative ``_bucket{le="..."}`` series (always
ending in ``le="+Inf"``) plus ``_sum`` and ``_count``.

:func:`validate_exposition` is the other half: a strict line-format
checker used both by the test suite and the CI observability gate, so
"renders something Prometheus-shaped" is a pinned contract rather than
an eyeballed one.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram, _format_bound

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the exposition format."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace("\n", "\\n")
            .replace('"', '\\"'))


def format_value(value) -> str:
    """A sample value: integers stay integral, floats keep full
    precision via ``repr``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def sample_line(name: str, labels: Optional[Mapping[str, str]],
                value) -> str:
    """One ``name{labels} value`` sample line."""
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    label_text = ""
    if labels:
        pairs = []
        for label, label_value in sorted(labels.items()):
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
            pairs.append(f'{label}="{escape_label_value(label_value)}"')
        label_text = "{" + ",".join(pairs) + "}"
    return f"{name}{label_text} {format_value(value)}"


def family(name: str, kind: str, help_text: str,
           samples: Sequence[Tuple[Optional[Mapping[str, str]], object]]
           ) -> List[str]:
    """One metric family: HELP + TYPE comments, then its samples."""
    if kind not in _VALID_TYPES:
        raise ValueError(f"invalid metric type {kind!r}")
    lines = [
        f"# HELP {name} {help_text}",
        f"# TYPE {name} {kind}",
    ]
    for labels, value in samples:
        lines.append(sample_line(name, labels, value))
    return lines


def histogram_family(
    name: str, help_text: str,
    items: Sequence[Tuple[Optional[Mapping[str, str]], Histogram]],
) -> List[str]:
    """One histogram family: per-item cumulative buckets (ending in the
    mandatory ``le="+Inf"``), ``_sum``, and ``_count`` series."""
    lines = [
        f"# HELP {name} {help_text}",
        f"# TYPE {name} histogram",
    ]
    for labels, histogram in items:
        base = dict(labels) if labels else {}
        for bound, cumulative in histogram.cumulative():
            lines.append(sample_line(
                name + "_bucket", {**base, "le": _format_bound(bound)},
                cumulative))
        lines.append(sample_line(
            name + "_bucket", {**base, "le": "+Inf"}, histogram.count))
        lines.append(sample_line(name + "_sum", labels, histogram.sum))
        lines.append(sample_line(name + "_count", labels, histogram.count))
    return lines


def render(families: Sequence[Sequence[str]]) -> str:
    """Families joined into one exposition payload (trailing newline)."""
    lines: List[str] = []
    for lines_of_family in families:
        lines.extend(lines_of_family)
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
_HELP_RE = re.compile(r"^# HELP (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) .*$")
_TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<kind>\S+)$")


def _base_name(sample_name: str, declared: Dict[str, str]) -> str:
    """The family a sample belongs to (strips histogram suffixes)."""
    if sample_name in declared:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if declared.get(base) in ("histogram", "summary"):
                return base
    return sample_name


def validate_exposition(text: str) -> Dict[str, int]:
    """Strictly validate a text-exposition payload.

    Checks every line is either a well-formed ``# HELP``/``# TYPE``
    comment or a well-formed sample, that sample values parse as
    numbers, that every sample belongs to a family whose ``# TYPE`` was
    declared *before* it, that no family is declared twice, and that
    every histogram family emits a ``le="+Inf"`` bucket.  Raises
    ``ValueError`` naming the offending line; returns
    ``{"families": N, "samples": M}`` on success.
    """
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    declared: Dict[str, str] = {}
    saw_inf: Dict[str, bool] = {}
    samples = 0
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            raise ValueError(f"line {number}: blank line")
        if line.startswith("#"):
            if _HELP_RE.match(line):
                continue
            match = _TYPE_RE.match(line)
            if not match:
                raise ValueError(f"line {number}: malformed comment: {line!r}")
            name, kind = match.group("name"), match.group("kind")
            if kind not in _VALID_TYPES:
                raise ValueError(
                    f"line {number}: invalid metric type {kind!r}")
            if name in declared:
                raise ValueError(
                    f"line {number}: duplicate TYPE for {name!r}")
            declared[name] = kind
            if kind == "histogram":
                saw_inf[name] = False
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {number}: malformed sample: {line!r}")
        labels_text = match.group("labels")
        labels: Dict[str, str] = {}
        if labels_text:
            for pair in labels_text.split(","):
                pair_match = _LABEL_PAIR_RE.match(pair)
                if not pair_match:
                    raise ValueError(
                        f"line {number}: malformed label pair {pair!r}")
                labels[pair_match.group("name")] = pair_match.group("value")
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ValueError(
                    f"line {number}: non-numeric value {value!r}")
        base = _base_name(match.group("name"), declared)
        if base not in declared:
            raise ValueError(
                f"line {number}: sample {match.group('name')!r} has no "
                "preceding # TYPE declaration")
        if (declared[base] == "histogram"
                and match.group("name").endswith("_bucket")
                and labels.get("le") == "+Inf"):
            saw_inf[base] = True
        samples += 1
    missing = sorted(name for name, seen in saw_inf.items() if not seen)
    if missing:
        raise ValueError(
            "histogram families missing le=\"+Inf\" bucket: "
            + ", ".join(missing))
    return {"families": len(declared), "samples": samples}
