"""Append-only JSONL trace sink — where spans land on disk.

Layout mirrors the result store and compile cache: one file per trace,
sharded as ``<trace_id[:2]>/<trace_id>.jsonl``, each line one span
record (see :func:`repro.obs.trace.span_record`).  Appends are
line-atomic on POSIX (single ``write`` of one ``\\n``-terminated line in
append mode), so concurrent emitters — the server's request threads,
the job queue, spawn-pool workers on the same host — interleave whole
records, never torn ones.

Like the result store, an unwritable directory degrades to dropping
spans with a single stderr warning: observability must never fail the
run it is observing.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import is_trace_id

#: Environment variable naming the default trace-sink directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


class TraceStore:
    """On-disk trace sink: one JSONL file per trace id."""

    def __init__(self, path: str):
        self.path = os.path.abspath(path)
        self._warned_unwritable = False

    def _warn_unwritable(self, error: OSError) -> None:
        if self._warned_unwritable:
            return
        self._warned_unwritable = True
        print(f"[trace store {self.path} is not writable ({error}); "
              "spans will be dropped]", file=sys.stderr)

    def _file_for(self, trace_id: str) -> str:
        return os.path.join(self.path, trace_id[:2], trace_id + ".jsonl")

    # -- writing -----------------------------------------------------------------

    def emit(self, record: Dict[str, Any]) -> None:
        """Append one span record to its trace's file."""
        trace_id = record.get("trace")
        if not is_trace_id(trace_id):
            return
        target = self._file_for(trace_id)
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            line = json.dumps(record, sort_keys=True) + "\n"
            with open(target, "a", encoding="utf-8") as handle:
                handle.write(line)
        except OSError as error:
            self._warn_unwritable(error)

    def ingest(self, records, observer=None) -> int:
        """Append a batch of externally-produced records (``POST
        /trace``); malformed entries are skipped, not fatal.  Returns
        the number of records accepted.  ``observer`` (if given) is
        called with each accepted record — the serving layer tees
        remote span durations into its latency histograms this way, so
        a fleet-only server still fills its compile histogram."""
        accepted = 0
        for record in records:
            if not isinstance(record, dict):
                continue
            if not is_trace_id(record.get("trace")):
                continue
            if not isinstance(record.get("name"), str):
                continue
            self.emit(record)
            if observer is not None:
                observer(record)
            accepted += 1
        return accepted

    # -- reading -----------------------------------------------------------------

    def read(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every span of one trace, sorted by start time (stable on the
        span id so concurrent same-stamp spans order deterministically).
        Empty when the trace is unknown."""
        if not is_trace_id(trace_id):
            return []
        try:
            with open(self._file_for(trace_id), "r",
                      encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return []
        spans = []
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                spans.append(record)
        spans.sort(key=lambda s: (s.get("start", 0.0), str(s.get("span"))))
        return spans

    def resolve(self, prefix: str) -> Optional[str]:
        """The unique trace id starting with ``prefix`` (CLI ``trace
        show`` convenience, like ``store show``), or ``None``; raises
        ``KeyError`` listing candidates when ambiguous."""
        if is_trace_id(prefix):
            return prefix if os.path.exists(self._file_for(prefix)) else None
        matches = [tid for tid, _, _ in self.traces()
                   if tid.startswith(prefix)]
        if not matches:
            return None
        if len(matches) > 1:
            raise KeyError(
                f"trace prefix {prefix!r} is ambiguous: "
                + ", ".join(sorted(matches)[:5]))
        return matches[0]

    def traces(self) -> List[Tuple[str, int, float]]:
        """Every stored trace as ``(trace_id, spans_bytes, mtime)``."""
        rows = []
        for dirpath, _, filenames in os.walk(self.path):
            for name in filenames:
                if not name.endswith(".jsonl"):
                    continue
                trace_id = name[:-len(".jsonl")]
                if not is_trace_id(trace_id):
                    continue
                target = os.path.join(dirpath, name)
                try:
                    info = os.stat(target)
                except OSError:
                    continue
                rows.append((trace_id, info.st_size, info.st_mtime))
        rows.sort(key=lambda row: (row[2], row[0]))
        return rows

    def stats(self) -> Dict[str, Any]:
        rows = self.traces()
        return {
            "path": self.path,
            "traces": len(rows),
            "total_bytes": sum(size for _, size, _ in rows),
        }

    def __repr__(self) -> str:
        return f"TraceStore({self.path!r})"
