"""Gate-error and coherence noise model.

Implements the paper's §V success-rate estimator:

    P(success) = prod_i p_{gate,i}^{n_i} * exp(-Dg/T1g - Dg/T2g)

where ``n_i`` counts i-qubit gates, ``p_{gate,i}`` is the i-qubit gate
fidelity, and ``Dg`` is the time spent in the ground state (taken as the
whole program duration; excited-state coherence is folded into the gate
fidelities, as the paper does).

Two named parameter sets ship with the library:

* :func:`NoiseModel.neutral_atom` — demonstrated NA fidelities (96.5%
  two-qubit per the paper's §VI fixup-budget calculation) with
  seconds-scale ground-state coherence;
* :func:`NoiseModel.superconducting_rome` — IBM-Rome-era constants
  (the paper pulled the live device on 2020-11-19; we embed representative
  values since the calibration service is unavailable offline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional


@dataclass(frozen=True)
class NoiseModel:
    """Per-arity gate fidelities plus ground-state coherence times."""

    name: str
    #: arity -> gate success probability (fidelity).
    gate_fidelity: Mapping[int, float]
    #: Ground-state T1 (seconds).
    t1_ground: float
    #: Ground-state T2 (seconds).
    t2_ground: float
    #: arity -> gate duration in seconds (used to turn depth into time).
    gate_time: Mapping[int, float]

    def __post_init__(self) -> None:
        for arity, fidelity in self.gate_fidelity.items():
            if not 0.0 <= fidelity <= 1.0:
                raise ValueError(
                    f"{self.name}: fidelity for arity {arity} out of range: {fidelity}"
                )
        if self.t1_ground <= 0 or self.t2_ground <= 0:
            raise ValueError(f"{self.name}: coherence times must be positive")

    # -- lookups ------------------------------------------------------------------

    def fidelity(self, arity: int) -> float:
        """Fidelity for an ``arity``-qubit gate.

        Arities above the largest configured one fall back to the largest
        (conservative for rare >3-qubit natives).
        """
        if arity in self.gate_fidelity:
            return self.gate_fidelity[arity]
        return self.gate_fidelity[max(self.gate_fidelity)]

    def duration_of(self, arity: int) -> float:
        if arity in self.gate_time:
            return self.gate_time[arity]
        return self.gate_time[max(self.gate_time)]

    @property
    def two_qubit_error(self) -> float:
        return 1.0 - self.fidelity(2)

    # -- the success estimator (§V) ---------------------------------------------

    def gate_success(self, counts_by_arity: Mapping[int, int]) -> float:
        """``prod_i p_i^{n_i}`` over the gate census."""
        log_p = 0.0
        for arity, count in counts_by_arity.items():
            fidelity = self.fidelity(arity)
            if fidelity == 0.0:
                return 0.0
            log_p += count * math.log(fidelity)
        return math.exp(log_p)

    def coherence_success(self, duration: float) -> float:
        """``exp(-D/T1g - D/T2g)`` for a program of ``duration`` seconds."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        return math.exp(-duration / self.t1_ground - duration / self.t2_ground)

    def program_success(
        self, counts_by_arity: Mapping[int, int], duration: float
    ) -> float:
        """Full §V estimate for one program execution."""
        return self.gate_success(counts_by_arity) * self.coherence_success(duration)

    # -- derived models ------------------------------------------------------------

    def with_two_qubit_error(self, error: float) -> "NoiseModel":
        """Rescale the whole technology to a new two-qubit error.

        This is how the paper sweeps Figs 7-8: the x-axis is two-qubit
        error and everything else improves in lock-step — other gate
        arities keep a fixed error ratio to the two-qubit gate, and
        coherence times scale inversely with the error (a 10x better gate
        comes with 10x longer coherence).  Without the coherence scaling a
        55 us-T1 device could never run a deep program no matter how good
        its gates, which is not the regime the paper's sweep explores.
        """
        if not 0.0 <= error < 1.0:
            raise ValueError(f"two-qubit error out of range: {error}")
        base_error = self.two_qubit_error
        if base_error == 0:
            raise ValueError("cannot rescale a noiseless model")
        ratio = error / base_error
        new_fidelity: Dict[int, float] = {}
        for arity, fidelity in self.gate_fidelity.items():
            scaled_error = min(1.0, (1.0 - fidelity) * ratio)
            new_fidelity[arity] = 1.0 - scaled_error
        return replace(
            self,
            name=f"{self.name}@err2={error:.2e}",
            gate_fidelity=new_fidelity,
            t1_ground=self.t1_ground / ratio,
            t2_ground=self.t2_ground / ratio,
        )

    # -- named parameter sets --------------------------------------------------------

    @classmethod
    def neutral_atom(cls, two_qubit_error: Optional[float] = None) -> "NoiseModel":
        """Demonstrated-NA parameters.

        Defaults: 1q 99.9%, 2q 96.5% (the paper's §VI working number),
        3q Toffoli 92% — better than the 6-CX decomposition product
        (0.965^6 ~= 0.807) as the paper argues in §IV-B.  Ground-state
        coherence is seconds-scale; gate times are sub-microsecond Rydberg
        pulses and microsecond Raman single-qubit gates.
        """
        model = cls(
            name="neutral-atom",
            gate_fidelity={1: 0.999, 2: 0.965, 3: 0.92},
            t1_ground=4.0,
            t2_ground=1.0,
            gate_time={1: 1.0e-6, 2: 0.4e-6, 3: 0.8e-6},
        )
        if two_qubit_error is not None:
            model = model.with_two_qubit_error(two_qubit_error)
        return model

    @classmethod
    def trapped_ion(cls, two_qubit_error: Optional[float] = None) -> "NoiseModel":
        """Trapped-ion-era parameters (the paper's Discussion comparator).

        High fidelities (1q ~99.9%, 2q ~97-99% on ~11-qubit devices) and
        very long coherence, but slow gates: two-qubit Molmer-Sorensen
        interactions take hundreds of microseconds, which is what makes
        the serialization of a single shared phonon bus costly.
        """
        model = cls(
            name="trapped-ion",
            gate_fidelity={1: 0.999, 2: 0.975},
            t1_ground=10.0,
            t2_ground=1.0,
            gate_time={1: 10e-6, 2: 200e-6},
        )
        if two_qubit_error is not None:
            model = model.with_two_qubit_error(two_qubit_error)
        return model

    @classmethod
    def superconducting_rome(
        cls, two_qubit_error: Optional[float] = None
    ) -> "NoiseModel":
        """IBM-Rome-era parameters (CX ~1.2e-2, 1q ~4e-4, T1/T2 ~tens of us).

        Substitution note (DESIGN.md §1): the paper read the live device on
        2020-11-19; these are representative constants for that calibration
        era.  No 3-qubit entry — SC hardware decomposes Toffolis.
        """
        model = cls(
            name="superconducting-rome",
            gate_fidelity={1: 1.0 - 4.0e-4, 2: 1.0 - 1.2e-2},
            t1_ground=55e-6,
            t2_ground=65e-6,
            gate_time={1: 35e-9, 2: 300e-9},
        )
        if two_qubit_error is not None:
            model = model.with_two_qubit_error(two_qubit_error)
        return model


def success_ratio_to_random(success_rate: float, num_qubits: int) -> float:
    """How far a program's outcome distribution is from fully random.

    The paper's Fig 7 frames viability as "divergence from the all-noise
    outcome"; this helper gives the margin of the §V estimate over the
    uniform-outcome probability ``2^-n``.
    """
    random_rate = 2.0 ** (-num_qubits)
    return success_rate / random_rate
