"""Wall-clock timing model for shot-level execution (§VI).

Atom-loss coping is a *time* optimization: the array reload is ~seconds,
fluorescence imaging ~6 ms, a hardware virtual-remap table update ~40 ns,
and recompilation is software-speed.  This model carries those constants
so the loss runner can account total overhead for a batch of shots
(Figs 12 and 14).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional


@dataclass(frozen=True)
class TimingModel:
    """Durations, in seconds, of every action in the shot loop."""

    #: Full array reload (paper: "on the order of one second"; the Fig 14
    #: timeline uses 0.3 s, which we adopt as the default).
    reload_time: float = 0.3
    #: Fluorescence imaging to detect atom loss after each shot (~6 ms).
    fluorescence_time: float = 6e-3
    #: Hardware lookup-table update for virtual remapping (~40 ns, cited
    #: from DRAM remapping literature).
    remap_time: float = 40e-9
    #: Software cost of planning a reroute fixup (path search; microseconds
    #: once the lookup structures exist — the paper's Fig 14 shows the
    #: "circuit fixup" band at the tens-of-microseconds scale).
    reroute_fixup_time: float = 61e-6
    #: arity -> gate duration in seconds, for converting a schedule to run time.
    gate_time: Mapping[int, float] = None  # type: ignore[assignment]
    #: Wall-clock cost of one full recompilation.  ``None`` means "measure
    #: the actual compiler" (the honest reproduction of the paper's claim
    #: that recompilation exceeds reload time).
    recompile_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.gate_time is None:
            object.__setattr__(self, "gate_time", {1: 1.0e-6, 2: 0.4e-6, 3: 0.8e-6})
        for name in ("reload_time", "fluorescence_time", "remap_time",
                     "reroute_fixup_time"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def gate_duration(self, arity: int) -> float:
        if arity in self.gate_time:
            return self.gate_time[arity]
        return self.gate_time[max(self.gate_time)]

    def swap_duration(self) -> float:
        """A routing SWAP is three two-qubit gates."""
        return 3.0 * self.gate_duration(2)

    def with_reload_time(self, reload_time: float) -> "TimingModel":
        return replace(self, reload_time=reload_time)

    @classmethod
    def paper_defaults(cls) -> "TimingModel":
        """The constants used throughout §VI (reload 0.3 s, fluorescence 6 ms)."""
        return cls()
