"""2D grid of optical-tweezer sites.

The paper models the device as a regular square 2D array of trapped atoms
(§III-A).  A :class:`Grid` is the immutable geometry — site indices, their
(row, col) positions, Euclidean distances — while :class:`SiteSet`
(in :mod:`repro.hardware.topology`) layers the mutable occupancy (atom
loss) on top.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Tuple

Position = Tuple[int, int]


class _GridCaches:
    """Derived-geometry caches shared by all grids of one shape."""

    __slots__ = (
        "distance_rows",
        "neighbor_tables",
        "sorted_neighbor_tables",
        "center_order",
        "positions",
    )

    def __init__(self) -> None:
        self.distance_rows: Optional[List[List[float]]] = None
        self.neighbor_tables: Dict[int, List[Tuple[int, ...]]] = {}
        self.sorted_neighbor_tables: Dict[int, List[Tuple[int, ...]]] = {}
        self.center_order: Optional[List[int]] = None
        self.positions: Optional[List[Position]] = None


_GRID_CACHES: Dict[Tuple[int, int], _GridCaches] = {}


class Grid:
    """A ``rows x cols`` unit-pitch grid of sites.

    Sites are indexed row-major: site ``r * cols + c`` sits at ``(r, c)``.
    """

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.num_sites = rows * cols
        # Geometry caches are keyed by (rows, cols) and shared process-wide
        # so the many Grid instances a sweep materializes (one per
        # unpickled task payload / topology copy) reuse one distance table
        # instead of rebuilding it per instance.
        self._caches = _GRID_CACHES.setdefault((rows, cols), _GridCaches())

    @classmethod
    def square(cls, side: int) -> "Grid":
        return cls(side, side)

    # -- geometry -------------------------------------------------------------

    def position(self, site: int) -> Position:
        if not 0 <= site < self.num_sites:
            raise IndexError(f"site {site} outside grid of {self.num_sites}")
        return self.positions_list()[site]

    def positions_list(self) -> List[Position]:
        """Per-site ``(row, col)`` positions, cached (index = site)."""
        caches = self._caches
        if caches.positions is None:
            cols = self.cols
            caches.positions = [divmod(s, cols) for s in range(self.num_sites)]
        return caches.positions

    def site_at(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"position ({row}, {col}) outside grid")
        return row * self.cols + col

    def in_bounds(self, row: int, col: int) -> bool:
        return 0 <= row < self.rows and 0 <= col < self.cols

    def sites(self) -> Iterator[int]:
        return iter(range(self.num_sites))

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two sites (unit pitch)."""
        if 0 <= a < self.num_sites and 0 <= b < self.num_sites:
            return self.distance_rows()[a][b]
        ra, ca = divmod(a, self.cols)
        rb, cb = divmod(b, self.cols)
        return math.hypot(ra - rb, ca - cb)

    def distance_rows(self) -> List[List[float]]:
        """The full pairwise distance table, ``rows()[a][b] == distance(a, b)``.

        Hot loops (routing, placement scoring) index rows directly instead
        of paying a method call per pair.  Entries are produced by the same
        ``math.hypot`` calls as :meth:`distance`, so values are
        bit-identical to computing distances on the fly.
        """
        caches = self._caches
        if caches.distance_rows is None:
            positions = self.positions_list()
            hypot = math.hypot
            caches.distance_rows = [
                [hypot(ra - rb, ca - cb) for rb, cb in positions]
                for ra, ca in positions
            ]
        return caches.distance_rows

    def max_distance(self) -> float:
        """Corner-to-corner distance — the MID giving all-to-all connectivity.

        For the paper's 10x10 device this is ``hypot(9, 9) ~= 12.73``,
        the "13" of its sweeps.
        """
        return math.hypot(self.rows - 1, self.cols - 1)

    def center_site(self) -> int:
        return self.site_at(self.rows // 2, self.cols // 2)

    def sites_by_center_distance(self) -> List[int]:
        """All sites ordered by distance from the grid's geometric center.

        Used by the initial mapper, which grows the placement outward from
        the device center (§III-A).
        """
        caches = self._caches
        if caches.center_order is None:
            center = ((self.rows - 1) / 2.0, (self.cols - 1) / 2.0)
            def key(site: int) -> Tuple[float, int]:
                r, c = divmod(site, self.cols)
                return (math.hypot(r - center[0], c - center[1]), site)
            caches.center_order = sorted(range(self.num_sites), key=key)
        return list(caches.center_order)

    # -- interaction neighborhoods ---------------------------------------------

    def neighbor_offsets(self, max_distance: float) -> Tuple[Position, ...]:
        """All nonzero ``(dr, dc)`` with Euclidean norm <= ``max_distance``."""
        return _offsets_within(round(max_distance * 1e9))

    def neighbors(self, site: int, max_distance: float) -> List[int]:
        """Sites within interaction range of ``site`` (excluding itself)."""
        return list(self.neighbor_table(max_distance)[site])

    def neighbor_table(self, max_distance: float) -> List[Tuple[int, ...]]:
        """Per-site neighbor tuples (nearest-first offset order), cached.

        The geometry never changes, so the table is computed once per
        (grid, max_distance) and shared by every topology query.
        """
        key = round(max_distance * 1e9)
        table = self._caches.neighbor_tables.get(key)
        if table is None:
            offsets = _offsets_within(key)
            table = []
            for site in range(self.num_sites):
                row, col = divmod(site, self.cols)
                result = []
                for dr, dc in offsets:
                    r, c = row + dr, col + dc
                    if 0 <= r < self.rows and 0 <= c < self.cols:
                        result.append(r * self.cols + c)
                table.append(tuple(result))
            self._caches.neighbor_tables[key] = table
        return table

    def sorted_neighbor_table(self, max_distance: float) -> List[Tuple[int, ...]]:
        """Like :meth:`neighbor_table` but each tuple sorted by site index
        (the order BFS path searches consume)."""
        key = round(max_distance * 1e9)
        table = self._caches.sorted_neighbor_tables.get(key)
        if table is None:
            table = [
                tuple(sorted(nbrs)) for nbrs in self.neighbor_table(max_distance)
            ]
            self._caches.sorted_neighbor_tables[key] = table
        return table

    def __repr__(self) -> str:
        return f"Grid({self.rows}x{self.cols})"

    def __getstate__(self) -> Dict:
        # The geometry caches are derived data; keep pickles (compile
        # cache artifacts, spawn-pool task payloads) small.
        return {"rows": self.rows, "cols": self.cols}

    def __setstate__(self, state: Dict) -> None:
        self.__init__(state["rows"], state["cols"])

    def __eq__(self, other) -> bool:
        if not isinstance(other, Grid):
            return NotImplemented
        return self.rows == other.rows and self.cols == other.cols

    def __hash__(self) -> int:
        return hash((self.rows, self.cols))


@lru_cache(maxsize=128)
def _offsets_within(scaled_distance: int) -> Tuple[Position, ...]:
    """Offsets with norm <= scaled_distance / 1e9, cached across grids."""
    max_distance = scaled_distance / 1e9
    limit = int(math.floor(max_distance + 1e-9))
    offsets = []
    for dr in range(-limit, limit + 1):
        for dc in range(-limit, limit + 1):
            if dr == 0 and dc == 0:
                continue
            if math.hypot(dr, dc) <= max_distance + 1e-9:
                offsets.append((dr, dc))
    # Sort nearest-first so greedy consumers prefer short swaps.
    offsets.sort(key=lambda o: (math.hypot(o[0], o[1]), o))
    return tuple(offsets)
