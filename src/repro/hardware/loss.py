"""Stochastic atom-loss model (§VI).

Two loss processes:

* **Vacuum-limited lifetime** — a background-gas collision ejects the atom.
  Probability ~0.0068 per qubit over the course of one program, uniform
  across all atoms in the array (the paper cites 2000-shot imaging of Sr
  tweezers).
* **Readout loss** — measurement is lossy.  The default "lossless" imaging
  technique still loses ~2% of *measured* atoms per shot; the destructive
  ejection-based readout loses ~50%.

An ``improvement_factor`` scales both probabilities down (Fig 13 sweeps it
from 0.1x to 100x better than today).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Set

from repro.utils.rng import RngLike, ensure_rng

#: Paper constants.
VACUUM_LOSS_PROBABILITY = 0.0068
LOSSLESS_READOUT_LOSS = 0.02
EJECTION_READOUT_LOSS = 0.50


@dataclass(frozen=True)
class LossModel:
    """Per-shot atom loss probabilities."""

    #: Probability a given atom is lost to a vacuum collision during one shot.
    vacuum_loss: float = VACUUM_LOSS_PROBABILITY
    #: Probability a *measured* atom is lost during readout of one shot.
    measurement_loss: float = LOSSLESS_READOUT_LOSS
    #: Technology-improvement multiplier: 10.0 means 10x lower loss rates.
    improvement_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.vacuum_loss <= 1.0:
            raise ValueError(f"vacuum_loss out of range: {self.vacuum_loss}")
        if not 0.0 <= self.measurement_loss <= 1.0:
            raise ValueError(f"measurement_loss out of range: {self.measurement_loss}")
        if self.improvement_factor <= 0:
            raise ValueError("improvement_factor must be positive")

    @classmethod
    def lossless_readout(cls, improvement_factor: float = 1.0) -> "LossModel":
        """The paper's default: 2% measured-atom loss + vacuum loss."""
        return cls(improvement_factor=improvement_factor)

    @classmethod
    def ejection_readout(cls, improvement_factor: float = 1.0) -> "LossModel":
        """Destructive state-selective readout: ~50% measured-atom loss."""
        return cls(
            measurement_loss=EJECTION_READOUT_LOSS,
            improvement_factor=improvement_factor,
        )

    @classmethod
    def none(cls) -> "LossModel":
        return cls(vacuum_loss=0.0, measurement_loss=0.0)

    def improved(self, factor: float) -> "LossModel":
        return replace(self, improvement_factor=self.improvement_factor * factor)

    # -- effective rates -----------------------------------------------------------

    @property
    def effective_vacuum_loss(self) -> float:
        return min(1.0, self.vacuum_loss / self.improvement_factor)

    @property
    def effective_measurement_loss(self) -> float:
        return min(1.0, self.measurement_loss / self.improvement_factor)

    # -- sampling ---------------------------------------------------------------------

    def sample_shot_losses(
        self,
        all_sites: Iterable[int],
        measured_sites: Iterable[int],
        rng: RngLike = None,
    ) -> Set[int]:
        """Sites whose atoms are lost during one shot.

        Vacuum loss applies to every occupied site in the array; readout
        loss additionally applies to measured sites.
        """
        generator = ensure_rng(rng)
        lost: Set[int] = set()
        p_vac = self.effective_vacuum_loss
        p_meas = self.effective_measurement_loss
        measured = set(measured_sites)
        for site in all_sites:
            p = p_vac
            if site in measured:
                p = 1.0 - (1.0 - p) * (1.0 - p_meas)
            if p > 0 and generator.random() < p:
                lost.add(site)
        return lost

    def expected_losses_per_shot(
        self, num_sites: int, num_measured: int
    ) -> float:
        """Mean number of atoms lost per shot."""
        p_vac = self.effective_vacuum_loss
        p_meas = self.effective_measurement_loss
        unmeasured = num_sites - num_measured
        combined = 1.0 - (1.0 - p_vac) * (1.0 - p_meas)
        return unmeasured * p_vac + num_measured * combined
