"""Stochastic atom-loss model (§VI).

Two loss processes:

* **Vacuum-limited lifetime** — a background-gas collision ejects the atom.
  Probability ~0.0068 per qubit over the course of one program, uniform
  across all atoms in the array (the paper cites 2000-shot imaging of Sr
  tweezers).
* **Readout loss** — measurement is lossy.  The default "lossless" imaging
  technique still loses ~2% of *measured* atoms per shot; the destructive
  ejection-based readout loses ~50%.

An ``improvement_factor`` scales both probabilities down (Fig 13 sweeps it
from 0.1x to 100x better than today).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Set, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

#: Paper constants.
VACUUM_LOSS_PROBABILITY = 0.0068
LOSSLESS_READOUT_LOSS = 0.02
EJECTION_READOUT_LOSS = 0.50


@dataclass(frozen=True)
class LossModel:
    """Per-shot atom loss probabilities."""

    #: Probability a given atom is lost to a vacuum collision during one shot.
    vacuum_loss: float = VACUUM_LOSS_PROBABILITY
    #: Probability a *measured* atom is lost during readout of one shot.
    measurement_loss: float = LOSSLESS_READOUT_LOSS
    #: Technology-improvement multiplier: 10.0 means 10x lower loss rates.
    improvement_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.vacuum_loss <= 1.0:
            raise ValueError(f"vacuum_loss out of range: {self.vacuum_loss}")
        if not 0.0 <= self.measurement_loss <= 1.0:
            raise ValueError(f"measurement_loss out of range: {self.measurement_loss}")
        if self.improvement_factor <= 0:
            raise ValueError("improvement_factor must be positive")

    @classmethod
    def lossless_readout(cls, improvement_factor: float = 1.0) -> "LossModel":
        """The paper's default: 2% measured-atom loss + vacuum loss."""
        return cls(improvement_factor=improvement_factor)

    @classmethod
    def ejection_readout(cls, improvement_factor: float = 1.0) -> "LossModel":
        """Destructive state-selective readout: ~50% measured-atom loss."""
        return cls(
            measurement_loss=EJECTION_READOUT_LOSS,
            improvement_factor=improvement_factor,
        )

    @classmethod
    def none(cls) -> "LossModel":
        return cls(vacuum_loss=0.0, measurement_loss=0.0)

    def improved(self, factor: float) -> "LossModel":
        return replace(self, improvement_factor=self.improvement_factor * factor)

    # -- effective rates -----------------------------------------------------------

    @property
    def effective_vacuum_loss(self) -> float:
        return min(1.0, self.vacuum_loss / self.improvement_factor)

    @property
    def effective_measurement_loss(self) -> float:
        return min(1.0, self.measurement_loss / self.improvement_factor)

    # -- sampling ---------------------------------------------------------------------

    def sample_shot_losses(
        self,
        all_sites: Iterable[int],
        measured_sites: Iterable[int],
        rng: RngLike = None,
    ) -> Set[int]:
        """Sites whose atoms are lost during one shot.

        Vacuum loss applies to every occupied site in the array; readout
        loss additionally applies to measured sites.

        The uniform draws are batched into one ``Generator.random(k)``
        call over the ``k`` sites with nonzero loss probability, in site
        iteration order.  ``random(k)`` consumes the generator exactly
        like ``k`` scalar ``random()`` calls, so results and the
        generator's end state are bit-identical to the historical scalar
        loop (which likewise skipped zero-probability sites).
        """
        generator = ensure_rng(rng)
        draw_sites, probs = _draw_plan(self, all_sites, measured_sites)
        if not draw_sites:
            return set()
        draws = generator.random(len(draw_sites))
        return {draw_sites[i] for i in np.flatnonzero(draws < probs)}

    def expected_losses_per_shot(
        self, num_sites: int, num_measured: int
    ) -> float:
        """Mean number of atoms lost per shot."""
        if num_sites < 0:
            raise ValueError(f"num_sites must be non-negative, got {num_sites}")
        if not 0 <= num_measured <= num_sites:
            raise ValueError(
                f"num_measured must be between 0 and num_sites="
                f"{num_sites}, got {num_measured}"
            )
        p_vac = self.effective_vacuum_loss
        p_meas = self.effective_measurement_loss
        unmeasured = num_sites - num_measured
        combined = 1.0 - (1.0 - p_vac) * (1.0 - p_meas)
        return unmeasured * p_vac + num_measured * combined


def _draw_plan(
    model: LossModel,
    all_sites: Iterable[int],
    measured_sites: Iterable[int],
) -> Tuple[Tuple[int, ...], Optional[np.ndarray]]:
    """(sites that draw, their loss probabilities) for one shot.

    Only sites with nonzero loss probability draw, in ``all_sites``
    iteration order — the exact per-site draw sequence of the scalar
    sampling loop.
    """
    sites = tuple(all_sites)
    measured = (
        measured_sites
        if isinstance(measured_sites, (set, frozenset))
        else set(measured_sites)
    )
    p_vac = model.effective_vacuum_loss
    p_meas = model.effective_measurement_loss
    combined = 1.0 - (1.0 - p_vac) * (1.0 - p_meas)
    if p_vac > 0.0:
        # Every site draws: unmeasured at p_vac, measured at the combined rate.
        probs = np.fromiter(
            (combined if site in measured else p_vac for site in sites),
            dtype=np.float64,
            count=len(sites),
        )
        return sites, probs
    if p_meas > 0.0:
        # Only measured sites have nonzero probability (combined == p_meas).
        draw_sites = tuple(site for site in sites if site in measured)
        return draw_sites, np.full(len(draw_sites), combined)
    return (), None


class ShotLossSampler:
    """Repeated per-shot loss sampling bound to one generator.

    Results are bit-identical to calling
    :meth:`LossModel.sample_shot_losses` once per shot on the same
    generator: the per-(site sets) probability vector is cached, and the
    uniform doubles are consumed from the same stream in the same order.

    With ``buffered=True`` the uniforms are drawn in blocks spanning
    shots.  ``Generator.random(n)`` calls concatenate exactly like scalar
    draws, so the *consumed* doubles — and every sampled loss set — stay
    identical; the generator is merely advanced past doubles not yet
    consumed when the sampler is dropped.  Only enable buffering when the
    caller owns the generator and never reads it after the batch (e.g. a
    runner seeded from an int).
    """

    def __init__(
        self,
        loss_model: LossModel,
        generator: np.random.Generator,
        buffered: bool = False,
        block: int = 2048,
    ):
        if block <= 0:
            raise ValueError(f"block must be positive, got {block}")
        self.loss_model = loss_model
        #: Duck-typed loss models (test stubs with a ``sample_shot_losses``
        #: method) bypass the vectorized plan and are called per shot.
        self._native = isinstance(loss_model, LossModel)
        self.generator = generator
        self._buffered = bool(buffered)
        self._block = int(block)
        self._buffer = np.empty(0)
        self._pos = 0
        self._key: Optional[Tuple[Tuple[int, ...], frozenset]] = None
        self._draw_sites: Tuple[int, ...] = ()
        self._probs: Optional[np.ndarray] = None

    def sample(
        self, all_sites: Iterable[int], measured_sites: Iterable[int]
    ) -> Set[int]:
        """Losses for one shot (same contract as ``sample_shot_losses``)."""
        if not self._native:
            return set(
                self.loss_model.sample_shot_losses(
                    all_sites, measured_sites, rng=self.generator
                )
            )
        key = (
            tuple(all_sites),
            measured_sites
            if isinstance(measured_sites, frozenset)
            else frozenset(measured_sites),
        )
        if key != self._key:
            self._draw_sites, self._probs = _draw_plan(
                self.loss_model, key[0], key[1]
            )
            self._key = key
        draw_sites = self._draw_sites
        if not draw_sites:
            return set()
        draws = self._take(len(draw_sites))
        return {draw_sites[i] for i in np.flatnonzero(draws < self._probs)}

    def _take(self, count: int) -> np.ndarray:
        """The next ``count`` uniforms from the generator's double stream."""
        if not self._buffered:
            return self.generator.random(count)
        buffer = self._buffer
        pos = self._pos
        available = len(buffer) - pos
        if available >= count:
            self._pos = pos + count
            return buffer[pos:self._pos]
        needed = count - available
        fresh = self.generator.random(max(needed, self._block))
        head = buffer[pos:]
        self._buffer = fresh
        self._pos = needed
        if available:
            return np.concatenate((head, fresh[:needed]))
        return fresh[:needed]
