"""Occupancy-aware device topology.

Combines a :class:`~repro.hardware.grid.Grid` with the set of sites that
still hold an atom.  Atom loss (§VI) punches holes in the occupancy; the
compiler and the loss-coping strategies both query connectivity through
this class so "recompile on the sparser grid" is just "compile on a
Topology with more holes".
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.hardware.grid import Grid


class Topology:
    """A grid plus the set of lost (empty) sites and the interaction range."""

    def __init__(
        self,
        grid: Grid,
        max_interaction_distance: float,
        lost_sites: Optional[Iterable[int]] = None,
    ):
        if max_interaction_distance < 1.0:
            raise ValueError(
                "max interaction distance below 1 leaves the grid fully "
                f"disconnected (got {max_interaction_distance})"
            )
        self.grid = grid
        self.max_interaction_distance = float(max_interaction_distance)
        self._lost: Set[int] = set(lost_sites or ())
        for site in self._lost:
            if not 0 <= site < grid.num_sites:
                raise IndexError(f"lost site {site} outside grid")
        #: (source, target) -> shortest path, valid for the current hole
        #: pattern only (cleared on every occupancy change).  Routing asks
        #: for the same blocked pair timestep after timestep.
        self._path_cache: Dict[Tuple[int, int], Optional[List[int]]] = {}

    @classmethod
    def square(
        cls, side: int, max_interaction_distance: float
    ) -> "Topology":
        return cls(Grid.square(side), max_interaction_distance)

    def copy(self) -> "Topology":
        return Topology(self.grid, self.max_interaction_distance, self._lost)

    def with_interaction_distance(self, distance: float) -> "Topology":
        """Same grid and holes, different MID (used by compile-small)."""
        return Topology(self.grid, distance, self._lost)

    # -- occupancy ---------------------------------------------------------------

    @property
    def lost_sites(self) -> FrozenSet[int]:
        return frozenset(self._lost)

    @property
    def lost_view(self) -> Set[int]:
        """The live set of lost sites — read-only by contract.

        Hot loops (routing candidate scans) test membership against this
        set directly instead of paying a frozenset copy per query.
        """
        return self._lost

    def active_sites(self) -> List[int]:
        if not self._lost:
            return list(range(self.grid.num_sites))
        return [s for s in range(self.grid.num_sites) if s not in self._lost]

    @property
    def num_active(self) -> int:
        return self.grid.num_sites - len(self._lost)

    def is_active(self, site: int) -> bool:
        return 0 <= site < self.grid.num_sites and site not in self._lost

    def remove_atom(self, site: int) -> None:
        """Record loss of the atom at ``site``."""
        if site in self._lost:
            raise ValueError(f"site {site} already lost")
        if not 0 <= site < self.grid.num_sites:
            raise IndexError(f"site {site} outside grid")
        self._lost.add(site)
        self._path_cache.clear()

    def reload(self) -> None:
        """Refill every site (a full array reload)."""
        self._lost.clear()
        self._path_cache.clear()

    # -- interaction queries --------------------------------------------------

    def distance(self, a: int, b: int) -> float:
        return self.grid.distance(a, b)

    def can_interact(self, sites: Iterable[int]) -> bool:
        """Whether all (active) sites are pairwise within the MID."""
        if not isinstance(sites, (tuple, list)):
            sites = tuple(sites)
        n = len(sites)
        num_sites = self.grid.num_sites
        lost = self._lost
        limit = self.max_interaction_distance + 1e-9
        if n == 2:
            a, b = sites
            return (
                0 <= a < num_sites and a not in lost
                and 0 <= b < num_sites and b not in lost
                and self.grid.distance_rows()[a][b] <= limit
            )
        if n == 3:
            a, b, c = sites
            if not (
                0 <= a < num_sites and a not in lost
                and 0 <= b < num_sites and b not in lost
                and 0 <= c < num_sites and c not in lost
            ):
                return False
            rows = self.grid.distance_rows()
            row_a = rows[a]
            return (
                row_a[b] <= limit
                and row_a[c] <= limit
                and rows[b][c] <= limit
            )
        for site in sites:
            if not self.is_active(site):
                return False
        rows = self.grid.distance_rows()
        for i in range(n):
            row = rows[sites[i]]
            for j in range(i + 1, n):
                if row[sites[j]] > limit:
                    return False
        return True

    def neighbors(self, site: int) -> List[int]:
        """Active sites within interaction range of ``site``."""
        table = self.grid.neighbor_table(self.max_interaction_distance)
        if not self._lost:
            return list(table[site])
        lost = self._lost
        return [s for s in table[site] if s not in lost]

    def sorted_neighbors(self, site: int) -> List[int]:
        """Active neighbors of ``site`` in ascending site order (the order
        deterministic BFS walks consume)."""
        table = self.grid.sorted_neighbor_table(self.max_interaction_distance)
        if not self._lost:
            return list(table[site])
        lost = self._lost
        return [s for s in table[site] if s not in lost]

    # -- graph queries ------------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the active-site interaction graph is one component."""
        active = self.active_sites()
        if not active:
            return True
        seen = {active[0]}
        queue = deque([active[0]])
        while queue:
            site = queue.popleft()
            for nbr in self.neighbors(site):
                if nbr not in seen:
                    seen.add(nbr)
                    queue.append(nbr)
        return len(seen) == len(active)

    def hop_distances_from(self, source: int) -> Dict[int, int]:
        """BFS hop counts from ``source`` over the active interaction graph."""
        if not self.is_active(source):
            raise ValueError(f"source site {source} is not active")
        dist = {source: 0}
        queue = deque([source])
        while queue:
            site = queue.popleft()
            for nbr in self.neighbors(site):
                if nbr not in dist:
                    dist[nbr] = dist[site] + 1
                    queue.append(nbr)
        return dist

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """Shortest active-site path (by hops) from ``source`` to ``target``.

        Returns ``None`` when disconnected.  Ties break toward smaller site
        index for determinism.
        """
        if not (self.is_active(source) and self.is_active(target)):
            return None
        if source == target:
            return [source]
        key = (source, target)
        if key in self._path_cache:
            cached = self._path_cache[key]
            return None if cached is None else list(cached)
        table = self.grid.sorted_neighbor_table(self.max_interaction_distance)
        lost = self._lost
        parent: Dict[int, int] = {source: source}
        queue = deque([source])
        result: Optional[List[int]] = None
        while queue:
            site = queue.popleft()
            for nbr in table[site]:
                if nbr in lost or nbr in parent:
                    continue
                parent[nbr] = site
                if nbr == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    result = list(reversed(path))
                    queue.clear()
                    break
                queue.append(nbr)
        self._path_cache[key] = None if result is None else list(result)
        return result

    def __repr__(self) -> str:
        return (
            f"Topology({self.grid!r}, MID={self.max_interaction_distance}, "
            f"lost={len(self._lost)})"
        )
