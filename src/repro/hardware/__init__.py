"""Neutral-atom hardware models: geometry, zones, noise, timing, loss."""

from repro.hardware.grid import Grid
from repro.hardware.loss import LossModel
from repro.hardware.noise import NoiseModel
from repro.hardware.restriction import (
    RestrictionModel,
    Zone,
    half_distance,
    no_restriction,
)
from repro.hardware.timing import TimingModel
from repro.hardware.topology import Topology

__all__ = [
    "Grid",
    "LossModel",
    "NoiseModel",
    "RestrictionModel",
    "TimingModel",
    "Topology",
    "Zone",
    "half_distance",
    "no_restriction",
]
