"""Restriction zones around Rydberg interactions.

A multiqubit gate whose operands span a maximum pairwise distance ``d``
blocks every qubit closer than ``f(d)`` to any of its operands (§IV-A).
The paper — and our default — uses ``f(d) = d / 2``.  Two gates may run in
the same timestep only if their zones do not intersect.

The zone of a k-qubit gate is the union of open disks of radius ``f(d)``
centered on each operand.  Single-qubit gates get radius 0: they conflict
only when they sit inside another gate's zone (or share a qubit, which the
DAG already serializes).

The paper also notes zones can be *artificially extended* to suppress
crosstalk; ``zone_scale > 1`` models that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.utils.geometry import (
    EPS,
    Point,
    euclidean,
    max_pairwise_distance,
)

RadiusFunction = Callable[[float], float]


def half_distance(d: float) -> float:
    """The paper's restriction radius, ``f(d) = d / 2``."""
    return d / 2.0


def full_distance(d: float) -> float:
    """A harsher alternative, ``f(d) = d`` (ablation)."""
    return d


def no_restriction(d: float) -> float:
    """Zone-free execution (the idealized baseline of Fig 5)."""
    return 0.0


def global_restriction(d: float) -> float:
    """A device-wide zone for any entangling interaction.

    Models a single-trap trapped-ion machine (the paper's Discussion):
    the shared phonon bus gives all-to-all connectivity but only one
    entangling gate can run at a time, and single-qubit gates elsewhere
    are blocked while it does.  Single-qubit gates (span 0) keep a zero
    zone so they may still pair with each other.
    """
    if d <= 0.0:
        return 0.0
    return 1e9


RADIUS_FUNCTIONS = {
    "half": half_distance,
    "full": full_distance,
    "none": no_restriction,
    "global": global_restriction,
}


@dataclass(frozen=True)
class Zone:
    """The restriction zone of one scheduled gate."""

    centers: Tuple[Point, ...]
    radius: float

    def covers(self, point: Point) -> bool:
        """Whether ``point`` is blocked by this zone.

        Operand sites themselves are always "covered" in the sense that no
        other gate may touch them, but that is enforced by the shared-qubit
        check; this predicate tests the disks only.
        """
        return any(euclidean(point, c) < self.radius - EPS for c in self.centers)

    def intersects(self, other: "Zone") -> bool:
        """Open-disk union intersection test between two zones."""
        r1 = self.radius
        r2 = other.radius
        overlap_limit = r1 + r2 - EPS
        hyp = math.hypot
        for x1, y1 in self.centers:
            for c2 in other.centers:
                dist = hyp(x1 - c2[0], y1 - c2[1])
                if dist < overlap_limit:
                    return True
                # A radius-0 zone (single-qubit gate) still conflicts when
                # its center sits inside the other zone's disks.
                if r1 <= EPS and dist < r2 - EPS:
                    return True
                if r2 <= EPS and dist < r1 - EPS:
                    return True
        return False


class RestrictionModel:
    """Builds zones and answers parallelism queries for one device config."""

    def __init__(
        self,
        radius_function: RadiusFunction = half_distance,
        zone_scale: float = 1.0,
    ):
        if isinstance(radius_function, str):
            radius_function = RADIUS_FUNCTIONS[radius_function]
        if zone_scale < 0:
            raise ValueError("zone_scale must be non-negative")
        self.radius_function = radius_function
        self.zone_scale = zone_scale

    @property
    def disabled(self) -> bool:
        """Whether this model never blocks anything (f == 0 everywhere)."""
        return self.radius_function is no_restriction or self.zone_scale == 0.0

    def zone_for(self, positions: Sequence[Point]) -> Zone:
        """Zone of a gate whose operands sit at ``positions``."""
        return self.zone_for_span(positions, max_pairwise_distance(positions))

    def zone_for_span(self, positions: Sequence[Point], span: float) -> Zone:
        """Zone of a gate whose max pairwise operand distance is already
        known (the scheduler reads it off the grid's distance table)."""
        radius = self.radius_function(span) * self.zone_scale
        return Zone(tuple(positions), radius)

    def conflict(self, a: Sequence[Point], b: Sequence[Point]) -> bool:
        """Whether gates at operand positions ``a`` and ``b`` may NOT run
        in parallel.

        Sharing a site is always a conflict; otherwise it is a zone
        intersection test (skipped entirely when zones are disabled).
        """
        shared = set(a) & set(b)
        if shared:
            return True
        if self.disabled:
            return False
        return self.zone_for(a).intersects(self.zone_for(b))


def max_parallel_gates(
    model: RestrictionModel, gates_positions: List[Sequence[Point]]
) -> List[int]:
    """Greedy maximal conflict-free subset of gates (by list order).

    The scheduler uses this shape of greedy selection; exposed here for
    direct testing of the zone semantics against the paper's Fig 1 example.
    """
    chosen: List[int] = []
    zones: List[Zone] = []
    for idx, positions in enumerate(gates_positions):
        zone = model.zone_for(positions)
        sites_taken = {p for i in chosen for p in gates_positions[i]}
        if set(positions) & sites_taken:
            continue
        if any(zone.intersects(z) for z in zones):
            continue
        chosen.append(idx)
        zones.append(zone)
    return chosen
