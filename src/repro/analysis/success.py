"""Success-rate analysis (Figs 7-8).

Fig 7: for fixed-size programs, sweep the two-qubit physical error rate
and plot the program's predicted error rate (1 - success).  The headline
is *where each architecture diverges from the all-noise outcome* — NA
diverges at higher physical error because its compiled programs have far
fewer two-qubit gate opportunities.

Fig 8: invert the question — at each physical error rate, what is the
largest program size that still succeeds with probability >= 2/3?
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.architectures import Architecture, compiled_metrics
from repro.analysis.metrics import ProgramMetrics
from repro.api.serialize import serializable
from repro.core.errors import CompilationError
from repro.hardware.noise import NoiseModel
from repro.workloads.registry import get_benchmark

#: Fig 8's success threshold.
SIZE_THRESHOLD = 2.0 / 3.0


def error_sweep(points: int = 17) -> List[float]:
    """The paper's two-qubit error sweep: 1e-5 .. 1e-1, log-spaced."""
    return list(np.logspace(-5, -1, points))


def success_curve(
    metrics: ProgramMetrics,
    arch: Architecture,
    errors: Sequence[float],
) -> List[Tuple[float, float]]:
    """(two-qubit error, program error rate) pairs for one program."""
    curve = []
    for error in errors:
        noise = arch.noise(two_qubit_error=error)
        curve.append((error, metrics.error_rate(noise)))
    return curve


@serializable
@dataclass
class SuccessComparison:
    """Fig 7 data for one benchmark: NA and SC curves side by side."""

    benchmark: str
    num_qubits_na: int
    num_qubits_sc: int
    na_curve: List[Tuple[float, float]]
    sc_curve: List[Tuple[float, float]]

    def divergence_error(self, margin: float = 0.05) -> Tuple[float, float]:
        """Largest physical error at which each curve's program error drops
        below ``1 - margin`` (i.e. diverges from certain failure).

        Returns (na_error, sc_error); NA diverging at a *higher* physical
        error is the paper's claim.
        """
        def threshold(curve):
            viable = [err for err, program_err in curve
                      if program_err < 1.0 - margin]
            return max(viable) if viable else 0.0
        return threshold(self.na_curve), threshold(self.sc_curve)


def compare_architectures(
    benchmark: str,
    num_qubits: int,
    na_arch: Architecture,
    sc_arch: Architecture,
    errors: Optional[Sequence[float]] = None,
) -> SuccessComparison:
    """Fig 7 rows for one benchmark at one size."""
    errors = list(errors) if errors is not None else error_sweep()
    na_metrics = compiled_metrics(benchmark, num_qubits, na_arch)
    sc_metrics = compiled_metrics(benchmark, num_qubits, sc_arch)
    return SuccessComparison(
        benchmark=benchmark,
        num_qubits_na=na_metrics.num_qubits,
        num_qubits_sc=sc_metrics.num_qubits,
        na_curve=success_curve(na_metrics, na_arch, errors),
        sc_curve=success_curve(sc_metrics, sc_arch, errors),
    )


def valid_sizes(benchmark: str, max_size: int, step: int = 5) -> List[int]:
    """Distinct realizable sizes of ``benchmark`` up to ``max_size``.

    Walks the requested grid and deduplicates through each family's own
    size-rounding lattice (e.g. Cuccaro only realizes sizes 2n+2) —
    via :meth:`Benchmark.realized_size`, so no circuit is built.
    """
    bench = get_benchmark(benchmark)
    sizes = []
    seen = set()
    for requested in range(max(bench.min_size, step), max_size + 1, step):
        realized = bench.realized_size(requested)
        if realized not in seen:
            seen.add(realized)
            sizes.append(requested)
    return sizes


def _ladder_metrics_task(task: dict) -> Optional[ProgramMetrics]:
    """Sweep-engine worker: compile one size-ladder rung, or None when
    the size does not compile on the architecture (module-level and
    picklable for spawn-based workers)."""
    try:
        return compiled_metrics(task["benchmark"], task["num_qubits"],
                                task["arch"])
    except CompilationError:
        return None


def _serial_ladder(
    benchmark: str, arch: Architecture, sizes: Sequence[int]
) -> List[ProgramMetrics]:
    """Compile rungs in order, stopping at the first failure — no work
    is spent past a size that cannot compile."""
    ladder: List[ProgramMetrics] = []
    for size in sizes:
        metrics = _ladder_metrics_task(
            {"benchmark": benchmark, "num_qubits": size, "arch": arch}
        )
        if metrics is None:
            break
        ladder.append(metrics)
    return ladder


def size_ladder_grid_map(
    cells: Sequence[Tuple[str, Architecture, Sequence[int]]],
    jobs: Optional[int] = None,
) -> List[List[ProgramMetrics]]:
    """Compile several size ladders through one sweep-engine fan-out.

    ``cells`` is a sequence of ``(benchmark, arch, sizes)``; the result
    holds one ladder per cell, each truncated at (excluding) its first
    size that fails to compile — the serial break-at-first-error
    semantics of :func:`largest_runnable_size` — so curves built from
    the ladders are identical at any worker count.  Single-job runs keep
    the short-circuit (nothing past a failing rung compiles); parallel
    runs trade speculative compilation of later rungs for wall-clock,
    and batching every cell into one ``run_tasks`` call pays the spawn
    pool's startup once instead of per ladder.
    """
    from repro.api.session import current_session
    from repro.exec.engine import run_tasks

    if (jobs if jobs is not None else current_session().jobs) == 1:
        return [_serial_ladder(benchmark, arch, sizes)
                for benchmark, arch, sizes in cells]
    tasks: List[dict] = []
    spans = []
    for benchmark, arch, sizes in cells:
        start = len(tasks)
        tasks.extend(
            {"benchmark": benchmark, "num_qubits": size, "arch": arch}
            for size in sizes
        )
        spans.append((start, len(tasks)))
    results = run_tasks(_ladder_metrics_task, tasks, jobs=jobs)
    ladders: List[List[ProgramMetrics]] = []
    for start, end in spans:
        ladder: List[ProgramMetrics] = []
        for metrics in results[start:end]:
            if metrics is None:
                break
            ladder.append(metrics)
        ladders.append(ladder)
    return ladders


#: Legacy name for :func:`size_ladder_grid_map`.
size_ladder_grid = size_ladder_grid_map


def size_ladder_metrics(
    benchmark: str,
    arch: Architecture,
    sizes: Sequence[int],
    jobs: Optional[int] = None,
) -> List[ProgramMetrics]:
    """One-cell convenience wrapper over :func:`size_ladder_grid_map`."""
    return size_ladder_grid_map([(benchmark, arch, sizes)], jobs=jobs)[0]


def largest_runnable_from(
    ladder: Sequence[ProgramMetrics],
    arch: Architecture,
    two_qubit_error: float,
    threshold: float = SIZE_THRESHOLD,
) -> int:
    """Fig 8's y-value from precompiled ladder metrics."""
    noise = arch.noise(two_qubit_error=two_qubit_error)
    best = 1
    for metrics in ladder:
        if metrics.success_rate(noise) >= threshold:
            best = max(best, metrics.num_qubits)
    return best


def largest_runnable_size(
    benchmark: str,
    arch: Architecture,
    two_qubit_error: float,
    sizes: Sequence[int],
    threshold: float = SIZE_THRESHOLD,
) -> int:
    """Fig 8's y-value: the largest size whose success beats ``threshold``.

    Returns 1 when even the smallest size fails (the paper's curves bottom
    out at 1).  Repeated calls over the same sizes are cheap: the
    compiles behind the ladder are memoized by ``compiled_metrics``.
    """
    return largest_runnable_from(
        _serial_ladder(benchmark, arch, sizes), arch, two_qubit_error,
        threshold,
    )


def size_curve(
    benchmark: str,
    arch: Architecture,
    errors: Sequence[float],
    sizes: Sequence[int],
    threshold: float = SIZE_THRESHOLD,
    jobs: Optional[int] = None,
) -> List[Tuple[float, int]]:
    """(two-qubit error, largest runnable size) pairs for Fig 8.

    The size ladder compiles as one task grid over the sweep engine;
    the per-error thresholding is then a cheap serial pass over the
    in-memory metrics.
    """
    ladder = size_ladder_metrics(benchmark, arch, sizes, jobs=jobs)
    return [
        (error, largest_runnable_from(ladder, arch, error, threshold))
        for error in errors
    ]


def calibrate_two_qubit_error(
    metrics: ProgramMetrics,
    noise_family_builder,
    target_success: float = 0.6,
    low: float = 1e-7,
    high: float = 0.2,
) -> float:
    """Find the two-qubit error making ``metrics`` succeed at ``target``.

    Used by Fig 11, which chooses an error rate "corresponding to
    approximately 0.6 success rate to begin with".  ``noise_family_builder``
    maps an error to a NoiseModel (e.g. ``NoiseModel.neutral_atom``).
    Bisection on the log-error axis.
    """
    def success_at(error: float) -> float:
        return metrics.success_rate(noise_family_builder(error))

    if success_at(low) < target_success:
        raise ValueError("program cannot reach the target success even at "
                         f"error {low}")
    if success_at(high) > target_success:
        return high
    log_lo, log_hi = math.log(low), math.log(high)
    for _ in range(60):
        mid = 0.5 * (log_lo + log_hi)
        if success_at(math.exp(mid)) >= target_success:
            log_lo = mid
        else:
            log_hi = mid
    return math.exp(log_lo)
