"""The two architectures every figure compares.

* **NA** — 10x10 neutral-atom grid, MID sweepable (default 3), restriction
  zones ``f(d) = d/2``, native 3-qubit gates, neutral-atom noise.
* **SC** — the superconducting baseline: same grid, MID 1, no zones,
  everything decomposed to 1-2 qubit gates, IBM-Rome-era noise.

Compilation results are cached process-wide (and, when a cache directory
is configured, on disk across processes — see :mod:`repro.exec.cache`):
the figure drivers and the pytest benchmarks hit the same (benchmark,
size, architecture) points repeatedly, and compiled metrics are
deterministic.  ``metrics_grid_map`` (legacy alias ``prewarm_metrics``)
fans a batch of points out over the sweep engine so the serial driver
code that follows finds everything already cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.metrics import ProgramMetrics
from repro.core.config import CompilerConfig
from repro.exec.cache import cached_compile
from repro.hardware.noise import NoiseModel
from repro.hardware.topology import Topology
from repro.workloads.ref import resolve_circuit

#: The paper's device (§III-C): a 10x10 atom array.
DEFAULT_GRID_SIDE = 10

#: The MIDs the paper's bar charts use, plus 1 as the SC-like baseline.
PAPER_MIDS = (2.0, 3.0, 4.0, 5.0, 8.0, 13.0)


@dataclass(frozen=True)
class Architecture:
    """A named (device, compiler policy, noise family) triple."""

    name: str
    grid_side: int
    mid: float
    restriction_radius: str
    native_max_arity: int
    noise_family: str  # "na" or "sc"

    def config(self) -> CompilerConfig:
        return CompilerConfig(
            max_interaction_distance=self.mid,
            restriction_radius=self.restriction_radius,
            native_max_arity=self.native_max_arity,
        )

    def topology(self) -> Topology:
        return Topology.square(self.grid_side, self.mid)

    def noise(self, two_qubit_error: Optional[float] = None) -> NoiseModel:
        if self.noise_family == "sc":
            return NoiseModel.superconducting_rome(two_qubit_error)
        if self.noise_family == "ti":
            return NoiseModel.trapped_ion(two_qubit_error)
        return NoiseModel.neutral_atom(two_qubit_error)


def neutral_atom_arch(
    mid: float = 3.0,
    grid_side: int = DEFAULT_GRID_SIDE,
    native_max_arity: int = 3,
    restriction_radius: str = "half",
) -> Architecture:
    return Architecture(
        name=f"na-mid{mid:g}",
        grid_side=grid_side,
        mid=mid,
        restriction_radius=restriction_radius,
        native_max_arity=native_max_arity,
        noise_family="na",
    )


def superconducting_arch(grid_side: int = DEFAULT_GRID_SIDE) -> Architecture:
    return Architecture(
        name="sc-mid1",
        grid_side=grid_side,
        mid=1.0,
        restriction_radius="none",
        native_max_arity=2,
        noise_family="sc",
    )


def trapped_ion_arch(
    grid_side: int = DEFAULT_GRID_SIDE, native_max_arity: int = 3
) -> Architecture:
    """Single-trap trapped-ion comparator (the paper's Discussion).

    All-to-all connectivity (MID = device diagonal, so routing inserts no
    SWAPs) and native multiqubit gates, but a device-wide restriction
    zone: the shared phonon bus serializes entangling gates completely.
    """
    import math

    diagonal = math.hypot(grid_side - 1, grid_side - 1)
    return Architecture(
        name="ti-global",
        grid_side=grid_side,
        mid=diagonal,
        restriction_radius="global",
        native_max_arity=native_max_arity,
        noise_family="ti",
    )


_CACHE: Dict[Tuple, ProgramMetrics] = {}

#: One compilation point: (benchmark, num_qubits, arch) or
#: (benchmark, num_qubits, arch, rng_seed).
MetricPoint = Tuple


def _point_key(point: MetricPoint) -> Tuple:
    benchmark, num_qubits, arch = point[0], point[1], point[2]
    rng_seed = point[3] if len(point) > 3 else 0
    return (benchmark, num_qubits, arch, rng_seed)


def compiled_metrics(
    benchmark: str,
    num_qubits: int,
    arch: Architecture,
    rng_seed: int = 0,
) -> ProgramMetrics:
    """Compile (cached) and summarize one workload instance on one arch.

    ``benchmark`` is any workload reference — a named family (sized by
    ``num_qubits``), ``"family@size"``, or an uploaded ``circuit:<digest>``
    resolved through the active session's circuit store — all sourced
    through the one :func:`repro.workloads.ref.resolve_circuit` seam.
    """
    key = (benchmark, num_qubits, arch, rng_seed)
    if key in _CACHE:
        return _CACHE[key]
    circuit = resolve_circuit(benchmark, num_qubits, rng=rng_seed)
    program = cached_compile(circuit, arch.topology(), arch.config())
    metrics = ProgramMetrics.from_program(program, benchmark=benchmark)
    _CACHE[key] = metrics
    return metrics


def _metrics_task(task: Dict) -> ProgramMetrics:
    """Sweep-engine worker: compile one point (module-level, picklable)."""
    return compiled_metrics(
        task["benchmark"], task["num_qubits"], task["arch"], task["rng_seed"]
    )


def metrics_grid_map(
    points: Iterable[MetricPoint], jobs: Optional[int] = None
) -> None:
    """Compile a batch of points as one task grid and prime the metrics
    cache — the exec-engine route every compiled-metrics figure driver
    takes before its serial aggregation pass.

    Compilation is deterministic (the grid seeds go unused), so fanning
    points out over worker processes and importing the results is
    indistinguishable from compiling them serially — only faster.
    Points already cached are skipped; duplicates are deduplicated.
    """
    from repro.exec.grid import grid_map

    pending: List[Tuple] = []
    seen = set()
    for point in points:
        key = _point_key(point)
        if key in _CACHE or key in seen:
            continue
        seen.add(key)
        pending.append(key)
    if not pending:
        return
    cells = [
        {"benchmark": b, "num_qubits": n, "arch": a, "rng_seed": s}
        for b, n, a, s in pending
    ]
    for key, metrics in zip(
        pending, grid_map(_metrics_task, cells, experiment="metrics",
                          jobs=jobs)
    ):
        _CACHE[key] = metrics


#: Legacy name for :func:`metrics_grid_map` (kept for callers that read
#: it as "make the cache warm" rather than "run the grid").
prewarm_metrics = metrics_grid_map


def savings_points(
    benchmark: str,
    sizes: Sequence[int],
    archs: Sequence[Architecture],
) -> List[MetricPoint]:
    """The flat (benchmark x size x arch) grid behind a savings chart."""
    return [(benchmark, size, arch, 0) for size in sizes for arch in archs]


def clear_cache() -> None:
    _CACHE.clear()
