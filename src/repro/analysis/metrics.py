"""Compact compiled-program metrics, decoupled from noise parameters.

Figs 7-8 evaluate the *same* compiled program under many error rates.
:class:`ProgramMetrics` captures exactly what the §V estimator needs —
the per-arity gate census and the timestep structure — so a program is
compiled once and scored cheaply under any :class:`NoiseModel`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.api.serialize import serializable
from repro.core.result import CompiledProgram
from repro.hardware.noise import NoiseModel

#: Timestep signature: (contains_swap, max gate arity in the step).
StepKind = Tuple[bool, int]


@serializable
@dataclass(frozen=True)
class ProgramMetrics:
    """Noise-independent summary of one compiled program."""

    benchmark: str
    num_qubits: int
    mid: float
    gate_count: int
    op_count: int
    swap_count: int
    depth: int
    counts_by_arity: Tuple[Tuple[int, int], ...]
    #: Census of timesteps by (has_swap, max_arity), for duration math.
    step_census: Tuple[Tuple[StepKind, int], ...]

    @classmethod
    def from_program(
        cls, program: CompiledProgram, benchmark: str = ""
    ) -> "ProgramMetrics":
        census: Counter = Counter()
        for timestep in program.schedule:
            if not timestep:
                continue
            has_swap = any(op.is_swap for op in timestep)
            max_arity = max(op.arity for op in timestep)
            census[(has_swap, max_arity)] += 1
        return cls(
            benchmark=benchmark,
            num_qubits=program.source.num_qubits,
            mid=program.config.max_interaction_distance,
            gate_count=program.gate_count(),
            op_count=program.op_count,
            swap_count=program.swap_count,
            depth=program.depth(),
            counts_by_arity=tuple(sorted(program.counts_by_arity().items())),
            step_census=tuple(sorted(census.items())),
        )

    # -- noise-parameterized queries ----------------------------------------------------

    def arity_counts(self) -> Dict[int, int]:
        return dict(self.counts_by_arity)

    def duration(self, noise: NoiseModel) -> float:
        """One-shot execution time under a noise model's gate times."""
        total = 0.0
        for (has_swap, max_arity), count in self.step_census:
            step_time = noise.duration_of(max_arity)
            if has_swap:
                step_time = max(step_time, 3.0 * noise.duration_of(2))
            total += count * step_time
        return total

    def success_rate(self, noise: NoiseModel) -> float:
        """The §V success estimate under ``noise``."""
        return noise.program_success(self.arity_counts(), self.duration(noise))

    def error_rate(self, noise: NoiseModel) -> float:
        """Fig 7's y-axis: 1 - success."""
        return 1.0 - self.success_rate(noise)
