"""Error analysis: success-rate curves and largest-runnable-size sweeps."""

from repro.analysis.architectures import (
    Architecture,
    DEFAULT_GRID_SIDE,
    PAPER_MIDS,
    clear_cache,
    compiled_metrics,
    neutral_atom_arch,
    superconducting_arch,
    trapped_ion_arch,
)
from repro.analysis.metrics import ProgramMetrics
from repro.analysis.success import (
    SIZE_THRESHOLD,
    SuccessComparison,
    calibrate_two_qubit_error,
    compare_architectures,
    error_sweep,
    largest_runnable_size,
    size_curve,
    success_curve,
    valid_sizes,
)

__all__ = [
    "Architecture",
    "DEFAULT_GRID_SIDE",
    "PAPER_MIDS",
    "ProgramMetrics",
    "SIZE_THRESHOLD",
    "SuccessComparison",
    "calibrate_two_qubit_error",
    "clear_cache",
    "compare_architectures",
    "compiled_metrics",
    "error_sweep",
    "largest_runnable_size",
    "neutral_atom_arch",
    "size_curve",
    "success_curve",
    "superconducting_arch",
    "trapped_ion_arch",
    "valid_sizes",
]
