"""repro — Neutral-Atom Quantum Architecture reproduction.

A from-scratch Python implementation of "Exploiting Long-Distance
Interactions and Tolerating Atom Loss in Neutral Atom Quantum
Architectures" (Baker et al., ISCA 2021): a mapping/routing/scheduling
compiler aware of variable interaction distance, restriction zones, and
native multiqubit gates, plus atom-loss coping strategies evaluated by a
shot-level execution simulator.

Quick start::

    from repro import compile_circuit, CompilerConfig, Topology
    from repro.workloads import build_circuit

    circuit = build_circuit("cuccaro", 30)
    program = compile_circuit(
        circuit,
        Topology.square(10, max_interaction_distance=3.0),
        CompilerConfig(max_interaction_distance=3.0),
    )
    print(program.summary())
"""

from repro.circuits import Circuit, Gate
from repro.core import (
    CompilationError,
    CompiledProgram,
    CompilerConfig,
    compile_circuit,
)
from repro.hardware import (
    Grid,
    LossModel,
    NoiseModel,
    RestrictionModel,
    TimingModel,
    Topology,
)
from repro.loss import ShotRunner, make_strategy, max_loss_tolerance

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "CompilationError",
    "CompiledProgram",
    "CompilerConfig",
    "Gate",
    "Grid",
    "LossModel",
    "NoiseModel",
    "RestrictionModel",
    "ShotRunner",
    "TimingModel",
    "Topology",
    "__version__",
    "compile_circuit",
    "make_strategy",
    "max_loss_tolerance",
]
