"""Shared scaffolding for the per-figure experiment drivers.

Every figure module exposes ``run(...) -> <Fig>Result`` where the result
renders the paper's rows/series via ``format()``.  Size grids default to
the paper's full sweep but accept reduced grids so the pytest-benchmark
harness can regenerate each figure quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.architectures import (
    DEFAULT_GRID_SIDE,
    PAPER_MIDS,
    Architecture,
    compiled_metrics,
    neutral_atom_arch,
    metrics_grid_map,
    savings_points,
)
from repro.api.serialize import serializable
from repro.analysis.success import valid_sizes
from repro.workloads.registry import BENCHMARK_ORDER

#: Default per-benchmark size grid for the compilation figures (3-6):
#: "sizes up to 100" sampled coarsely enough to finish in minutes.
def default_sizes(benchmark: str, max_size: int = 100, step: int = 10) -> List[int]:
    return valid_sizes(benchmark, max_size, step)


def na_arch_for_mid(
    mid: float,
    native_max_arity: int = 2,
    restriction_radius: str = "half",
    grid_side: int = DEFAULT_GRID_SIDE,
) -> Architecture:
    """NA architecture at one MID.

    Figs 3-5 compile everything to 1-2 qubit gates ("all programs are
    compiled to 1 and 2 qubit gates only"), hence the default arity 2.
    """
    return neutral_atom_arch(
        mid=mid,
        grid_side=grid_side,
        native_max_arity=native_max_arity,
        restriction_radius=restriction_radius,
    )


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def std(values: Sequence[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return (sum((v - center) ** 2 for v in values) / (len(values) - 1)) ** 0.5


@serializable
@dataclass
class SavingsRow:
    """One bar of a Fig 3/4-style chart: mean % savings vs the MID-1 baseline."""

    benchmark: str
    mid: float
    mean_saving: float
    std_saving: float

    def as_tuple(self):
        return (self.benchmark, self.mid, self.mean_saving, self.std_saving)


def savings_over_baseline(
    benchmark: str,
    sizes: Sequence[int],
    mids: Sequence[float],
    metric: str,
    native_max_arity: int = 2,
    grid_side: int = DEFAULT_GRID_SIDE,
) -> List[SavingsRow]:
    """Percent reduction of ``metric`` ('gate_count' or 'depth') at each MID
    relative to the MID-1 compilation of the same size, averaged over sizes."""
    rows = []
    baseline_arch = na_arch_for_mid(
        1.0, native_max_arity=native_max_arity, grid_side=grid_side
    )
    sweep_archs = [
        na_arch_for_mid(mid, native_max_arity=native_max_arity,
                        grid_side=grid_side)
        for mid in mids
    ]
    # Fan the whole (size x MID) compile grid out over the sweep engine;
    # the serial aggregation below then runs entirely against the cache.
    metrics_grid_map(savings_points(benchmark, sizes,
                                    [baseline_arch] + sweep_archs))
    for mid, arch in zip(mids, sweep_archs):
        savings = []
        for size in sizes:
            base = getattr(compiled_metrics(benchmark, size, baseline_arch), metric)
            value = getattr(compiled_metrics(benchmark, size, arch), metric)
            if base > 0:
                savings.append(1.0 - value / base)
        rows.append(
            SavingsRow(
                benchmark=benchmark,
                mid=mid,
                mean_saving=mean(savings),
                std_saving=std(savings),
            )
        )
    return rows


def all_benchmarks() -> List[str]:
    return list(BENCHMARK_ORDER)


def mids_or_default(mids: Optional[Sequence[float]]) -> List[float]:
    return list(mids) if mids is not None else list(PAPER_MIDS)
