"""Ablation — the compile-small distance margin.

Compile Small trades compiled-program quality for remap slack: compiling
at ``true MID - margin`` means virtual shifts can stretch interactions by
``margin`` before the hardware limit bites.  The paper fixes margin = 1;
this ablation sweeps it, measuring both sides of the trade on the same
device:

* the compiled program's gate count grows and its clean success shrinks
  with the margin (smaller compiled MID needs more SWAPs — Fig 3 in
  reverse);
* loss tolerance gains more slack per shift, but empirically the trade is
  *not* monotone: the worse compiled program consumes the fixup SWAP
  budget faster, so very large margins can tolerate *less* loss.  The
  paper's margin-1 choice sits on the right side of that trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.api.serialize import serializable
from repro.core.config import CompilerConfig
from repro.exec.grid import grid_map
from repro.hardware.noise import NoiseModel
from repro.hardware.topology import Topology
from repro.loss.strategies.compile_small import CompileSmallReroute
from repro.loss.tolerance import max_loss_tolerance
from repro.utils.rng import RngLike, base_seed_from
from repro.utils.textplot import format_table
from repro.workloads.registry import build_circuit

GRID_SIDE = 10


@serializable
@dataclass(frozen=True)
class MarginPoint:
    margin: float
    compiled_mid: float
    gates: int
    clean_success: float
    tolerance_fraction: float


@dataclass
class MarginResult(ExperimentResult):
    benchmark: str = ""
    true_mid: float = 0.0
    points: List[MarginPoint] = field(default_factory=list)

    def select(self, margin: float) -> MarginPoint:
        for p in self.points:
            if abs(p.margin - margin) < 1e-9:
                return p
        raise KeyError(margin)

    def format(self) -> str:
        lines = [
            "Ablation — Compile-Small Margin "
            f"({self.benchmark}, true MID {self.true_mid:g})",
            "(bigger margin = more loss slack, worse compiled program)",
            "",
        ]
        rows = [
            (f"{p.margin:g}", f"{p.compiled_mid:g}", p.gates,
             f"{p.clean_success:.3f}", f"{p.tolerance_fraction:.1%}")
            for p in self.points
        ]
        lines.append(format_table(
            ["margin", "compiled MID", "gates", "clean success",
             "loss tolerance"],
            rows,
        ))
        return "\n".join(lines)


@dataclass(frozen=True)
class MarginTask:
    """One grid cell: the full tolerance study at one margin."""

    benchmark: str
    program_size: int
    true_mid: float
    margin: float
    trials: int
    seed: int = 0  # stamped by grid_map from the cell's canonical key


def measure_margin_point(task: MarginTask) -> MarginPoint:
    """Task function: tolerance trials plus one clean compile at one
    margin (module-level and picklable for spawn-based workers)."""
    noise = NoiseModel.neutral_atom()
    circuit = build_circuit(task.benchmark, task.program_size)
    strategy = CompileSmallReroute(margin=task.margin, noise=noise)
    tolerance = max_loss_tolerance(
        strategy,
        circuit,
        GRID_SIDE,
        task.true_mid,
        config=CompilerConfig(max_interaction_distance=task.true_mid),
        trials=task.trials,
        rng=task.seed,
    )
    # begin() ran inside the tolerance loop against lossy topologies;
    # recompile once cleanly (a cache hit after the first trial) to read
    # the compiled program's cost at this margin.
    program = strategy.begin(
        circuit,
        Topology.square(GRID_SIDE, task.true_mid),
        CompilerConfig(max_interaction_distance=task.true_mid),
    )
    return MarginPoint(
        margin=task.margin,
        compiled_mid=task.true_mid - task.margin,
        gates=program.gate_count(),
        clean_success=program.success_rate(noise),
        tolerance_fraction=tolerance.mean_fraction,
    )


def run(
    benchmark: str = "cnu",
    program_size: int = 30,
    true_mid: float = 5.0,
    margins: Sequence[float] = (1.0, 2.0, 3.0),
    trials: int = 3,
    rng: RngLike = 0,
    jobs: Optional[int] = None,
) -> MarginResult:
    """Sweep the compile-small margin as a task grid over the exec
    engine (each margin's trials seeded from its canonical cell key)."""
    cells = [
        MarginTask(benchmark=benchmark, program_size=program_size,
                   true_mid=true_mid, margin=margin, trials=trials)
        for margin in margins
    ]
    return MarginResult(
        benchmark=benchmark,
        true_mid=true_mid,
        points=grid_map(measure_margin_point, cells,
                        experiment="ablation-margin",
                        base_seed=base_seed_from(rng), jobs=jobs),
    )


SPEC = register_experiment(
    name="ablation-margin",
    runner=run,
    result_type=MarginResult,
    quick=dict(program_size=20, trials=2, margins=(1.0, 2.0)),
)


def main() -> None:
    print(run(trials=2, margins=(1.0, 2.0)).format())


if __name__ == "__main__":
    main()
