"""Extension — three-way architecture comparison: NA vs SC vs TI.

The paper's Discussion positions trapped ions as the closest competitor:
"many of the same advantages as neutral atoms such as global interactions
and multiqubit gates but at the cost of parallelism".  This experiment
makes that trade quantitative by compiling every benchmark for all three
architectures:

* **NA** — MID 3, `f(d)=d/2` zones, native Toffolis;
* **SC** — MID 1 grid, no zones, decomposed;
* **TI** — single trap: all-to-all (no SWAPs at all) and native
  Toffolis, but a device-wide restriction zone serializing every
  entangling gate, with hundreds-of-microseconds gate times.

Expected shape: TI wins raw gate count (zero SWAPs), loses depth to
serialization on parallel benchmarks, and loses wall-clock duration by
orders of magnitude (slow gates x full serialization), which is where its
coherence budget goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.architectures import (
    Architecture,
    compiled_metrics,
    metrics_grid_map,
    neutral_atom_arch,
    superconducting_arch,
    trapped_ion_arch,
)
from repro.analysis.metrics import ProgramMetrics
from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.utils.textplot import format_table
from repro.workloads.registry import BENCHMARK_ORDER

ARCH_ORDER = ("na", "sc", "ti")


@dataclass
class ThreeWayResult(ExperimentResult):
    #: (benchmark, arch key) -> metrics.
    cells: Dict[Tuple[str, str], ProgramMetrics] = field(default_factory=dict)
    #: (benchmark, arch key) -> (duration seconds, success rate).
    derived: Dict[Tuple[str, str], Tuple[float, float]] = field(
        default_factory=dict
    )

    def metrics(self, benchmark: str, arch: str) -> ProgramMetrics:
        return self.cells[(benchmark, arch)]

    def duration(self, benchmark: str, arch: str) -> float:
        return self.derived[(benchmark, arch)][0]

    def success(self, benchmark: str, arch: str) -> float:
        return self.derived[(benchmark, arch)][1]

    def format(self) -> str:
        lines = ["Extension — NA vs SC vs Trapped-Ion (single trap)", ""]
        rows = []
        for (benchmark, arch), metrics in sorted(self.cells.items()):
            duration, success = self.derived[(benchmark, arch)]
            rows.append((
                benchmark, arch, metrics.gate_count, metrics.depth,
                metrics.swap_count, f"{duration * 1e3:.2f}ms",
                f"{success:.3e}",
            ))
        lines.append(format_table(
            ["benchmark", "arch", "gates", "depth", "swaps", "duration",
             "success"],
            rows,
        ))
        return "\n".join(lines)


def run(
    benchmarks: Sequence[str] = tuple(BENCHMARK_ORDER),
    program_size: int = 30,
    na_mid: float = 3.0,
    jobs: Optional[int] = None,
) -> ThreeWayResult:
    """Compile each benchmark on the three architectures.

    The whole (benchmark x architecture) compile grid fans out over the
    exec engine; the duration/success aggregation below then runs
    entirely against the in-process metrics cache.
    """
    architectures: Dict[str, Architecture] = {
        "na": neutral_atom_arch(mid=na_mid, native_max_arity=3),
        "sc": superconducting_arch(),
        "ti": trapped_ion_arch(),
    }
    metrics_grid_map(
        [(benchmark, program_size, arch, 0)
         for benchmark in benchmarks for arch in architectures.values()],
        jobs=jobs,
    )
    result = ThreeWayResult()
    for benchmark in benchmarks:
        for key, arch in architectures.items():
            metrics = compiled_metrics(benchmark, program_size, arch)
            noise = arch.noise()
            result.cells[(benchmark, key)] = metrics
            result.derived[(benchmark, key)] = (
                metrics.duration(noise),
                metrics.success_rate(noise),
            )
    return result


SPEC = register_experiment(
    name="ext-trapped-ion",
    runner=run,
    result_type=ThreeWayResult,
    quick=dict(benchmarks=("bv", "cnu", "qaoa"), program_size=20),
)


def main() -> None:
    print(run(benchmarks=("bv", "cnu", "qaoa"), program_size=20).format())


if __name__ == "__main__":
    main()
