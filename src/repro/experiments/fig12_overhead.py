"""Fig 12 — overhead time for 500 shots, by strategy and MID.

Runs the shot simulator for each non-recompiling strategy (plus Always
Reload as the anchor) and reports the wall-clock overhead split into
reload / fluorescence / fixup / compile.  The paper's conclusions, all
reproduced:

* reload time dominates every bar;
* every adaptive strategy beats Always Reload;
* recompilation is excluded because software compile time exceeds the
  reload time (we report it separately so the claim is checkable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.core.config import CompilerConfig
from repro.exec.cache import cached_compile
from repro.exec.keys import derive_seed, task_key
from repro.hardware.loss import LossModel
from repro.hardware.timing import TimingModel
from repro.hardware.topology import Topology
from repro.loss.runner import RunResult, ShotSpec, run_shot_specs
from repro.utils.rng import RngLike, base_seed_from
from repro.utils.textplot import format_table
from repro.workloads.registry import build_circuit

GRID_SIDE = 10
PROGRAM_SIZE = 30
FIG12_STRATEGIES = (
    "virtual remapping",
    "compile small",
    "always reload",
    "reroute",
    "c. small+reroute",
)
FIG12_MIDS = (2.0, 3.0, 4.0, 5.0, 6.0)


@dataclass
class Fig12Result(ExperimentResult):
    #: (strategy, mid) -> run result.
    runs: Dict[Tuple[str, float], RunResult] = field(default_factory=dict)
    #: Wall-clock compile seconds of one full recompilation, for the
    #: "recompilation exceeds reload" comparison.
    recompile_seconds: Dict[float, float] = field(default_factory=dict)
    reload_time: float = 0.3

    def overhead(self, strategy: str, mid: float) -> float:
        return self.runs[(strategy, mid)].overhead_time

    def format(self) -> str:
        lines = ["Fig 12 — Overhead Time for 500 Shots (CNU)",
                 "(columns: total overhead, reload, fluorescence, fixup, "
                 "compile, #reloads)", ""]
        mids = sorted({m for _, m in self.runs})
        for mid in mids:
            lines.append(f"MID {mid:g}:")
            rows = []
            for (strategy, run_mid), result in self.runs.items():
                if abs(run_mid - mid) > 1e-9:
                    continue
                kinds = result.time_by_kind()
                rows.append((
                    strategy,
                    f"{result.overhead_time:.2f}s",
                    f"{kinds['reload']:.2f}s",
                    f"{kinds['fluorescence']:.2f}s",
                    f"{kinds['fixup'] * 1e3:.2f}ms",
                    f"{kinds['compile']:.2f}s",
                    result.reload_count,
                ))
            lines.append(format_table(
                ["strategy", "overhead", "reload", "fluor", "fixup",
                 "compile", "reloads"],
                rows,
            ))
            if mid in self.recompile_seconds:
                lines.append(
                    f"  (one full recompile: {self.recompile_seconds[mid]:.2f}s"
                    f" vs one reload: {self.reload_time:.2f}s)"
                )
            lines.append("")
        return "\n".join(lines)


def run(
    benchmark: str = "cnu",
    strategies: Sequence[str] = FIG12_STRATEGIES,
    mids: Sequence[float] = FIG12_MIDS,
    shots: int = 500,
    program_size: int = PROGRAM_SIZE,
    rng: RngLike = 0,
    timing: Optional[TimingModel] = None,
    loss_model: Optional[LossModel] = None,
    jobs: Optional[int] = None,
) -> Fig12Result:
    """Regenerate Fig 12.

    The (strategy x MID) grid fans out over the sweep engine; every
    task's seed is derived from its canonical key, so shot outcomes are
    identical at any ``jobs`` count.  The wall-clock compile durations
    in the output are additionally pinned when an on-disk cache is
    configured (see :mod:`repro.exec.cache`); without one, parallel
    workers re-measure them and only those columns may vary.
    """
    timing = timing or TimingModel.paper_defaults()
    loss_model = loss_model or LossModel.lossless_readout()
    base_seed = base_seed_from(rng)
    result = Fig12Result(reload_time=timing.reload_time)
    circuit = build_circuit(benchmark, program_size)

    # Pin every compile artifact the strategies will need *before* the
    # fan-out: workers then read one stored compile time from the shared
    # disk cache instead of racing to measure their own, so even a cold
    # disk cache yields identical output at any worker count.  (Without
    # a disk tier — --no-cache — parallel workers cannot see these and
    # re-measure; only the compile-time columns can then wobble.  The
    # full-MID compiles below also provide the recompile-exclusion
    # numbers.)
    from repro.loss.strategies.compile_small import compiled_distance

    for mid in mids:
        program = cached_compile(
            circuit,
            Topology.square(GRID_SIDE, mid),
            CompilerConfig(max_interaction_distance=mid),
        )
        result.recompile_seconds[mid] = program.compile_seconds
        if any("small" in name for name in strategies) and mid > 2.0:
            reduced = compiled_distance(mid)
            cached_compile(
                circuit,
                Topology.square(GRID_SIDE, reduced),
                CompilerConfig(max_interaction_distance=reduced),
            )

    cells = []
    for mid in mids:
        for name in strategies:
            if "small" in name and mid <= 2.0:
                continue
            key = task_key(experiment="fig12", benchmark=benchmark,
                           strategy=name, mid=float(mid),
                           program_size=program_size, shots=shots)
            cells.append((name, mid, ShotSpec(
                strategy=name,
                benchmark=benchmark,
                program_size=program_size,
                grid_side=GRID_SIDE,
                mid=float(mid),
                max_shots=shots,
                seed=derive_seed(key, base=base_seed),
                loss_model=loss_model,
                timing=timing,
            )))
    for (name, mid, _), run_result in zip(
        cells, run_shot_specs([spec for _, _, spec in cells], jobs=jobs)
    ):
        result.runs[(name, mid)] = run_result
    return result


SPEC = register_experiment(
    name="fig12",
    runner=run,
    result_type=Fig12Result,
    quick=dict(mids=(3.0, 4.0), shots=120, program_size=20),
)


def main() -> None:
    print(run(mids=(3.0, 5.0), shots=100).format())


if __name__ == "__main__":
    main()
