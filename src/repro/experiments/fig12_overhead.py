"""Fig 12 — overhead time for 500 shots, by strategy and MID.

Runs the shot simulator for each non-recompiling strategy (plus Always
Reload as the anchor) and reports the wall-clock overhead split into
reload / fluorescence / fixup / compile.  The paper's conclusions, all
reproduced:

* reload time dominates every bar;
* every adaptive strategy beats Always Reload;
* recompilation is excluded because software compile time exceeds the
  reload time (we report it separately so the claim is checkable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import CompilerConfig
from repro.hardware.loss import LossModel
from repro.hardware.noise import NoiseModel
from repro.hardware.timing import TimingModel
from repro.hardware.topology import Topology
from repro.loss.runner import RunResult, ShotRunner
from repro.loss.strategies import make_strategy
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.textplot import format_table
from repro.workloads.registry import build_circuit

GRID_SIDE = 10
PROGRAM_SIZE = 30
FIG12_STRATEGIES = (
    "virtual remapping",
    "compile small",
    "always reload",
    "reroute",
    "c. small+reroute",
)
FIG12_MIDS = (2.0, 3.0, 4.0, 5.0, 6.0)


@dataclass
class Fig12Result:
    #: (strategy, mid) -> run result.
    runs: Dict[Tuple[str, float], RunResult] = field(default_factory=dict)
    #: Wall-clock compile seconds of one full recompilation, for the
    #: "recompilation exceeds reload" comparison.
    recompile_seconds: Dict[float, float] = field(default_factory=dict)
    reload_time: float = 0.3

    def overhead(self, strategy: str, mid: float) -> float:
        return self.runs[(strategy, mid)].overhead_time

    def format(self) -> str:
        lines = ["Fig 12 — Overhead Time for 500 Shots (CNU)",
                 "(columns: total overhead, reload, fluorescence, fixup, "
                 "compile, #reloads)", ""]
        mids = sorted({m for _, m in self.runs})
        for mid in mids:
            lines.append(f"MID {mid:g}:")
            rows = []
            for (strategy, run_mid), result in self.runs.items():
                if abs(run_mid - mid) > 1e-9:
                    continue
                kinds = result.time_by_kind()
                rows.append((
                    strategy,
                    f"{result.overhead_time:.2f}s",
                    f"{kinds['reload']:.2f}s",
                    f"{kinds['fluorescence']:.2f}s",
                    f"{kinds['fixup'] * 1e3:.2f}ms",
                    f"{kinds['compile']:.2f}s",
                    result.reload_count,
                ))
            lines.append(format_table(
                ["strategy", "overhead", "reload", "fluor", "fixup",
                 "compile", "reloads"],
                rows,
            ))
            if mid in self.recompile_seconds:
                lines.append(
                    f"  (one full recompile: {self.recompile_seconds[mid]:.2f}s"
                    f" vs one reload: {self.reload_time:.2f}s)"
                )
            lines.append("")
        return "\n".join(lines)


def run(
    benchmark: str = "cnu",
    strategies: Sequence[str] = FIG12_STRATEGIES,
    mids: Sequence[float] = FIG12_MIDS,
    shots: int = 500,
    program_size: int = PROGRAM_SIZE,
    rng: RngLike = 0,
    timing: Optional[TimingModel] = None,
    loss_model: Optional[LossModel] = None,
) -> Fig12Result:
    """Regenerate Fig 12."""
    generator = ensure_rng(rng)
    timing = timing or TimingModel.paper_defaults()
    loss_model = loss_model or LossModel.lossless_readout()
    noise = NoiseModel.neutral_atom()
    circuit = build_circuit(benchmark, program_size)
    result = Fig12Result(reload_time=timing.reload_time)

    for mid in mids:
        for name in strategies:
            if "small" in name and mid <= 2.0:
                continue
            strategy = make_strategy(name, noise=noise)
            runner = ShotRunner(
                strategy,
                circuit,
                Topology.square(GRID_SIDE, mid),
                config=CompilerConfig(max_interaction_distance=mid),
                noise=noise,
                loss_model=loss_model,
                timing=timing,
                rng=int(generator.integers(2**32)),
            )
            result.runs[(name, mid)] = runner.run(max_shots=shots)
        # Measure one real recompilation for the exclusion argument.
        from repro.core.compiler import compile_circuit

        program = compile_circuit(
            circuit,
            Topology.square(GRID_SIDE, mid),
            CompilerConfig(max_interaction_distance=mid),
        )
        result.recompile_seconds[mid] = program.compile_seconds
    return result


def main() -> None:
    print(run(mids=(3.0, 5.0), shots=100).format())


if __name__ == "__main__":
    main()
