"""Fig 8 — largest runnable program size vs two-qubit gate error.

For each physical error rate, the largest benchmark size whose §V success
estimate clears 2/3, for NA (MID 3, native multiqubit) and the SC
baseline.  Equivalently: the physical error you need before a program of
a given size becomes runnable — NA needs *worse* (easier) error rates
than SC for the same size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.architectures import neutral_atom_arch, superconducting_arch
from repro.analysis.success import (
    error_sweep,
    largest_runnable_from,
    size_ladder_grid_map,
    valid_sizes,
)
from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.experiments.common import all_benchmarks
from repro.utils.textplot import format_series

NA_MID = 3.0


@dataclass
class Fig8Result(ExperimentResult):
    #: benchmark -> (na_curve, sc_curve), each [(error, largest size)].
    curves: Dict[str, Tuple[List[Tuple[float, int]], List[Tuple[float, int]]]] = (
        field(default_factory=dict)
    )

    def format(self) -> str:
        lines = ["Fig 8 — Largest Runnable Size (success >= 2/3) vs 2q error",
                 f"(NA MID {NA_MID:g} vs SC MID 1)", ""]
        for name, (na_curve, sc_curve) in self.curves.items():
            xs = [e for e, _ in na_curve]
            lines.append(format_series(
                f"  {name} NA ", xs, [s for _, s in na_curve]))
            lines.append(format_series(
                f"  {name} SC ", xs, [s for _, s in sc_curve]))
            lines.append("")
        return "\n".join(lines)

    def advantage_points(self, benchmark: str) -> int:
        """At how many swept error rates NA runs a strictly larger program."""
        na_curve, sc_curve = self.curves[benchmark]
        return sum(
            1 for (_, na_size), (_, sc_size) in zip(na_curve, sc_curve)
            if na_size > sc_size
        )


def run(
    benchmarks: Optional[Sequence[str]] = None,
    max_size: int = 100,
    size_step: int = 10,
    na_mid: float = NA_MID,
    error_points: int = 13,
    jobs: Optional[int] = None,
) -> Fig8Result:
    """Regenerate Fig 8.

    The full paper grid (sizes to 100 in fine steps) takes minutes; the
    defaults use a coarser size grid with the same shape.  Every
    (benchmark x architecture x size) compile fans out as ONE task grid
    over the sweep engine — a single pool spin-up — and thresholding
    per error rate is then serial and cheap.
    """
    benchmarks = list(benchmarks) if benchmarks is not None else all_benchmarks()
    na = neutral_atom_arch(mid=na_mid, native_max_arity=3)
    sc = superconducting_arch()
    errors = error_sweep(error_points)
    result = Fig8Result()
    cells = [
        (benchmark, arch, valid_sizes(benchmark, max_size, size_step))
        for benchmark in benchmarks
        for arch in (na, sc)
    ]
    ladders = size_ladder_grid_map(cells, jobs=jobs)
    for benchmark, (na_ladder, sc_ladder) in zip(
        benchmarks, zip(ladders[0::2], ladders[1::2])
    ):
        result.curves[benchmark] = (
            [(e, largest_runnable_from(na_ladder, na, e)) for e in errors],
            [(e, largest_runnable_from(sc_ladder, sc, e)) for e in errors],
        )
    return result


SPEC = register_experiment(
    name="fig8",
    runner=run,
    result_type=Fig8Result,
    quick=dict(max_size=30, size_step=10, error_points=9),
)


def main() -> None:
    print(run(max_size=50, size_step=10, error_points=9).format())


if __name__ == "__main__":
    main()
