"""Extension — destructive (ejection) readout.

§VI notes that some NA systems read out by ejecting atoms, losing ~50% of
measured atoms every cycle, and that "this model is extremely destructive
and coping strategies are only effective if the program is much smaller
than the total size of the hardware".  This experiment makes that claim
quantitative: run the shot loop under the 50%-loss readout for a small
program (plenty of spares) and a large one (few spares) and compare
reload pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.core.config import CompilerConfig
from repro.exec.cache import cached_compile
from repro.hardware.loss import LossModel
from repro.hardware.noise import NoiseModel
from repro.hardware.topology import Topology
from repro.loss.runner import RunResult, ShotSpec, run_shot_grid_map
from repro.loss.strategies.compile_small import compiled_distance
from repro.utils.rng import RngLike, base_seed_from
from repro.utils.textplot import format_table
from repro.workloads.registry import build_circuit

GRID_SIDE = 10
MID = 4.0


@dataclass
class EjectionResult(ExperimentResult):
    #: (program size label, strategy) -> run result.
    runs: Dict[Tuple[int, str], RunResult] = field(default_factory=dict)

    def reloads_per_success(self, size: int, strategy: str) -> float:
        result = self.runs[(size, strategy)]
        return result.reload_count / max(1, result.shots_successful)

    def format(self) -> str:
        lines = ["Extension — Ejection Readout (50% measured-atom loss)",
                 "(strategies only help when program << device)", ""]
        rows = []
        for (size, strategy), result in sorted(self.runs.items()):
            rows.append((
                size, strategy, result.shots_attempted,
                result.shots_successful, result.reload_count,
                f"{result.overhead_time:.2f}s",
            ))
        lines.append(format_table(
            ["size", "strategy", "shots", "ok", "reloads", "overhead"],
            rows,
        ))
        return "\n".join(lines)


def run(
    benchmark: str = "cnu",
    sizes: Sequence[int] = (12, 60),
    strategies: Sequence[str] = ("always reload", "c. small+reroute"),
    shots: int = 150,
    rng: RngLike = 0,
    jobs: Optional[int] = None,
) -> EjectionResult:
    """Compare strategies under ejection readout at two program sizes.

    The (size x strategy) shot loops fan out over the exec engine.  The
    initial compiles are pinned into the session cache *before* the
    fan-out, so the compile events in every run's overhead breakdown
    carry one stored wall-clock measurement at any worker count.
    """
    loss_model = LossModel.ejection_readout()
    cells = []
    labels = []
    for size in sizes:
        circuit = build_circuit(benchmark, size)
        cached_compile(circuit, Topology.square(GRID_SIDE, MID),
                       CompilerConfig(max_interaction_distance=MID))
        if any("small" in name for name in strategies):
            reduced = compiled_distance(MID)
            cached_compile(circuit, Topology.square(GRID_SIDE, reduced),
                           CompilerConfig(max_interaction_distance=reduced))
        for name in strategies:
            labels.append((circuit.num_qubits, name))
            cells.append(ShotSpec(
                strategy=name,
                benchmark=benchmark,
                program_size=size,
                grid_side=GRID_SIDE,
                mid=MID,
                max_shots=shots,
                seed=0,  # overwritten with the key-derived seed
                loss_model=loss_model,
            ))
    result = EjectionResult()
    for label, run_result in zip(labels, run_shot_grid_map(
        cells, experiment="ext-ejection", base_seed=base_seed_from(rng),
        jobs=jobs,
    )):
        result.runs[label] = run_result
    return result


SPEC = register_experiment(
    name="ext-ejection",
    runner=run,
    result_type=EjectionResult,
    quick=dict(shots=60),
)


def main() -> None:
    print(run(shots=60).format())


if __name__ == "__main__":
    main()
