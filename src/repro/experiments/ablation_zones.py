"""Ablation — restriction-zone shape and crosstalk-motivated extension.

§IV-A raises two zone design questions the main figures do not sweep:

* how sensitive are the results to the radius function ``f``?  We compare
  ``f(d) = 0`` (ideal), ``d/2`` (paper), and ``d`` (harsh);
* the paper suggests *artificially extending* zones to suppress crosstalk
  "by increasing serialization" — the ``zone_scale`` knob.  We quantify
  the depth price of scales 1.0, 1.5, and 2.0.

Depth must be monotone in both knobs; gate counts should be unaffected
(zones serialize, they do not reroute).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.api.serialize import serializable
from repro.core.config import CompilerConfig
from repro.exec.cache import cached_compile
from repro.exec.grid import grid_map
from repro.hardware.topology import Topology
from repro.utils.textplot import format_table
from repro.workloads.registry import build_circuit

GRID_SIDE = 10
RADIUS_FUNCTIONS = ("none", "half", "full")
ZONE_SCALES = (1.0, 1.5, 2.0)


@serializable
@dataclass(frozen=True)
class ZoneAblationPoint:
    benchmark: str
    size: int
    mid: float
    radius: str
    zone_scale: float
    gates: int
    depth: int


@dataclass
class ZoneAblationResult(ExperimentResult):
    points: List[ZoneAblationPoint] = field(default_factory=list)

    def select(
        self, benchmark: str, radius: str, zone_scale: float
    ) -> ZoneAblationPoint:
        for p in self.points:
            if (p.benchmark == benchmark and p.radius == radius
                    and abs(p.zone_scale - zone_scale) < 1e-9):
                return p
        raise KeyError((benchmark, radius, zone_scale))

    def format(self) -> str:
        lines = ["Ablation — Restriction Zone Shape and Scale",
                 "(same MID everywhere; zones change depth, not gates)", ""]
        rows = [
            (p.benchmark, p.size, f"{p.mid:g}", p.radius,
             f"{p.zone_scale:g}", p.gates, p.depth)
            for p in self.points
        ]
        lines.append(format_table(
            ["benchmark", "size", "MID", "f(d)", "scale", "gates", "depth"],
            rows,
        ))
        return "\n".join(lines)


@dataclass(frozen=True)
class ZoneTask:
    """One grid cell: compile one benchmark under one zone policy."""

    benchmark: str
    program_size: int
    mid: float
    radius: str
    zone_scale: float
    seed: int = 0  # stamped by grid_map; compilation is deterministic


def compile_zone_point(task: ZoneTask) -> ZoneAblationPoint:
    """Task function: one cached compile, one table row (module-level
    and picklable for spawn-based workers)."""
    circuit = build_circuit(task.benchmark, task.program_size)
    program = cached_compile(
        circuit,
        Topology.square(GRID_SIDE, task.mid),
        CompilerConfig(
            max_interaction_distance=task.mid,
            restriction_radius=task.radius,
            zone_scale=task.zone_scale,
            native_max_arity=2,
        ),
    )
    return ZoneAblationPoint(
        benchmark=task.benchmark,
        size=circuit.num_qubits,
        mid=task.mid,
        radius=task.radius,
        zone_scale=task.zone_scale,
        gates=program.gate_count(),
        depth=program.depth(),
    )


def run(
    benchmarks: Sequence[str] = ("qaoa", "qft-adder", "cuccaro"),
    program_size: int = 30,
    mid: float = 4.0,
    radius_functions: Sequence[str] = RADIUS_FUNCTIONS,
    zone_scales: Sequence[float] = ZONE_SCALES,
    jobs: Optional[int] = None,
) -> ZoneAblationResult:
    """Run the zone ablation as one task grid over the exec engine.

    The grid is deliberately non-rectangular: ``f(d) = 0`` zones have no
    extent, so only scale 1.0 is compiled for them.
    """
    cells = [
        ZoneTask(benchmark=benchmark, program_size=program_size, mid=mid,
                 radius=radius, zone_scale=scale)
        for benchmark in benchmarks
        for radius in radius_functions
        for scale in (zone_scales if radius != "none" else (1.0,))
    ]
    return ZoneAblationResult(points=grid_map(
        compile_zone_point, cells, experiment="ablation-zones", jobs=jobs,
    ))


SPEC = register_experiment(
    name="ablation-zones",
    runner=run,
    result_type=ZoneAblationResult,
    quick=dict(benchmarks=("qaoa",), program_size=20),
)


def main() -> None:
    print(run(benchmarks=("qaoa",), program_size=20).format())


if __name__ == "__main__":
    main()
