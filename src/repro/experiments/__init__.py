"""Experiment drivers: one module per figure in the paper's evaluation.

Each module exposes ``run(...) -> <Fig>Result`` (with paper-scale
defaults and knobs for quick runs) and registers an
:class:`repro.api.ExperimentSpec` at import time.  The import order
below is the curated presentation order (paper figures, then
validation, ablations, extensions) — it defines the registry's
iteration order and therefore what ``python -m repro run all`` emits.
The complete index lives in DESIGN.md §2.
"""

# Registration order is presentation order: keep these imports in
# figure order, not alphabetical.
from repro.experiments import fig3_gate_count  # noqa: F401  isort:skip
from repro.experiments import fig4_depth  # noqa: F401  isort:skip
from repro.experiments import fig5_serialization  # noqa: F401  isort:skip
from repro.experiments import fig6_multiqubit  # noqa: F401  isort:skip
from repro.experiments import fig7_success  # noqa: F401  isort:skip
from repro.experiments import fig8_program_size  # noqa: F401  isort:skip
from repro.experiments import fig10_loss_tolerance  # noqa: F401  isort:skip
from repro.experiments import fig11_shot_success  # noqa: F401  isort:skip
from repro.experiments import fig12_overhead  # noqa: F401  isort:skip
from repro.experiments import fig13_sensitivity  # noqa: F401  isort:skip
from repro.experiments import fig14_timeline  # noqa: F401  isort:skip
from repro.experiments import validation  # noqa: F401  isort:skip
from repro.experiments import ablation_zones  # noqa: F401  isort:skip
from repro.experiments import ablation_lookahead  # noqa: F401  isort:skip
from repro.experiments import ablation_margin  # noqa: F401  isort:skip
from repro.experiments import ext_ejection_readout  # noqa: F401  isort:skip
from repro.experiments import ext_device_scaling  # noqa: F401  isort:skip
from repro.experiments import ext_trapped_ion  # noqa: F401  isort:skip
from repro.experiments import ext_geometry  # noqa: F401  isort:skip
from repro.experiments import ext_validation_noisy  # noqa: F401  isort:skip
from repro.experiments import workloads  # noqa: F401  isort:skip

import sys as _sys

from repro.api.registry import all_experiments as _all_experiments

#: Legacy name -> module table, derived from the registry so the two
#: can never drift; prefer ``repro.api.all_experiments()``, which
#: returns the declarative specs in the same order.
ALL_EXPERIMENTS = {
    name: _sys.modules[spec.runner.__module__]
    for name, spec in _all_experiments().items()
}

__all__ = ["ALL_EXPERIMENTS"] + [
    "ablation_lookahead",
    "ablation_margin",
    "ablation_zones",
    "ext_device_scaling",
    "ext_ejection_readout",
    "ext_geometry",
    "ext_trapped_ion",
    "ext_validation_noisy",
    "fig3_gate_count",
    "fig4_depth",
    "fig5_serialization",
    "fig6_multiqubit",
    "fig7_success",
    "fig8_program_size",
    "fig10_loss_tolerance",
    "fig11_shot_success",
    "fig12_overhead",
    "fig13_sensitivity",
    "fig14_timeline",
    "validation",
    "workloads",
]
