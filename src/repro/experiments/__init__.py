"""Experiment drivers: one module per figure in the paper's evaluation.

Each module exposes ``run(...) -> <Fig>Result`` (with paper-scale
defaults and knobs for quick runs) and a ``main()`` that prints the
figure's rows/series.  The complete index lives in DESIGN.md §2.
"""

from repro.experiments import (
    ablation_lookahead,
    ablation_margin,
    ablation_zones,
    ext_device_scaling,
    ext_ejection_readout,
    ext_geometry,
    ext_trapped_ion,
    ext_validation_noisy,
    fig3_gate_count,
    fig4_depth,
    fig5_serialization,
    fig6_multiqubit,
    fig7_success,
    fig8_program_size,
    fig10_loss_tolerance,
    fig11_shot_success,
    fig12_overhead,
    fig13_sensitivity,
    fig14_timeline,
    validation,
)

ALL_EXPERIMENTS = {
    "fig3": fig3_gate_count,
    "fig4": fig4_depth,
    "fig5": fig5_serialization,
    "fig6": fig6_multiqubit,
    "fig7": fig7_success,
    "fig8": fig8_program_size,
    "fig10": fig10_loss_tolerance,
    "fig11": fig11_shot_success,
    "fig12": fig12_overhead,
    "fig13": fig13_sensitivity,
    "fig14": fig14_timeline,
    "validation": validation,
    "ablation-zones": ablation_zones,
    "ablation-lookahead": ablation_lookahead,
    "ablation-margin": ablation_margin,
    "ext-ejection": ext_ejection_readout,
    "ext-scaling": ext_device_scaling,
    "ext-trapped-ion": ext_trapped_ion,
    "ext-geometry": ext_geometry,
    "ext-noisy-validation": ext_validation_noisy,
}

__all__ = ["ALL_EXPERIMENTS"] + [
    "ablation_lookahead",
    "ablation_margin",
    "ablation_zones",
    "ext_device_scaling",
    "ext_ejection_readout",
    "ext_geometry",
    "ext_trapped_ion",
    "ext_validation_noisy",
    "fig3_gate_count",
    "fig4_depth",
    "fig5_serialization",
    "fig6_multiqubit",
    "fig7_success",
    "fig8_program_size",
    "fig10_loss_tolerance",
    "fig11_shot_success",
    "fig12_overhead",
    "fig13_sensitivity",
    "fig14_timeline",
    "validation",
]
