"""§III-A compiler validation (the paper's Qiskit cross-check, offline).

The paper validates its compiler at MID 1 with no restriction zones
against Qiskit's lookahead compiler on one serial and one parallel
benchmark.  Qiskit is unavailable offline; we validate more strongly:

1. **semantic equivalence** — the compiled schedule, replayed through the
   statevector simulator, reproduces the source circuit exactly (up to
   layout) on small devices;
2. **sanity bounds** — at MID 1 the compiled gate count is the logical
   gate count plus 3x the SWAPs, and at full-device MID the compiler
   inserts zero SWAPs (matching the paper's all-to-all observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.api.serialize import serializable
from repro.core.compiler import compile_circuit
from repro.core.config import CompilerConfig
from repro.core.validation import check_compiled
from repro.hardware.grid import Grid
from repro.hardware.topology import Topology
from repro.utils.textplot import format_table
from repro.workloads.registry import build_circuit


@serializable
@dataclass
class ValidationRow:
    benchmark: str
    size: int
    mid: float
    equivalent: bool
    gates: int
    swaps: int
    depth: int


@dataclass
class ValidationResult(ExperimentResult):
    rows: List[ValidationRow] = field(default_factory=list)

    @property
    def all_equivalent(self) -> bool:
        return all(r.equivalent for r in self.rows)

    def format(self) -> str:
        lines = ["Compiler validation (MID-1/no-zone config vs exact "
                 "simulation)", ""]
        table = [
            (r.benchmark, r.size, f"{r.mid:g}", r.equivalent, r.gates,
             r.swaps, r.depth)
            for r in self.rows
        ]
        lines.append(format_table(
            ["benchmark", "size", "MID", "equivalent", "gates", "swaps",
             "depth"],
            table,
        ))
        lines.append("")
        lines.append(f"all equivalent: {self.all_equivalent}")
        return "\n".join(lines)


def run() -> ValidationResult:
    """Validate the serial (BV) and parallel (CNU) benchmarks on small
    devices, at MID 1 (SC-like) and with zones at MID 2."""
    result = ValidationResult()
    cases = [
        ("bv", 6, 1.0, CompilerConfig.superconducting_like()),
        ("cnu", 6, 1.0, CompilerConfig.superconducting_like()),
        ("bv", 6, 2.0, CompilerConfig(max_interaction_distance=2.0)),
        ("cnu", 6, 2.0, CompilerConfig(max_interaction_distance=2.0)),
        ("cuccaro", 6, 2.0, CompilerConfig(max_interaction_distance=2.0)),
    ]
    for benchmark, size, mid, config in cases:
        circuit = build_circuit(benchmark, size)
        topology = Topology(Grid(3, 3), max_interaction_distance=mid)
        program = compile_circuit(circuit, topology, config)
        result.rows.append(
            ValidationRow(
                benchmark=benchmark,
                size=circuit.num_qubits,
                mid=mid,
                equivalent=check_compiled(program),
                gates=program.gate_count(),
                swaps=program.swap_count,
                depth=program.depth(),
            )
        )
    return result


SPEC = register_experiment(
    name="validation",
    runner=run,
    result_type=ValidationResult,
)


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
