"""§III-A compiler validation (the paper's Qiskit cross-check, offline).

The paper validates its compiler at MID 1 with no restriction zones
against Qiskit's lookahead compiler on one serial and one parallel
benchmark.  Qiskit is unavailable offline; we validate more strongly:

1. **semantic equivalence** — the compiled schedule, replayed through the
   statevector simulator, reproduces the source circuit exactly (up to
   layout) on small devices;
2. **sanity bounds** — at MID 1 the compiled gate count is the logical
   gate count plus 3x the SWAPs, and at full-device MID the compiler
   inserts zero SWAPs (matching the paper's all-to-all observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.api.serialize import serializable
from repro.core.config import CompilerConfig
from repro.core.validation import check_compiled
from repro.exec.cache import cached_compile
from repro.exec.grid import grid_map
from repro.hardware.grid import Grid
from repro.hardware.topology import Topology
from repro.utils.textplot import format_table
from repro.workloads.registry import build_circuit


@serializable
@dataclass
class ValidationRow:
    benchmark: str
    size: int
    mid: float
    equivalent: bool
    gates: int
    swaps: int
    depth: int


@dataclass
class ValidationResult(ExperimentResult):
    rows: List[ValidationRow] = field(default_factory=list)

    @property
    def all_equivalent(self) -> bool:
        return all(r.equivalent for r in self.rows)

    def format(self) -> str:
        lines = ["Compiler validation (MID-1/no-zone config vs exact "
                 "simulation)", ""]
        table = [
            (r.benchmark, r.size, f"{r.mid:g}", r.equivalent, r.gates,
             r.swaps, r.depth)
            for r in self.rows
        ]
        lines.append(format_table(
            ["benchmark", "size", "MID", "equivalent", "gates", "swaps",
             "depth"],
            table,
        ))
        lines.append("")
        lines.append(f"all equivalent: {self.all_equivalent}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ValidationTask:
    """One grid cell: compile and cross-check one benchmark instance."""

    benchmark: str
    size: int
    mid: float
    config_kind: str  # "sc-like" or "mid"
    seed: int = 0  # stamped by grid_map; the check is deterministic


def validate_case(task: ValidationTask) -> ValidationRow:
    """Task function: one cached compile plus the exact-simulation
    equivalence check (module-level and picklable for spawn workers)."""
    config = (CompilerConfig.superconducting_like()
              if task.config_kind == "sc-like"
              else CompilerConfig(max_interaction_distance=task.mid))
    circuit = build_circuit(task.benchmark, task.size)
    topology = Topology(Grid(3, 3), max_interaction_distance=task.mid)
    program = cached_compile(circuit, topology, config)
    return ValidationRow(
        benchmark=task.benchmark,
        size=circuit.num_qubits,
        mid=task.mid,
        equivalent=check_compiled(program),
        gates=program.gate_count(),
        swaps=program.swap_count,
        depth=program.depth(),
    )


def run(jobs: Optional[int] = None) -> ValidationResult:
    """Validate the serial (BV) and parallel (CNU) benchmarks on small
    devices, at MID 1 (SC-like) and with zones at MID 2 — one task grid
    over the exec engine."""
    cells = [
        ValidationTask("bv", 6, 1.0, "sc-like"),
        ValidationTask("cnu", 6, 1.0, "sc-like"),
        ValidationTask("bv", 6, 2.0, "mid"),
        ValidationTask("cnu", 6, 2.0, "mid"),
        ValidationTask("cuccaro", 6, 2.0, "mid"),
    ]
    return ValidationResult(rows=grid_map(
        validate_case, cells, experiment="validation", jobs=jobs,
    ))


SPEC = register_experiment(
    name="validation",
    runner=run,
    result_type=ValidationResult,
)


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
