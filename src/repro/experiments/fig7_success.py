"""Fig 7 — program success rate vs two-qubit gate error.

50-qubit programs (49-effective for CNU), NA at MID 3 with native
multiqubit gates vs the SC baseline, swept over two-qubit physical error
rates from 1e-5 to 1e-1.  Lower program error is better; the paper's
claim is that NA diverges from the all-noise outcome at *higher* physical
error than SC, because its compiled programs contain far fewer two-qubit
gate opportunities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.architectures import (
    neutral_atom_arch,
    metrics_grid_map,
    superconducting_arch,
)
from repro.analysis.success import (
    SuccessComparison,
    compare_architectures,
    error_sweep,
)
from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.experiments.common import all_benchmarks
from repro.utils.textplot import format_series

#: The paper's Fig 7 program size and NA interaction distance.
PROGRAM_SIZE = 50
NA_MID = 3.0


@dataclass
class Fig7Result(ExperimentResult):
    comparisons: Dict[str, SuccessComparison] = field(default_factory=dict)

    def format(self) -> str:
        lines = ["Fig 7 — Success Rate Comparison (program error vs 2q error)",
                 f"(size ~{PROGRAM_SIZE}, NA MID {NA_MID:g} vs SC MID 1)", ""]
        for name, cmp in self.comparisons.items():
            xs = [e for e, _ in cmp.na_curve]
            lines.append(format_series(
                f"  {name} NA ", xs, [err for _, err in cmp.na_curve]))
            lines.append(format_series(
                f"  {name} SC ", xs, [err for _, err in cmp.sc_curve]))
            na_div, sc_div = cmp.divergence_error()
            lines.append(
                f"  {name}: diverges from all-noise at 2q error "
                f"NA<={na_div:.2e} vs SC<={sc_div:.2e}"
            )
            lines.append("")
        return "\n".join(lines)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    program_size: int = PROGRAM_SIZE,
    na_mid: float = NA_MID,
    error_points: int = 17,
    jobs: Optional[int] = None,
) -> Fig7Result:
    """Regenerate Fig 7.

    The (benchmark x architecture) compile grid fans out over the sweep
    engine; the error sweep itself is a cheap serial pass over the
    cached metrics.
    """
    benchmarks = list(benchmarks) if benchmarks is not None else all_benchmarks()
    na = neutral_atom_arch(mid=na_mid, native_max_arity=3)
    sc = superconducting_arch()
    errors = error_sweep(error_points)
    result = Fig7Result()
    metrics_grid_map(
        [(benchmark, program_size, arch, 0)
         for benchmark in benchmarks for arch in (na, sc)],
        jobs=jobs,
    )
    for benchmark in benchmarks:
        result.comparisons[benchmark] = compare_architectures(
            benchmark, program_size, na, sc, errors
        )
    return result


SPEC = register_experiment(
    name="fig7",
    runner=run,
    result_type=Fig7Result,
    quick=dict(program_size=24, error_points=9),
)


def main() -> None:
    print(run(error_points=9).format())


if __name__ == "__main__":
    main()
