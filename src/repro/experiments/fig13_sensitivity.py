"""Fig 13 — sensitivity to the atom-loss rate.

For Compile Small + Reroute, sweep a technology-improvement factor over
the loss rates (0.1x worse to 100x better than today's 2% measurement /
0.68% vacuum loss) and measure the successful shots achieved between
consecutive reloads.  The paper's observation — a 10x loss improvement
yields ~10x more shots per reload — falls out of the geometric structure
of the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.exec.keys import derive_seed, task_key
from repro.hardware.loss import LossModel
from repro.loss.runner import ShotSpec, run_shot_specs
from repro.utils.rng import RngLike, base_seed_from
from repro.utils.textplot import format_series

GRID_SIDE = 10
PROGRAM_SIZE = 30
FIG13_MIDS = (3.0, 4.0, 5.0, 6.0)


def improvement_factors(points: int = 7) -> List[float]:
    """Log-spaced improvement factors, 0.1x (worse) to 100x (better)."""
    return list(np.logspace(-1, 2, points))


@dataclass
class Fig13Result(ExperimentResult):
    #: (mid, factor) -> mean successful shots between reloads.
    shots_before_reload: Dict[Tuple[float, float], float] = field(
        default_factory=dict
    )

    def format(self) -> str:
        lines = ["Fig 13 — Successful Shots Before Reload vs Loss-Rate "
                 "Improvement (Compile Small + Reroute)", ""]
        mids = sorted({m for m, _ in self.shots_before_reload})
        for mid in mids:
            factors = sorted(
                f for m, f in self.shots_before_reload if abs(m - mid) < 1e-9
            )
            ys = [self.shots_before_reload[(mid, f)] for f in factors]
            lines.append(format_series(f"  MID {mid:g}", factors, ys))
        return "\n".join(lines)

    def series(self, mid: float) -> List[Tuple[float, float]]:
        return sorted(
            (f, v) for (m, f), v in self.shots_before_reload.items()
            if abs(m - mid) < 1e-9
        )


def run(
    benchmark: str = "cnu",
    mids: Sequence[float] = FIG13_MIDS,
    factors: Sequence[float] = None,
    shots_per_run: int = 400,
    program_size: int = PROGRAM_SIZE,
    rng: RngLike = 0,
    jobs: Optional[int] = None,
) -> Fig13Result:
    """Regenerate Fig 13 (the (MID x factor) grid via the sweep engine)."""
    factors = list(factors) if factors is not None else improvement_factors()
    base_seed = base_seed_from(rng)
    result = Fig13Result()
    cells = []
    for mid in mids:
        for factor in factors:
            key = task_key(experiment="fig13", benchmark=benchmark,
                           mid=float(mid), factor=float(factor),
                           program_size=program_size, shots=shots_per_run)
            cells.append((mid, factor, ShotSpec(
                strategy="c. small+reroute",
                benchmark=benchmark,
                program_size=program_size,
                grid_side=GRID_SIDE,
                mid=float(mid),
                max_shots=shots_per_run,
                seed=derive_seed(key, base=base_seed),
                loss_model=LossModel.lossless_readout(
                    improvement_factor=factor
                ),
            )))
    for (mid, factor, _), run_result in zip(
        cells, run_shot_specs([spec for _, _, spec in cells], jobs=jobs)
    ):
        result.shots_before_reload[(mid, factor)] = (
            run_result.mean_shots_between_reloads
        )
    return result


SPEC = register_experiment(
    name="fig13",
    runner=run,
    result_type=Fig13Result,
    quick=dict(mids=(4.0,), factors=(1.0, 10.0), shots_per_run=150,
               program_size=20),
)


def main() -> None:
    print(run(mids=(3.0, 5.0), factors=(0.1, 1.0, 10.0), shots_per_run=150).format())


if __name__ == "__main__":
    main()
