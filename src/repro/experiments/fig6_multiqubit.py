"""Fig 6 — native multiqubit gates vs decomposition.

CNU and Cuccaro are written natively in Toffoli gates.  Compiling them
with ``native_max_arity=3`` executes each Toffoli in one Rydberg step;
with ``native_max_arity=2`` every Toffoli is lowered to its 6-CNOT
decomposition before mapping.  The figure plots gate count and depth vs
MID for both modes — native wins by a large margin everywhere.

At MID 1 three atoms cannot be pairwise within range, so the "native"
configuration also decomposes there (the paper makes the same point in
§IV-B); the curves therefore coincide at MID 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.architectures import compiled_metrics, metrics_grid_map
from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.api.serialize import serializable
from repro.experiments.common import mids_or_default, na_arch_for_mid
from repro.utils.textplot import format_table


@serializable
@dataclass(frozen=True)
class MultiqubitPoint:
    benchmark: str
    size: int
    mid: float
    native_gates: int
    decomposed_gates: int
    native_depth: int
    decomposed_depth: int

    @property
    def gate_ratio(self) -> float:
        return self.decomposed_gates / max(1, self.native_gates)

    @property
    def depth_ratio(self) -> float:
        return self.decomposed_depth / max(1, self.native_depth)


@dataclass
class Fig6Result(ExperimentResult):
    points: List[MultiqubitPoint] = field(default_factory=list)

    def format(self) -> str:
        lines = ["Fig 6 — Native 3-Qubit Gates vs Decomposition",
                 "(solid = native Toffoli, dashed = decomposed to 2q)", ""]
        rows = [
            (p.benchmark, p.size, f"{p.mid:g}", p.native_gates,
             p.decomposed_gates, f"{p.gate_ratio:.2f}x",
             p.native_depth, p.decomposed_depth, f"{p.depth_ratio:.2f}x")
            for p in self.points
        ]
        lines.append(format_table(
            ["benchmark", "size", "MID", "gates(nat)", "gates(dec)",
             "gate ratio", "depth(nat)", "depth(dec)", "depth ratio"],
            rows,
        ))
        return "\n".join(lines)

    def select(self, benchmark: str, size: int, mid: float) -> MultiqubitPoint:
        for p in self.points:
            if (p.benchmark == benchmark and p.size == size
                    and abs(p.mid - mid) < 1e-9):
                return p
        raise KeyError((benchmark, size, mid))


def run(
    sizes: Optional[Sequence[int]] = None,
    mids: Optional[Sequence[float]] = None,
    benchmarks: Sequence[str] = ("cnu", "cuccaro"),
) -> Fig6Result:
    """Regenerate Fig 6 (paper sizes: ~19..94 for CNU, ~14..94 Cuccaro)."""
    sizes = list(sizes) if sizes is not None else [20, 40, 60, 94]
    mids = mids_or_default(mids)
    result = Fig6Result()
    metrics_grid_map(
        (benchmark, size, na_arch_for_mid(mid, native_max_arity=arity), 0)
        for benchmark in benchmarks
        for size in sizes
        for mid in [1.0] + list(mids)
        for arity in (3, 2)
    )
    for benchmark in benchmarks:
        for size in sizes:
            for mid in [1.0] + list(mids):
                native = compiled_metrics(
                    benchmark, size, na_arch_for_mid(mid, native_max_arity=3)
                )
                decomposed = compiled_metrics(
                    benchmark, size, na_arch_for_mid(mid, native_max_arity=2)
                )
                result.points.append(
                    MultiqubitPoint(
                        benchmark=benchmark,
                        size=native.num_qubits,
                        mid=mid,
                        native_gates=native.gate_count,
                        decomposed_gates=decomposed.gate_count,
                        native_depth=native.depth,
                        decomposed_depth=decomposed.depth,
                    )
                )
    return result


SPEC = register_experiment(
    name="fig6",
    runner=run,
    result_type=Fig6Result,
    quick=dict(sizes=(16, 30), mids=(2.0, 3.0)),
)


def main() -> None:
    print(run(sizes=(20, 40), mids=(2.0, 3.0, 5.0)).format())


if __name__ == "__main__":
    main()
