"""Extension — device-size scaling of the interaction-distance benefit.

§IV-A predicts: "For larger devices, the curves will be similar, however,
requiring increasingly larger interaction distances to obtain the
minimum.  The shape of the curve will be more elongated, related directly
to the average distance between qubits."

This experiment compiles a benchmark sized to a fixed fraction of the
device on grids of growing side length and records, per device, the
smallest MID achieving within 5% of the all-to-all (minimum) gate count —
the "saturation MID".  It should grow with device size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.core.config import CompilerConfig
from repro.exec.cache import cached_compile
from repro.exec.grid import grid_map
from repro.hardware.topology import Topology
from repro.utils.textplot import format_series, format_table
from repro.workloads.registry import build_circuit


@dataclass
class ScalingResult(ExperimentResult):
    #: grid side -> [(mid, gate count)].
    curves: Dict[int, List[Tuple[float, int]]] = field(default_factory=dict)
    #: grid side -> smallest MID within tolerance of the minimum.
    saturation_mid: Dict[int, float] = field(default_factory=dict)

    def format(self) -> str:
        lines = ["Extension — Device Scaling of Long-Range Benefit", ""]
        for side in sorted(self.curves):
            xs = [m for m, _ in self.curves[side]]
            ys = [g for _, g in self.curves[side]]
            lines.append(format_series(f"  {side}x{side}", xs, ys))
        lines.append("")
        rows = [(f"{side}x{side}", f"{mid:g}")
                for side, mid in sorted(self.saturation_mid.items())]
        lines.append(format_table(["device", "saturation MID"], rows))
        return "\n".join(lines)


@dataclass(frozen=True)
class ScalingTask:
    """One grid cell: compile one device-size/MID combination."""

    benchmark: str
    grid_side: int
    program_size: int
    mid: float
    seed: int = 0  # stamped by grid_map; compilation is deterministic


def compile_gate_count(task: ScalingTask) -> int:
    """Task function: one cached compile, one curve sample (module-level
    and picklable for spawn-based workers)."""
    program = cached_compile(
        build_circuit(task.benchmark, task.program_size),
        Topology.square(task.grid_side, task.mid),
        CompilerConfig(max_interaction_distance=task.mid,
                       native_max_arity=2),
    )
    return program.gate_count()


def _device_mids(side: int) -> List[float]:
    """The MID sweep for one device: every integer radius up to (and
    including) the device diagonal."""
    max_mid = math.hypot(side - 1, side - 1)
    return sorted({float(m) for m in range(1, int(max_mid) + 1)} | {max_mid})


def run(
    benchmark: str = "bv",
    grid_sides: Sequence[int] = (6, 10, 14),
    fill_fraction: float = 0.4,
    tolerance: float = 0.05,
    jobs: Optional[int] = None,
) -> ScalingResult:
    """Measure the saturation MID on each device size.

    The program occupies ``fill_fraction`` of each device, so bigger
    devices host bigger programs — the regime where the paper expects
    long distances to matter more.  Every (device x MID) compile fans
    out as one task grid; the curve/saturation reduction is serial.
    """
    cells = [
        ScalingTask(benchmark=benchmark, grid_side=side,
                    program_size=max(4, int(fill_fraction * side * side)),
                    mid=mid)
        for side in grid_sides
        for mid in _device_mids(side)
    ]
    gate_counts = iter(grid_map(
        compile_gate_count, cells, experiment="ext-scaling", jobs=jobs,
    ))
    result = ScalingResult()
    for side in grid_sides:
        curve = [(mid, next(gate_counts)) for mid in _device_mids(side)]
        result.curves[side] = curve
        minimum = min(g for _, g in curve)
        for mid, gates in curve:
            if gates <= minimum * (1.0 + tolerance):
                result.saturation_mid[side] = mid
                break
    return result


SPEC = register_experiment(
    name="ext-scaling",
    runner=run,
    result_type=ScalingResult,
    quick=dict(grid_sides=(6, 10)),
)


def main() -> None:
    print(run(grid_sides=(6, 10)).format())


if __name__ == "__main__":
    main()
