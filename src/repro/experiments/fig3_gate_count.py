"""Fig 3 — gate-count savings from interaction distance.

Left panel: per-benchmark mean % reduction in post-compilation gate count
at MID in {2, 3, 4, 5, 8, 13}, relative to the MID-1 baseline, averaged
over program sizes.  Right panel: the BV gate-count-vs-MID curves for a
range of program sizes.

Everything is compiled to 1- and 2-qubit gates, exactly as the paper's
§IV-A experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.architectures import compiled_metrics, metrics_grid_map
from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.experiments.common import (
    SavingsRow,
    all_benchmarks,
    default_sizes,
    mids_or_default,
    na_arch_for_mid,
    savings_over_baseline,
)
from repro.utils.textplot import format_series, format_table, percent


@dataclass
class Fig3Result(ExperimentResult):
    """Bar rows (savings per benchmark x MID) plus the BV line series."""

    bars: List[SavingsRow] = field(default_factory=list)
    #: BV gate count by size: {size: [(mid, gate_count), ...]}.
    bv_series: Dict[int, List[Tuple[float, int]]] = field(default_factory=dict)

    def format(self) -> str:
        lines = ["Fig 3 — Gate Count Savings from Interaction Distance",
                 "(reduction vs MID=1 baseline, averaged over sizes)", ""]
        rows = [
            (r.benchmark, f"{r.mid:g}", percent(r.mean_saving),
             percent(r.std_saving))
            for r in self.bars
        ]
        lines.append(format_table(
            ["benchmark", "MID", "mean saving", "std"], rows))
        if self.bv_series:
            lines.append("")
            lines.append("BV post-compilation gate count vs MID:")
            for size in sorted(self.bv_series):
                xs = [m for m, _ in self.bv_series[size]]
                ys = [g for _, g in self.bv_series[size]]
                lines.append(format_series(f"  bv[{size}]", xs, ys))
        return "\n".join(lines)

    def saving(self, benchmark: str, mid: float) -> float:
        for row in self.bars:
            if row.benchmark == benchmark and abs(row.mid - mid) < 1e-9:
                return row.mean_saving
        raise KeyError((benchmark, mid))


def run(
    benchmarks: Optional[Sequence[str]] = None,
    mids: Optional[Sequence[float]] = None,
    max_size: int = 100,
    size_step: int = 10,
    bv_line_sizes: Optional[Sequence[int]] = None,
) -> Fig3Result:
    """Regenerate Fig 3.

    ``max_size``/``size_step`` control the size grid (the paper uses sizes
    up to 100); pass smaller values for a quick run.
    """
    benchmarks = list(benchmarks) if benchmarks is not None else all_benchmarks()
    mids = mids_or_default(mids)
    result = Fig3Result()

    line_sizes = (
        list(bv_line_sizes)
        if bv_line_sizes is not None
        else [s for s in (15, 27, 51, 75, 99) if s <= max_size]
    )
    line_mids = [1.0] + mids
    # One prewarm for the whole figure (bars for every benchmark + the
    # BV line series): a single pool spin-up instead of one per
    # benchmark inside savings_over_baseline.
    savings_archs = [na_arch_for_mid(mid) for mid in [1.0] + mids]
    metrics_grid_map(
        [(benchmark, size, arch, 0)
         for benchmark in benchmarks
         for size in default_sizes(benchmark, max_size, size_step)
         for arch in savings_archs]
        + [("bv", size, na_arch_for_mid(mid), 0)
           for size in line_sizes for mid in line_mids]
    )

    for benchmark in benchmarks:
        sizes = default_sizes(benchmark, max_size, size_step)
        result.bars.extend(
            savings_over_baseline(benchmark, sizes, mids, metric="gate_count")
        )
    for size in line_sizes:
        series = []
        for mid in line_mids:
            metrics = compiled_metrics("bv", size, na_arch_for_mid(mid))
            series.append((mid, metrics.gate_count))
        result.bv_series[size] = series
    return result


SPEC = register_experiment(
    name="fig3",
    runner=run,
    result_type=Fig3Result,
    quick=dict(max_size=30, size_step=10, mids=(2.0, 3.0, 5.0),
               bv_line_sizes=(15, 27)),
)


def main() -> None:
    print(run(max_size=60, size_step=15).format())


if __name__ == "__main__":
    main()
