"""Fig 4 — depth savings from interaction distance.

Left panel: per-benchmark mean % reduction in post-compilation depth vs
the MID-1 baseline.  Right panel: QFT-Adder depth vs MID for several
sizes — the benchmark the paper highlights because its high parallelism
makes restriction-zone serialization visible (some benefit is lost at
large MIDs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.architectures import compiled_metrics, metrics_grid_map
from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.experiments.common import (
    SavingsRow,
    all_benchmarks,
    default_sizes,
    mids_or_default,
    na_arch_for_mid,
    savings_over_baseline,
)
from repro.utils.textplot import format_series, format_table, percent


@dataclass
class Fig4Result(ExperimentResult):
    bars: List[SavingsRow] = field(default_factory=list)
    #: QFT-Adder depth by size: {size: [(mid, depth), ...]}.
    qft_series: Dict[int, List[Tuple[float, int]]] = field(default_factory=dict)

    def format(self) -> str:
        lines = ["Fig 4 — Depth Savings from Interaction Distance",
                 "(reduction vs MID=1 baseline, averaged over sizes)", ""]
        rows = [
            (r.benchmark, f"{r.mid:g}", percent(r.mean_saving),
             percent(r.std_saving))
            for r in self.bars
        ]
        lines.append(format_table(
            ["benchmark", "MID", "mean saving", "std"], rows))
        if self.qft_series:
            lines.append("")
            lines.append("QFT-Adder post-compilation depth vs MID:")
            for size in sorted(self.qft_series):
                xs = [m for m, _ in self.qft_series[size]]
                ys = [d for _, d in self.qft_series[size]]
                lines.append(format_series(f"  qft-adder[{size}]", xs, ys))
        return "\n".join(lines)

    def saving(self, benchmark: str, mid: float) -> float:
        for row in self.bars:
            if row.benchmark == benchmark and abs(row.mid - mid) < 1e-9:
                return row.mean_saving
        raise KeyError((benchmark, mid))


def run(
    benchmarks: Optional[Sequence[str]] = None,
    mids: Optional[Sequence[float]] = None,
    max_size: int = 100,
    size_step: int = 10,
    qft_line_sizes: Optional[Sequence[int]] = None,
) -> Fig4Result:
    """Regenerate Fig 4."""
    benchmarks = list(benchmarks) if benchmarks is not None else all_benchmarks()
    mids = mids_or_default(mids)
    result = Fig4Result()

    line_sizes = (
        list(qft_line_sizes)
        if qft_line_sizes is not None
        else [s for s in (10, 26, 42, 66) if s <= max_size]
    )
    line_mids = [1.0] + mids
    # One prewarm for the whole figure, not one pool per benchmark.
    savings_archs = [na_arch_for_mid(mid) for mid in [1.0] + mids]
    metrics_grid_map(
        [(benchmark, size, arch, 0)
         for benchmark in benchmarks
         for size in default_sizes(benchmark, max_size, size_step)
         for arch in savings_archs]
        + [("qft-adder", size, na_arch_for_mid(mid), 0)
           for size in line_sizes for mid in line_mids]
    )

    for benchmark in benchmarks:
        sizes = default_sizes(benchmark, max_size, size_step)
        result.bars.extend(
            savings_over_baseline(benchmark, sizes, mids, metric="depth")
        )
    for size in line_sizes:
        series = []
        for mid in line_mids:
            metrics = compiled_metrics("qft-adder", size, na_arch_for_mid(mid))
            series.append((mid, metrics.depth))
        result.qft_series[size] = series
    return result


SPEC = register_experiment(
    name="fig4",
    runner=run,
    result_type=Fig4Result,
    quick=dict(max_size=30, size_step=10, mids=(2.0, 3.0, 5.0),
               qft_line_sizes=(10, 26)),
)


def main() -> None:
    print(run(max_size=60, size_step=15).format())


if __name__ == "__main__":
    main()
