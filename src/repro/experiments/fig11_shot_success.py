"""Fig 11 — shot success rate degradation with accumulating holes.

For the program-modifying strategies (reroute, compile-small+reroute,
recompile), trace the expected §V shot success as atoms are lost one by
one.  Fixup SWAPs (or recompilation's extra routing) erode success; full
recompilation is the rough upper bound because it replans globally.

The two-qubit error rate is calibrated per benchmark so the clean program
starts near 0.6 success, matching the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import ProgramMetrics
from repro.analysis.success import calibrate_two_qubit_error
from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.core.config import CompilerConfig
from repro.exec.keys import derive_seed, task_key
from repro.hardware.noise import NoiseModel
from repro.hardware.topology import Topology
from repro.loss.strategies import make_strategy
from repro.utils.rng import RngLike, base_seed_from, ensure_rng
from repro.utils.textplot import format_series
from repro.workloads.registry import build_circuit

GRID_SIDE = 10
PROGRAM_SIZE = 30
FIG11_STRATEGIES = ("reroute", "c. small+reroute", "recompile")
FIG11_MIDS = (2.0, 3.0, 5.0)
TARGET_BASE_SUCCESS = 0.6


@dataclass
class Fig11Result(ExperimentResult):
    #: (benchmark, strategy, mid) -> [success after h holes, h = 0..N].
    traces: Dict[Tuple[str, str, float], List[float]] = field(
        default_factory=dict
    )
    calibrated_errors: Dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        lines = ["Fig 11 — Shot Success Rate Drop vs Number of Holes",
                 f"(2q error calibrated for ~{TARGET_BASE_SUCCESS} "
                 "base success)", ""]
        for (benchmark, strategy, mid), trace in sorted(self.traces.items()):
            xs = list(range(len(trace)))
            lines.append(format_series(
                f"  {benchmark} {strategy} MID{mid:g}", xs, trace))
        lines.append("")
        for benchmark, err in self.calibrated_errors.items():
            lines.append(f"calibrated 2q error ({benchmark}): {err:.3e}")
        return "\n".join(lines)

    def trace(self, benchmark: str, strategy: str, mid: float) -> List[float]:
        return self.traces[(benchmark, strategy, mid)]


def _success_trace(
    strategy_name: str,
    benchmark: str,
    mid: float,
    noise: NoiseModel,
    max_holes: int,
    program_size: int,
    rng,
) -> List[float]:
    """Expected shot success after each of ``max_holes`` random losses.

    Losses the strategy cannot cope with end the trace (the paper's curves
    likewise stop where reloads become mandatory).
    """
    circuit = build_circuit(benchmark, program_size)
    topology = Topology.square(GRID_SIDE, mid)
    strategy = make_strategy(strategy_name, noise=noise)
    strategy.begin(circuit, topology, CompilerConfig(max_interaction_distance=mid))
    trace = [strategy.shot_success_rate(noise)]
    # Incrementally maintained active list (strategies never mutate
    # occupancy); the scalar ``integers`` draws are untouched, so the
    # stream matches the historical per-iteration rebuild exactly.
    active = topology.active_sites()
    for _ in range(max_holes):
        index = int(rng.integers(len(active)))
        site = int(active[index])
        del active[index]
        topology.remove_atom(site)
        outcome = strategy.on_loss(site)
        if not outcome.coped:
            break
        trace.append(strategy.shot_success_rate(noise))
    return trace


def _trace_task(task: dict) -> List[float]:
    """Sweep-engine worker: pointwise-averaged traces for one cell."""
    noise = NoiseModel.neutral_atom(two_qubit_error=task["two_qubit_error"])
    traces = []
    for trial_seed in task["trial_seeds"]:
        traces.append(_success_trace(
            task["strategy"], task["benchmark"], task["mid"], noise,
            task["max_holes"], task["program_size"], ensure_rng(trial_seed),
        ))
    length = max(len(t) for t in traces)
    averaged = []
    for i in range(length):
        values = [t[i] for t in traces if i < len(t)]
        averaged.append(sum(values) / len(values))
    return averaged


def run(
    benchmarks: Sequence[str] = ("cnu", "cuccaro"),
    strategies: Sequence[str] = FIG11_STRATEGIES,
    mids: Sequence[float] = FIG11_MIDS,
    max_holes: int = 20,
    program_size: int = PROGRAM_SIZE,
    trials: int = 3,
    rng: RngLike = 0,
    jobs: Optional[int] = None,
) -> Fig11Result:
    """Regenerate Fig 11 (traces averaged pointwise over trials)."""
    from repro.analysis.architectures import (
        compiled_metrics,
        neutral_atom_arch,
        prewarm_metrics,
    )
    from repro.exec.engine import run_tasks

    base_seed = base_seed_from(rng)
    result = Fig11Result()
    # Calibrate on the MID-3 native compilation, as a representative
    # anchor for "about 0.6 success to begin with".
    anchor_arch = neutral_atom_arch(mid=3.0, native_max_arity=3)
    prewarm_metrics(
        (benchmark, program_size, anchor_arch, 0) for benchmark in benchmarks
    )
    for benchmark in benchmarks:
        anchor = compiled_metrics(benchmark, program_size, anchor_arch)
        result.calibrated_errors[benchmark] = calibrate_two_qubit_error(
            anchor, NoiseModel.neutral_atom, TARGET_BASE_SUCCESS
        )

    tasks = []
    for benchmark in benchmarks:
        for strategy_name in strategies:
            for mid in mids:
                if "small" in strategy_name and mid <= 2.0:
                    continue
                key = task_key(experiment="fig11", benchmark=benchmark,
                               strategy=strategy_name, mid=float(mid),
                               max_holes=max_holes,
                               program_size=program_size)
                tasks.append({
                    "benchmark": benchmark,
                    "strategy": strategy_name,
                    "mid": float(mid),
                    "max_holes": max_holes,
                    "program_size": program_size,
                    "two_qubit_error": result.calibrated_errors[benchmark],
                    "trial_seeds": [
                        derive_seed(f"{key};trial={t}", base=base_seed)
                        for t in range(trials)
                    ],
                })
    for task, averaged in zip(tasks, run_tasks(_trace_task, tasks, jobs=jobs)):
        result.traces[
            (task["benchmark"], task["strategy"], task["mid"])
        ] = averaged
    return result


SPEC = register_experiment(
    name="fig11",
    runner=run,
    result_type=Fig11Result,
    quick=dict(benchmarks=("cnu",), mids=(3.0,), max_holes=10,
               program_size=20, trials=2),
)


def main() -> None:
    print(run(benchmarks=("cnu",), mids=(3.0,), max_holes=10, trials=2).format())


if __name__ == "__main__":
    main()
