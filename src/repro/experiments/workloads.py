"""Workload experiments: user-supplied and generated programs.

The §III-B benchmark suite is fixed; production traffic is not.  These
drivers grow scenario coverage past the paper without a hand-written
driver per program:

* ``workload-metrics`` — compile **any workload reference** (a named
  family, ``family@size``, or an uploaded ``circuit:<digest>``) across a
  MID sweep.  This is the experiment behind ``repro run workload-metrics
  --circuit file.qasm``: an uploaded program rides the full stack —
  store replay, in-flight dedup, sweeps, fleet — exactly like a named
  benchmark.
* ``gen-qaoa`` / ``gen-adder`` / ``gen-random`` — parameterized
  generated families (QAOA at arbitrary depth, adders at arbitrary
  width, random-structure programs) registered as first-class
  :class:`~repro.api.registry.ExperimentSpec`\\ s.

All four compile through the session cache (``cached_compile``) and
report the same per-MID metrics table, so results are comparable across
sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.analysis.metrics import ProgramMetrics
from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.circuits.circuit import Circuit
from repro.exec.cache import cached_compile
from repro.experiments.common import na_arch_for_mid
from repro.utils.textplot import format_table
from repro.workloads.cuccaro import cuccaro_adder
from repro.workloads.qaoa import qaoa_maxcut
from repro.workloads.qft_adder import qft_adder
from repro.workloads.random_circuits import random_circuit
from repro.workloads.ref import resolve_circuit

#: One compiled point: (mid, qubits, gates, op count, depth, swaps).
MetricsRow = Tuple[float, int, int, int, int, int]


def _sweep_mids(circuit: Circuit, mids: Sequence[float],
                label: str) -> Tuple[MetricsRow, ...]:
    """Compile ``circuit`` at each MID (session cache) into table rows."""
    rows = []
    for mid in mids:
        arch = na_arch_for_mid(float(mid))
        program = cached_compile(circuit, arch.topology(), arch.config())
        metrics = ProgramMetrics.from_program(program, benchmark=label)
        rows.append((float(mid), metrics.num_qubits, metrics.gate_count,
                     metrics.op_count, metrics.depth, metrics.swap_count))
    return tuple(rows)


def _format_rows(title: str, rows: Sequence[MetricsRow]) -> str:
    table = format_table(
        ["mid", "qubits", "gates", "ops", "depth", "swaps"],
        [(f"{mid:g}", qubits, gates, ops, depth, swaps)
         for mid, qubits, gates, ops, depth, swaps in rows],
    )
    return f"{title}\n\n{table}"


# -- any workload reference --------------------------------------------------------


@dataclass
class WorkloadMetricsResult(ExperimentResult):
    workload: str = ""
    program_size: int = 0
    #: The register size actually compiled (families round requested
    #: sizes; uploads fix it outright).
    realized_size: int = 0
    rows: Tuple[MetricsRow, ...] = ()

    def format(self) -> str:
        return _format_rows(
            f"Workload metrics — {self.workload} "
            f"(requested {self.program_size}, realized {self.realized_size})",
            self.rows,
        )


def run_workload_metrics(
    workload: str = "bv",
    program_size: int = 30,
    mids: Sequence[float] = (1.0, 2.0, 3.0, 5.0),
    rng: int = 0,
) -> WorkloadMetricsResult:
    """Compile one workload reference across a MID sweep."""
    circuit = resolve_circuit(workload, program_size, rng=rng)
    return WorkloadMetricsResult(
        workload=str(workload),
        program_size=int(program_size),
        realized_size=circuit.num_qubits,
        rows=_sweep_mids(circuit, mids, str(workload)),
    )


register_experiment(
    name="workload-metrics",
    runner=run_workload_metrics,
    result_type=WorkloadMetricsResult,
    quick=dict(program_size=8, mids=(1.0, 3.0)),
    doc="Compile any workload reference (family or uploaded circuit) "
        "across a MID sweep",
    circuit_params=("workload",),
)


# -- generated families ------------------------------------------------------------


@dataclass
class GeneratedQaoaResult(ExperimentResult):
    nodes: int = 0
    layers: int = 0
    rng: int = 0
    rows: Tuple[MetricsRow, ...] = ()

    def format(self) -> str:
        return _format_rows(
            f"Generated QAOA — {self.nodes} nodes, {self.layers} layer(s), "
            f"seed {self.rng}",
            self.rows,
        )


def run_gen_qaoa(
    nodes: int = 12,
    layers: int = 1,
    gamma: float = 0.7,
    beta: float = 0.3,
    mids: Sequence[float] = (1.0, 2.0, 3.0, 5.0),
    rng: int = 0,
) -> GeneratedQaoaResult:
    """QAOA MAX-CUT at arbitrary depth on a random graph."""
    circuit = qaoa_maxcut(nodes, gamma=gamma, beta=beta, layers=layers,
                          rng=rng)
    return GeneratedQaoaResult(
        nodes=int(nodes), layers=int(layers), rng=int(rng),
        rows=_sweep_mids(circuit, mids, "gen-qaoa"),
    )


register_experiment(
    name="gen-qaoa",
    runner=run_gen_qaoa,
    result_type=GeneratedQaoaResult,
    quick=dict(nodes=6, mids=(1.0, 3.0)),
    doc="Generated family: parameterized QAOA at arbitrary depth",
)


@dataclass
class GeneratedAdderResult(ExperimentResult):
    kind: str = ""
    bits: int = 0
    num_qubits: int = 0
    rows: Tuple[MetricsRow, ...] = ()

    def format(self) -> str:
        return _format_rows(
            f"Generated adder — {self.kind}, {self.bits}-bit operands "
            f"({self.num_qubits} qubits)",
            self.rows,
        )


def run_gen_adder(
    bits: int = 8,
    kind: str = "cuccaro",
    mids: Sequence[float] = (1.0, 2.0, 3.0, 5.0),
) -> GeneratedAdderResult:
    """Ripple-carry or Fourier-space adder at arbitrary operand width."""
    if kind == "cuccaro":
        circuit = cuccaro_adder(bits)
    elif kind == "qft":
        circuit = qft_adder(bits)
    else:
        raise ValueError(
            f"unknown adder kind {kind!r}; expected 'cuccaro' or 'qft'"
        )
    return GeneratedAdderResult(
        kind=kind, bits=int(bits), num_qubits=circuit.num_qubits,
        rows=_sweep_mids(circuit, mids, f"gen-adder-{kind}"),
    )


register_experiment(
    name="gen-adder",
    runner=run_gen_adder,
    result_type=GeneratedAdderResult,
    quick=dict(bits=2, mids=(1.0, 3.0)),
    doc="Generated family: adders at arbitrary operand width",
)


@dataclass
class GeneratedRandomResult(ExperimentResult):
    num_qubits: int = 0
    num_gates: int = 0
    rng: int = 0
    rows: Tuple[MetricsRow, ...] = ()

    def format(self) -> str:
        return _format_rows(
            f"Generated random program — {self.num_qubits} qubits, "
            f"{self.num_gates} gates, seed {self.rng}",
            self.rows,
        )


def run_gen_random(
    num_qubits: int = 16,
    num_gates: int = 80,
    arity_weights: Sequence[float] = (0.3, 0.5, 0.2),
    mids: Sequence[float] = (1.0, 2.0, 3.0, 5.0),
    rng: int = 0,
) -> GeneratedRandomResult:
    """A structurally random program (seeded, reproducible)."""
    circuit = random_circuit(num_qubits, num_gates,
                             arity_weights=tuple(arity_weights), rng=rng)
    return GeneratedRandomResult(
        num_qubits=int(num_qubits), num_gates=int(num_gates), rng=int(rng),
        rows=_sweep_mids(circuit, mids, "gen-random"),
    )


register_experiment(
    name="gen-random",
    runner=run_gen_random,
    result_type=GeneratedRandomResult,
    quick=dict(num_qubits=6, num_gates=18, mids=(1.0, 3.0)),
    doc="Generated family: random-structure programs",
)


def main() -> None:
    print(run_workload_metrics(program_size=8, mids=(1.0, 3.0)).format())


if __name__ == "__main__":
    main()
