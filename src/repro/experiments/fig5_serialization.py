"""Fig 5 — depth increase due to restriction-zone serialization.

Compile each benchmark twice at the *same* MID: once with the real
``f(d) = d/2`` zones and once with zones disabled (the idealized
architecture allowing any disjoint gate sets in parallel).  The two
compilations insert the same communication; the depth gap isolates the
serialization cost.  Parallel benchmarks (QAOA, CNU, QFT-Adder) show the
largest gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.architectures import compiled_metrics, metrics_grid_map
from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.api.serialize import serializable
from repro.experiments.common import (
    all_benchmarks,
    default_sizes,
    mean,
    mids_or_default,
    na_arch_for_mid,
    std,
)
from repro.utils.textplot import format_series, format_table, percent


@serializable
@dataclass
class SerializationRow:
    benchmark: str
    mid: float
    mean_increase: float
    std_increase: float


@dataclass
class Fig5Result(ExperimentResult):
    bars: List[SerializationRow] = field(default_factory=list)
    #: QAOA depth by size: {size: [(mid, depth_zones, depth_ideal), ...]}.
    qaoa_series: Dict[int, List[Tuple[float, int, int]]] = field(
        default_factory=dict
    )

    def format(self) -> str:
        lines = ["Fig 5 — Depth Increase due to Gate Serialization",
                 "(restriction zones f(d)=d/2 vs no-zone ideal, same MID)", ""]
        rows = [
            (r.benchmark, f"{r.mid:g}", percent(r.mean_increase),
             percent(r.std_increase))
            for r in self.bars
        ]
        lines.append(format_table(
            ["benchmark", "MID", "mean depth increase", "std"], rows))
        if self.qaoa_series:
            lines.append("")
            lines.append("QAOA depth vs MID (zones / ideal):")
            for size in sorted(self.qaoa_series):
                xs = [m for m, _, _ in self.qaoa_series[size]]
                zoned = [z for _, z, _ in self.qaoa_series[size]]
                ideal = [i for _, _, i in self.qaoa_series[size]]
                lines.append(format_series(f"  qaoa[{size}] zones", xs, zoned))
                lines.append(format_series(f"  qaoa[{size}] ideal", xs, ideal))
        return "\n".join(lines)

    def increase(self, benchmark: str, mid: float) -> float:
        for row in self.bars:
            if row.benchmark == benchmark and abs(row.mid - mid) < 1e-9:
                return row.mean_increase
        raise KeyError((benchmark, mid))


def run(
    benchmarks: Optional[Sequence[str]] = None,
    mids: Optional[Sequence[float]] = None,
    max_size: int = 100,
    size_step: int = 10,
    qaoa_line_sizes: Optional[Sequence[int]] = None,
) -> Fig5Result:
    """Regenerate Fig 5."""
    benchmarks = list(benchmarks) if benchmarks is not None else all_benchmarks()
    mids = mids_or_default(mids)
    result = Fig5Result()

    line_sizes = (
        list(qaoa_line_sizes)
        if qaoa_line_sizes is not None
        else [s for s in (20, 30, 40, 50) if s <= max_size]
    )
    line_mids = [1.0] + mids
    points = []
    for benchmark in benchmarks:
        for size in default_sizes(benchmark, max_size, size_step):
            for mid in mids:
                for radius in ("half", "none"):
                    points.append((benchmark, size,
                                   na_arch_for_mid(mid, restriction_radius=radius), 0))
    for size in line_sizes:
        for mid in line_mids:
            for radius in ("half", "none"):
                points.append(("qaoa", size,
                               na_arch_for_mid(mid, restriction_radius=radius), 0))
    metrics_grid_map(points)

    for benchmark in benchmarks:
        sizes = default_sizes(benchmark, max_size, size_step)
        for mid in mids:
            zoned_arch = na_arch_for_mid(mid, restriction_radius="half")
            ideal_arch = na_arch_for_mid(mid, restriction_radius="none")
            increases = []
            for size in sizes:
                zoned = compiled_metrics(benchmark, size, zoned_arch).depth
                ideal = compiled_metrics(benchmark, size, ideal_arch).depth
                if ideal > 0:
                    increases.append(zoned / ideal - 1.0)
            result.bars.append(
                SerializationRow(
                    benchmark=benchmark,
                    mid=mid,
                    mean_increase=mean(increases),
                    std_increase=std(increases),
                )
            )

    for size in line_sizes:
        series = []
        for mid in line_mids:
            zoned = compiled_metrics(
                "qaoa", size, na_arch_for_mid(mid, restriction_radius="half")
            ).depth
            ideal = compiled_metrics(
                "qaoa", size, na_arch_for_mid(mid, restriction_radius="none")
            ).depth
            series.append((mid, zoned, ideal))
        result.qaoa_series[size] = series
    return result


SPEC = register_experiment(
    name="fig5",
    runner=run,
    result_type=Fig5Result,
    quick=dict(max_size=24, size_step=8, mids=(2.0, 3.0),
               qaoa_line_sizes=(16,)),
)


def main() -> None:
    print(run(max_size=40, size_step=10, mids=(2.0, 3.0, 5.0)).format())


if __name__ == "__main__":
    main()
