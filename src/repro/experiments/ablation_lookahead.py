"""Ablation — lookahead window and decay of the §III-A weight function.

How much does the exponential lookahead actually buy?  Sweep the window
(1 layer = purely greedy, up to 20) and the decay rate, and record
post-compilation gate count and depth.  The paper asserts "simpler and
faster heuristics will suffice" for NA because dense connectivity makes
routing easy — this ablation makes that checkable: the win from deeper
lookahead should shrink as the MID grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.api.serialize import serializable
from repro.core.config import CompilerConfig
from repro.exec.cache import cached_compile
from repro.exec.grid import grid_map
from repro.hardware.topology import Topology
from repro.utils.textplot import format_table
from repro.workloads.registry import build_circuit

GRID_SIDE = 10
WINDOWS = (1, 3, 10, 20)
DECAYS = (0.5, 1.0, 2.0)


@serializable
@dataclass(frozen=True)
class LookaheadPoint:
    benchmark: str
    mid: float
    window: int
    decay: float
    gates: int
    depth: int
    swaps: int


@dataclass
class LookaheadResult(ExperimentResult):
    points: List[LookaheadPoint] = field(default_factory=list)

    def select(self, benchmark: str, mid: float, window: int,
               decay: float = 1.0) -> LookaheadPoint:
        for p in self.points:
            if (p.benchmark == benchmark and abs(p.mid - mid) < 1e-9
                    and p.window == window and abs(p.decay - decay) < 1e-9):
                return p
        raise KeyError((benchmark, mid, window, decay))

    def lookahead_benefit(self, benchmark: str, mid: float) -> float:
        """Relative swap saving of the deepest window over the shallowest."""
        shallow = self.select(benchmark, mid, min(WINDOWS)).swaps
        deep = self.select(benchmark, mid, max(WINDOWS)).swaps
        if shallow == 0:
            return 0.0
        return 1.0 - deep / shallow

    def format(self) -> str:
        lines = ["Ablation — Lookahead Window / Decay", ""]
        rows = [
            (p.benchmark, f"{p.mid:g}", p.window, f"{p.decay:g}", p.gates,
             p.depth, p.swaps)
            for p in self.points
        ]
        lines.append(format_table(
            ["benchmark", "MID", "window", "decay", "gates", "depth",
             "swaps"],
            rows,
        ))
        return "\n".join(lines)


@dataclass(frozen=True)
class LookaheadTask:
    """One grid cell: compile one benchmark at one heuristic setting."""

    benchmark: str
    program_size: int
    mid: float
    window: int
    decay: float
    seed: int = 0  # stamped by grid_map; compilation is deterministic


def compile_lookahead_point(task: LookaheadTask) -> LookaheadPoint:
    """Task function: one cached compile, one table row (module-level
    and picklable for spawn-based workers)."""
    circuit = build_circuit(task.benchmark, task.program_size)
    program = cached_compile(
        circuit,
        Topology.square(GRID_SIDE, task.mid),
        CompilerConfig(
            max_interaction_distance=task.mid,
            native_max_arity=2,
            restriction_radius="none" if task.mid == 1.0 else "half",
            lookahead_layers=task.window,
            lookahead_decay=task.decay,
        ),
    )
    return LookaheadPoint(
        benchmark=task.benchmark,
        mid=task.mid,
        window=task.window,
        decay=task.decay,
        gates=program.gate_count(),
        depth=program.depth(),
        swaps=program.swap_count,
    )


def run(
    benchmarks: Sequence[str] = ("bv", "qaoa"),
    mids: Sequence[float] = (1.0, 3.0),
    program_size: int = 30,
    windows: Sequence[int] = WINDOWS,
    decays: Sequence[float] = (1.0,),
    jobs: Optional[int] = None,
) -> LookaheadResult:
    """Run the lookahead ablation as one task grid over the exec engine."""
    cells = [
        LookaheadTask(benchmark=benchmark, program_size=program_size,
                      mid=mid, window=window, decay=decay)
        for benchmark in benchmarks
        for mid in mids
        for window in windows
        for decay in decays
    ]
    return LookaheadResult(points=grid_map(
        compile_lookahead_point, cells, experiment="ablation-lookahead",
        jobs=jobs,
    ))


SPEC = register_experiment(
    name="ablation-lookahead",
    runner=run,
    result_type=LookaheadResult,
    quick=dict(program_size=20),
)


def main() -> None:
    print(run(program_size=20).format())


if __name__ == "__main__":
    main()
