"""Fig 10 — maximum atom-loss tolerance per strategy.

30-qubit programs (CNU, Cuccaro) on a 100-atom device: how many atoms can
be lost, one uniform-random atom at a time, before each strategy must
reload?  Reported as a fraction of device size vs MID in {2..6}.

Expected ordering (all reproduced): recompile >> compile-small variants >
reroute > virtual remapping, with recompile approaching the 70% ideal
(1 - program/device) once the MID bridges holes.  Compile-small has no
entries at MID 2 (it never compiles to distance 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.core.config import CompilerConfig
from repro.exec.grid import grid_map
from repro.loss.strategies import STRATEGY_ORDER, make_strategy
from repro.loss.tolerance import ToleranceResult, max_loss_tolerance
from repro.utils.rng import RngLike, base_seed_from
from repro.utils.textplot import format_table, percent
from repro.workloads.registry import build_circuit

GRID_SIDE = 10
PAPER_LOSS_MIDS = (2.0, 3.0, 4.0, 5.0, 6.0)
PROGRAM_SIZE = 30


@dataclass
class Fig10Result(ExperimentResult):
    #: (benchmark, strategy, mid) -> tolerance result.
    cells: Dict[Tuple[str, str, float], ToleranceResult] = field(
        default_factory=dict
    )

    def fraction(self, benchmark: str, strategy: str, mid: float) -> float:
        return self.cells[(benchmark, strategy, mid)].mean_fraction

    def format(self) -> str:
        lines = ["Fig 10 — Max Atom Loss Tolerance (fraction of device size)",
                 f"({PROGRAM_SIZE}-qubit programs on a "
                 f"{GRID_SIDE * GRID_SIDE}-atom device)", ""]
        benchmarks = sorted({b for b, _, _ in self.cells})
        for benchmark in benchmarks:
            lines.append(f"benchmark: {benchmark}")
            mids = sorted({m for b, _, m in self.cells if b == benchmark})
            rows = []
            for strategy in STRATEGY_ORDER:
                row = [strategy]
                for mid in mids:
                    key = (benchmark, strategy, mid)
                    row.append(
                        percent(self.cells[key].mean_fraction)
                        if key in self.cells else "-"
                    )
                rows.append(row)
            lines.append(format_table(
                ["strategy"] + [f"MID {m:g}" for m in mids], rows))
            lines.append("")
        return "\n".join(lines)


def _tolerance_task(task: dict) -> ToleranceResult:
    """Sweep-engine worker: one (benchmark, strategy, MID) tolerance cell."""
    circuit = build_circuit(task["benchmark"], task["program_size"])
    return max_loss_tolerance(
        make_strategy(task["strategy"]),
        circuit,
        task["grid_side"],
        task["mid"],
        config=CompilerConfig(max_interaction_distance=task["mid"]),
        trials=task["trials"],
        rng=task["seed"],
    )


def run(
    benchmarks: Sequence[str] = ("cnu", "cuccaro"),
    mids: Optional[Sequence[float]] = None,
    program_size: int = PROGRAM_SIZE,
    strategies: Optional[Sequence[str]] = None,
    trials: int = 5,
    rng: RngLike = 0,
    jobs: Optional[int] = None,
) -> Fig10Result:
    """Regenerate Fig 10 (cells fanned out over the sweep engine).

    The explicit ``key_fields`` pin the historical seed schema:
    ``grid_side`` rides along to the task function but stays out of the
    canonical key, keeping every cell's random stream byte-compatible
    with the seed CLI fixtures.
    """
    mids = list(mids) if mids is not None else list(PAPER_LOSS_MIDS)
    strategies = (
        list(strategies) if strategies is not None else list(STRATEGY_ORDER)
    )
    result = Fig10Result()
    cells = [
        {
            "benchmark": benchmark,
            "strategy": name,
            "mid": float(mid),
            "program_size": program_size,
            "grid_side": GRID_SIDE,
            "trials": trials,
        }
        for benchmark in benchmarks
        for mid in mids
        for name in strategies
        # compile-small undefined at MID 2 (paper too)
        if not (name.startswith("c") and "small" in name and mid <= 2.0)
    ]
    tolerances = grid_map(
        _tolerance_task, cells, experiment="fig10",
        base_seed=base_seed_from(rng),
        key_fields=("benchmark", "strategy", "mid", "program_size", "trials"),
        jobs=jobs,
    )
    for cell, tolerance in zip(cells, tolerances):
        result.cells[(cell["benchmark"], cell["strategy"], cell["mid"])] = \
            tolerance
    return result


SPEC = register_experiment(
    name="fig10",
    runner=run,
    result_type=Fig10Result,
    quick=dict(mids=(2.0, 3.0), program_size=20, trials=2),
)


def main() -> None:
    print(run(mids=(2.0, 3.0, 4.0), trials=3).format())


if __name__ == "__main__":
    main()
