"""Fig 14 — execution timeline of 20 successful shots.

Compile Small + Reroute on a 30-qubit CNU, reload time 0.3 s and
fluorescence 6 ms, run until 20 shots succeed.  The rendered trace makes
the paper's point visually: reload and fluorescence dominate wall-clock
time, so reducing reload *count* is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.core.config import CompilerConfig
from repro.hardware.loss import LossModel
from repro.hardware.noise import NoiseModel
from repro.hardware.timing import TimingModel
from repro.hardware.topology import Topology
from repro.loss.runner import RunResult, ShotRunner
from repro.loss.strategies import make_strategy
from repro.loss.timeline import render_timeline
from repro.utils.rng import RngLike
from repro.workloads.registry import build_circuit

GRID_SIDE = 10
PROGRAM_SIZE = 30
TARGET_SHOTS = 20


@dataclass
class Fig14Result(ExperimentResult):
    run_result: RunResult = None

    def format(self) -> str:
        result = self.run_result
        kinds = result.time_by_kind()
        lines = [
            "Fig 14 — Timeline of 20 Successful Shots "
            "(Compile Small + Reroute)",
            "",
            render_timeline(result.timeline),
            "",
            f"total: {result.total_time:.3f}s over "
            f"{result.shots_attempted} attempted shots "
            f"({result.shots_successful} successful, "
            f"{result.reload_count} reloads)",
        ]
        for kind, seconds in kinds.items():
            share = seconds / result.total_time if result.total_time else 0.0
            lines.append(f"  {kind:12s} {seconds:9.4f}s  ({share:6.1%})")
        return "\n".join(lines)


def run(
    benchmark: str = "cnu",
    mid: float = 4.0,
    target_shots: int = TARGET_SHOTS,
    program_size: int = PROGRAM_SIZE,
    rng: RngLike = 7,
) -> Fig14Result:
    """Regenerate Fig 14."""
    noise = NoiseModel.neutral_atom()
    strategy = make_strategy("c. small+reroute", noise=noise)
    runner = ShotRunner(
        strategy,
        build_circuit(benchmark, program_size),
        Topology.square(GRID_SIDE, mid),
        config=CompilerConfig(max_interaction_distance=mid),
        noise=noise,
        loss_model=LossModel.lossless_readout(),
        timing=TimingModel.paper_defaults(),
        rng=rng,
    )
    run_result = runner.run(max_shots=100 * target_shots,
                            target_successful=target_shots)
    return Fig14Result(run_result=run_result)


SPEC = register_experiment(
    name="fig14",
    runner=run,
    result_type=Fig14Result,
    quick=dict(target_shots=10, program_size=20),
)


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
