"""Fig 14 — execution timeline of 20 successful shots.

Compile Small + Reroute on a 30-qubit CNU, reload time 0.3 s and
fluorescence 6 ms, run until 20 shots succeed.  The rendered trace makes
the paper's point visually: reload and fluorescence dominate wall-clock
time, so reducing reload *count* is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.core.config import CompilerConfig
from repro.exec.cache import cached_compile
from repro.hardware.loss import LossModel
from repro.hardware.timing import TimingModel
from repro.hardware.topology import Topology
from repro.loss.runner import RunResult, ShotSpec, run_shot_grid_map
from repro.loss.strategies.compile_small import compiled_distance
from repro.loss.timeline import render_timeline
from repro.utils.rng import RngLike, base_seed_from
from repro.workloads.registry import build_circuit

GRID_SIDE = 10
PROGRAM_SIZE = 30
TARGET_SHOTS = 20


@dataclass
class Fig14Result(ExperimentResult):
    run_result: RunResult = None

    def format(self) -> str:
        result = self.run_result
        kinds = result.time_by_kind()
        lines = [
            "Fig 14 — Timeline of 20 Successful Shots "
            "(Compile Small + Reroute)",
            "",
            render_timeline(result.timeline),
            "",
            f"total: {result.total_time:.3f}s over "
            f"{result.shots_attempted} attempted shots "
            f"({result.shots_successful} successful, "
            f"{result.reload_count} reloads)",
        ]
        for kind, seconds in kinds.items():
            share = seconds / result.total_time if result.total_time else 0.0
            lines.append(f"  {kind:12s} {seconds:9.4f}s  ({share:6.1%})")
        return "\n".join(lines)


def run(
    benchmark: str = "cnu",
    mid: float = 4.0,
    target_shots: int = TARGET_SHOTS,
    program_size: int = PROGRAM_SIZE,
    rng: RngLike = 7,
    jobs: Optional[int] = None,
) -> Fig14Result:
    """Regenerate Fig 14.

    One shot-simulation task through the exec engine — the same
    key-derived seeding and session-cache compile path as every other
    driver, so the timeline is identical at any worker count.  The
    compile-small artifact is pinned in-parent so the rendered compile
    event carries one stored wall-clock measurement.
    """
    reduced = compiled_distance(mid)
    cached_compile(build_circuit(benchmark, program_size),
                   Topology.square(GRID_SIDE, reduced),
                   CompilerConfig(max_interaction_distance=reduced))
    spec = ShotSpec(
        strategy="c. small+reroute",
        benchmark=benchmark,
        program_size=program_size,
        grid_side=GRID_SIDE,
        mid=mid,
        max_shots=100 * target_shots,
        seed=0,  # overwritten with the key-derived seed
        target_successful=target_shots,
        loss_model=LossModel.lossless_readout(),
        timing=TimingModel.paper_defaults(),
    )
    [run_result] = run_shot_grid_map(
        [spec], experiment="fig14", base_seed=base_seed_from(rng),
        jobs=jobs,
    )
    return Fig14Result(run_result=run_result)


SPEC = register_experiment(
    name="fig14",
    runner=run,
    result_type=Fig14Result,
    quick=dict(target_shots=10, program_size=20),
)


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
