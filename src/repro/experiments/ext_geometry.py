"""Extension — 1D vs 2D atom arrangements.

§II-C notes atoms can be arranged in one, two, or three dimensions; the
paper studies square 2D arrays.  This experiment quantifies why: compile
the same programs onto a 1xN chain and a sqrt(N) x sqrt(N) square with
the same atom count and MID.  The square's lower average pairwise
distance should cut SWAP counts substantially — the geometric argument
for 2D tweezer arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.api.serialize import serializable
from repro.core.config import CompilerConfig
from repro.exec.cache import cached_compile
from repro.exec.grid import grid_map
from repro.hardware.grid import Grid
from repro.hardware.topology import Topology
from repro.utils.textplot import format_table
from repro.workloads.registry import build_circuit


@serializable
@dataclass(frozen=True)
class GeometryPoint:
    benchmark: str
    size: int
    mid: float
    shape: str  # "line" or "square"
    gates: int
    depth: int
    swaps: int


@dataclass
class GeometryResult(ExperimentResult):
    points: List[GeometryPoint] = field(default_factory=list)

    def select(self, benchmark: str, shape: str, mid: float) -> GeometryPoint:
        for p in self.points:
            if (p.benchmark == benchmark and p.shape == shape
                    and abs(p.mid - mid) < 1e-9):
                return p
        raise KeyError((benchmark, shape, mid))

    def swap_advantage(self, benchmark: str, mid: float) -> float:
        """SWAPs saved by the square relative to the line."""
        line = self.select(benchmark, "line", mid).swaps
        square = self.select(benchmark, "square", mid).swaps
        if line == 0:
            return 0.0
        return 1.0 - square / line

    def format(self) -> str:
        lines = ["Extension — 1D Chain vs 2D Square (same atoms, same MID)",
                 ""]
        rows = [
            (p.benchmark, p.size, f"{p.mid:g}", p.shape, p.gates, p.depth,
             p.swaps)
            for p in self.points
        ]
        lines.append(format_table(
            ["benchmark", "size", "MID", "shape", "gates", "depth",
             "swaps"],
            rows,
        ))
        return "\n".join(lines)


@dataclass(frozen=True)
class GeometryTask:
    """One grid cell: compile one benchmark onto one atom arrangement."""

    benchmark: str
    program_size: int
    rows: int
    cols: int
    shape: str  # "line" or "square"
    mid: float
    seed: int = 0  # stamped by grid_map; compilation is deterministic


def compile_geometry_point(task: GeometryTask) -> GeometryPoint:
    """Task function: one cached compile, one table row (module-level
    and picklable for spawn-based workers)."""
    circuit = build_circuit(task.benchmark, task.program_size)
    program = cached_compile(
        circuit,
        Topology(Grid(task.rows, task.cols), task.mid),
        CompilerConfig(max_interaction_distance=task.mid,
                       native_max_arity=2),
    )
    return GeometryPoint(
        benchmark=task.benchmark,
        size=circuit.num_qubits,
        mid=task.mid,
        shape=task.shape,
        gates=program.gate_count(),
        depth=program.depth(),
        swaps=program.swap_count,
    )


def run(
    benchmarks: Sequence[str] = ("bv", "cuccaro", "qaoa"),
    grid_side: int = 6,
    mids: Sequence[float] = (2.0, 3.0),
    fill_fraction: float = 0.6,
    jobs: Optional[int] = None,
) -> GeometryResult:
    """Compile onto a 1 x side^2 chain and a side x side square, as one
    task grid over the exec engine."""
    num_atoms = grid_side * grid_side
    program_size = max(4, int(fill_fraction * num_atoms))
    cells = [
        GeometryTask(benchmark=benchmark, program_size=program_size,
                     rows=rows, cols=cols, shape=shape, mid=mid)
        for benchmark in benchmarks
        for mid in mids
        for shape, rows, cols in (
            ("line", 1, num_atoms),
            ("square", grid_side, grid_side),
        )
    ]
    return GeometryResult(points=grid_map(
        compile_geometry_point, cells, experiment="ext-geometry", jobs=jobs,
    ))


SPEC = register_experiment(
    name="ext-geometry",
    runner=run,
    result_type=GeometryResult,
    quick=dict(benchmarks=("bv",), grid_side=5),
)


def main() -> None:
    print(run(benchmarks=("bv",), grid_side=5).format())


if __name__ == "__main__":
    main()
