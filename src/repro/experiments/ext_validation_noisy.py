"""Extension — Monte-Carlo cross-validation of the §V success estimate.

The paper's success model is a closed-form product of gate fidelities.
This experiment validates it against direct noisy simulation: sample
shots where failed gates inject random Paulis and compare the empirical
success frequency with the analytic estimate, across error rates and
benchmarks small enough to simulate exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.api.registry import register_experiment
from repro.api.results import ExperimentResult
from repro.api.serialize import serializable
from repro.exec.grid import grid_map
from repro.hardware.noise import NoiseModel
from repro.sim.noisy import sample_noisy_shots
from repro.utils.rng import base_seed_from
from repro.utils.textplot import format_table
from repro.workloads.registry import build_circuit


@serializable
@dataclass(frozen=True)
class NoisyValidationRow:
    benchmark: str
    size: int
    two_qubit_error: float
    analytic: float
    empirical: float
    shots: int

    @property
    def absolute_gap(self) -> float:
        return abs(self.analytic - self.empirical)


@dataclass
class NoisyValidationResult(ExperimentResult):
    rows: List[NoisyValidationRow] = field(default_factory=list)

    @property
    def max_gap(self) -> float:
        return max(r.absolute_gap for r in self.rows)

    def format(self) -> str:
        lines = ["Extension — Monte-Carlo Validation of the Success Model",
                 ""]
        table = [
            (r.benchmark, r.size, f"{r.two_qubit_error:.1e}",
             f"{r.analytic:.3f}", f"{r.empirical:.3f}",
             f"{r.absolute_gap:.3f}", r.shots)
            for r in self.rows
        ]
        lines.append(format_table(
            ["benchmark", "size", "2q error", "analytic", "empirical",
             "|gap|", "shots"],
            table,
        ))
        lines.append("")
        lines.append(f"max gap: {self.max_gap:.3f}")
        return "\n".join(lines)


@dataclass(frozen=True)
class NoisySampleTask:
    """One grid cell: Monte-Carlo shots at one (benchmark, error)."""

    benchmark: str
    program_size: int
    two_qubit_error: float
    shots: int
    seed: int = 0  # stamped by grid_map from the cell's canonical key


def sample_validation_row(task: NoisySampleTask) -> NoisyValidationRow:
    """Task function: sample one cell and compare with the analytic
    estimate (module-level and picklable for spawn-based workers)."""
    circuit = build_circuit(task.benchmark, task.program_size)
    noise = NoiseModel.neutral_atom(two_qubit_error=task.two_qubit_error)
    sim = sample_noisy_shots(circuit, noise, shots=task.shots, rng=task.seed)
    return NoisyValidationRow(
        benchmark=task.benchmark,
        size=circuit.num_qubits,
        two_qubit_error=task.two_qubit_error,
        analytic=sim.analytic_estimate,
        empirical=sim.empirical_rate,
        shots=task.shots,
    )


def run(
    benchmarks: Sequence[str] = ("bv", "cuccaro"),
    program_size: int = 8,
    errors: Sequence[float] = (0.002, 0.01, 0.05),
    shots: int = 400,
    rng: int = 0,
    jobs: Optional[int] = None,
) -> NoisyValidationResult:
    """Compare analytic vs sampled success across a small grid, fanned
    out over the exec engine with key-derived per-cell seeds."""
    cells = [
        NoisySampleTask(benchmark=benchmark, program_size=program_size,
                        two_qubit_error=error, shots=shots)
        for benchmark in benchmarks
        for error in errors
    ]
    return NoisyValidationResult(rows=grid_map(
        sample_validation_row, cells, experiment="ext-noisy-validation",
        base_seed=base_seed_from(rng), jobs=jobs,
    ))


SPEC = register_experiment(
    name="ext-noisy-validation",
    runner=run,
    result_type=NoisyValidationResult,
    quick=dict(shots=150),
)


def main() -> None:
    print(run(shots=200).format())


if __name__ == "__main__":
    main()
