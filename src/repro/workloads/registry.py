"""Benchmark registry: name -> sized circuit generator.

Experiment drivers ask for "Cuccaro at ~50 qubits"; each benchmark has its
own valid-size lattice (the adders need ``2n + 2`` qubits, CNU needs
``2k``), so the registry rounds a requested size down to the nearest valid
one and reports what it actually built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.circuits.circuit import Circuit
from repro.utils.rng import RngLike
from repro.workloads.bv import bernstein_vazirani
from repro.workloads.cnu import cnu_from_total_qubits
from repro.workloads.cuccaro import cuccaro_from_total_qubits
from repro.workloads.qaoa import qaoa_maxcut
from repro.workloads.qft_adder import qft_adder_from_total_qubits


@dataclass(frozen=True)
class Benchmark:
    """A named, size-parameterized benchmark family."""

    name: str
    build: Callable[[int, RngLike], Circuit]
    min_size: int
    #: Human note on which sizes are exactly realizable.
    size_rule: str
    #: Whether the paper writes this benchmark natively in Toffoli gates.
    uses_multiqubit_gates: bool
    #: Whether the instance depends on a random seed (QAOA graphs).
    randomized: bool = False
    #: The size-rounding lattice: requested size -> the size actually
    #: built (``None`` means every size >= ``min_size`` is exact).  This
    #: is the machine-checkable form of ``size_rule``.
    realize: Optional[Callable[[int], int]] = None

    def realized_size(self, num_qubits: int) -> int:
        """The register size :meth:`circuit` will actually build.

        ``Benchmark.circuit`` rounds a requested size *down* to the
        family's nearest valid size (Cuccaro ``2n+2``, CNU ``2k``, ...);
        this reports that rounding without building anything.
        """
        if num_qubits < self.min_size:
            raise ValueError(
                f"{self.name} needs at least {self.min_size} qubits, "
                f"requested {num_qubits}"
            )
        if self.realize is None:
            return num_qubits
        return self.realize(num_qubits)

    def circuit(self, num_qubits: int, rng: RngLike = 0) -> Circuit:
        if num_qubits < self.min_size:
            raise ValueError(
                f"{self.name} needs at least {self.min_size} qubits, "
                f"requested {num_qubits}"
            )
        return self.build(num_qubits, rng)

    def instance(self, num_qubits: int, rng: RngLike = 0
                 ) -> "BenchmarkInstance":
        """Build the circuit and report the size rounding applied."""
        return BenchmarkInstance(
            benchmark=self.name,
            requested_size=num_qubits,
            realized_size=self.realized_size(num_qubits),
            circuit=self.circuit(num_qubits, rng=rng),
        )


@dataclass(frozen=True)
class BenchmarkInstance:
    """A built benchmark circuit plus the size rounding that produced it."""

    benchmark: str
    requested_size: int
    realized_size: int
    circuit: Circuit


def _build_bv(num_qubits: int, rng: RngLike) -> Circuit:
    return bernstein_vazirani(num_qubits)


def _build_cnu(num_qubits: int, rng: RngLike) -> Circuit:
    return cnu_from_total_qubits(num_qubits)


def _build_cuccaro(num_qubits: int, rng: RngLike) -> Circuit:
    return cuccaro_from_total_qubits(num_qubits)


def _build_qft_adder(num_qubits: int, rng: RngLike) -> Circuit:
    return qft_adder_from_total_qubits(num_qubits)


def _build_qaoa(num_qubits: int, rng: RngLike) -> Circuit:
    return qaoa_maxcut(num_qubits, rng=rng)


BENCHMARKS: Dict[str, Benchmark] = {
    "bv": Benchmark(
        name="bv",
        build=_build_bv,
        min_size=2,
        size_rule="any size >= 2 (n-1 data qubits + ancilla)",
        uses_multiqubit_gates=False,
    ),
    "cnu": Benchmark(
        name="cnu",
        build=_build_cnu,
        min_size=4,
        size_rule="even sizes 2k (k controls, k-1 ancillas, 1 target)",
        uses_multiqubit_gates=True,
        realize=lambda n: 2 * (n // 2),
    ),
    "cuccaro": Benchmark(
        name="cuccaro",
        build=_build_cuccaro,
        min_size=4,
        size_rule="sizes 2n+2 (two n-bit registers, carry-in, carry-out)",
        uses_multiqubit_gates=True,
        realize=lambda n: 2 * ((n - 2) // 2) + 2,
    ),
    "qft-adder": Benchmark(
        name="qft-adder",
        build=_build_qft_adder,
        min_size=2,
        size_rule="even sizes 2n (two n-bit registers)",
        uses_multiqubit_gates=False,
        realize=lambda n: 2 * (n // 2),
    ),
    "qaoa": Benchmark(
        name="qaoa",
        build=_build_qaoa,
        min_size=2,
        size_rule="any size >= 2 (one node per qubit)",
        uses_multiqubit_gates=False,
        randomized=True,
    ),
}

#: The display order used by the paper's bar charts.
BENCHMARK_ORDER: List[str] = ["bv", "cnu", "cuccaro", "qft-adder", "qaoa"]


def get_benchmark(name: str) -> Benchmark:
    key = name.lower()
    if key not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[key]


def build_circuit(name: str, num_qubits: int, rng: RngLike = 0) -> Circuit:
    """Convenience wrapper: build benchmark ``name`` at ``num_qubits``."""
    return get_benchmark(name).circuit(num_qubits, rng=rng)
