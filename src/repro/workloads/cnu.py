"""Logarithmic-depth generalized Toffoli (CNU).

The paper's highly *parallel* benchmark (§III-B): the C^n U gate — here
C^n X — decomposed into a balanced binary AND-tree of Toffolis over O(n)
clean ancilla qubits (Barenco et al. style).  Depth is logarithmic in the
number of controls and each tree level is a batch of simultaneous
Toffolis, which is what stresses restriction-zone parallelism.

Layout for ``k`` controls:

    controls  : qubits 0 .. k-1
    ancillas  : qubits k .. 2k-2   (k - 1 of them, allocated level by level)
    target    : qubit 2k - 1

Total qubits = ``2k`` (k controls, k-1 ancillas, 1 target).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, ccx, cx


def cnu_registers(num_controls: int) -> Tuple[List[int], List[int], int]:
    """Return ``(controls, ancillas, target)`` qubit indices."""
    controls = list(range(num_controls))
    ancillas = list(range(num_controls, 2 * num_controls - 1))
    target = 2 * num_controls - 1
    return controls, ancillas, target


def cnu(num_controls: int) -> Circuit:
    """C^k X via a log-depth Toffoli AND-tree with ``k - 1`` clean ancillas.

    Total register: ``2 * num_controls`` qubits.  Ancillas start and end
    in |0>.
    """
    if num_controls < 2:
        raise ValueError("cnu needs at least 2 controls (else it is just CX)")
    controls, ancillas, target = cnu_registers(num_controls)
    circuit = Circuit(2 * num_controls)

    compute: List[Gate] = []
    next_ancilla = iter(ancillas)
    level = list(controls)
    while len(level) > 1:
        next_level: List[int] = []
        # Pair signals; an odd leftover passes through to the next level.
        for i in range(0, len(level) - 1, 2):
            anc = next(next_ancilla)
            compute.append(ccx(level[i], level[i + 1], anc))
            next_level.append(anc)
        if len(level) % 2 == 1:
            next_level.append(level[-1])
        level = next_level

    circuit.extend(compute)
    circuit.append(cx(level[0], target))
    circuit.extend(reversed(compute))
    return circuit


def cnu_from_total_qubits(num_qubits: int) -> Circuit:
    """CNU sized to use at most ``num_qubits`` qubits.

    The paper quotes odd program sizes (e.g. "49 for CNU", "29 qubit CNU");
    a k-control tree uses exactly 2k qubits, so we take
    ``k = num_qubits // 2`` and the circuit occupies ``2k <= num_qubits``.
    """
    if num_qubits < 4:
        raise ValueError("cnu needs at least 4 qubits (2 controls)")
    return cnu(num_qubits // 2)


def cnu_expected_toffolis(num_controls: int) -> int:
    """Tree size check: ``2 * (k - 1)`` Toffolis (compute + uncompute)."""
    return 2 * (num_controls - 1)
