"""Cuccaro ripple-carry adder (quant-ph/0410184).

The paper's fully *serial* benchmark (§III-B): one MAJ/UMA ripple with no
intra-layer parallelism, written natively in Toffoli gates, so it exercises
both the native-multiqubit advantage (Fig 6) and the serial end of the
restriction-zone analysis (Fig 5).

Register layout for an ``n``-bit addition (``2n + 2`` qubits total):

    index 0            : carry-in ancilla (|0>)
    index 1 + 2k       : b_k  (k-th bit of addend B; sum lands here)
    index 2 + 2k       : a_k  (k-th bit of addend A; restored at the end)
    index 2n + 1       : z    (carry-out)

Bit 0 is the least significant bit.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.gates import ccx, cx


def cuccaro_registers(num_bits: int) -> Tuple[int, List[int], List[int], int]:
    """Return ``(carry_in, b_qubits, a_qubits, carry_out)`` indices."""
    carry_in = 0
    b_qubits = [1 + 2 * k for k in range(num_bits)]
    a_qubits = [2 + 2 * k for k in range(num_bits)]
    carry_out = 2 * num_bits + 1
    return carry_in, b_qubits, a_qubits, carry_out


def _maj(circuit: Circuit, c: int, b: int, a: int) -> None:
    """Majority block: (c, b, a) -> (c^a, b^a, MAJ(a, b, c))."""
    circuit.append(cx(a, b))
    circuit.append(cx(a, c))
    circuit.append(ccx(c, b, a))


def _uma(circuit: Circuit, c: int, b: int, a: int) -> None:
    """Un-majority-and-add block; inverse of MAJ plus the sum write-back."""
    circuit.append(ccx(c, b, a))
    circuit.append(cx(a, c))
    circuit.append(cx(c, b))


def cuccaro_adder(num_bits: int) -> Circuit:
    """In-place ripple-carry adder: ``|a>|b> -> |a>|a + b>`` with carry-out.

    ``num_bits`` is the width of each addend; total qubits ``2*num_bits + 2``.
    """
    if num_bits < 1:
        raise ValueError("adder needs at least one bit")
    carry_in, b_qubits, a_qubits, carry_out = cuccaro_registers(num_bits)
    circuit = Circuit(2 * num_bits + 2)

    # Ripple the carry up through MAJ blocks.
    _maj(circuit, carry_in, b_qubits[0], a_qubits[0])
    for k in range(1, num_bits):
        _maj(circuit, a_qubits[k - 1], b_qubits[k], a_qubits[k])
    # Copy the final carry into the carry-out qubit.
    circuit.append(cx(a_qubits[num_bits - 1], carry_out))
    # Unwind with UMA blocks, writing sum bits into b.
    for k in range(num_bits - 1, 0, -1):
        _uma(circuit, a_qubits[k - 1], b_qubits[k], a_qubits[k])
    _uma(circuit, carry_in, b_qubits[0], a_qubits[0])
    return circuit


def cuccaro_from_total_qubits(num_qubits: int) -> Circuit:
    """Adder sized to use at most ``num_qubits`` qubits (>= 4)."""
    if num_qubits < 4:
        raise ValueError("cuccaro needs at least 4 qubits (1-bit adder)")
    num_bits = (num_qubits - 2) // 2
    return cuccaro_adder(num_bits)


def encode_operands(a_value: int, b_value: int, num_bits: int) -> str:
    """Initial bitstring (big-endian qubit order) encoding the two addends.

    Feed to ``Statevector.from_bitstring`` to test the adder end to end.
    """
    if a_value >= 2**num_bits or b_value >= 2**num_bits:
        raise ValueError("operand does not fit in the register")
    bits = ["0"] * (2 * num_bits + 2)
    _, b_qubits, a_qubits, _ = cuccaro_registers(num_bits)
    for k in range(num_bits):
        bits[a_qubits[k]] = str((a_value >> k) & 1)
        bits[b_qubits[k]] = str((b_value >> k) & 1)
    return "".join(bits)


def decode_sum(bits: str, num_bits: int) -> int:
    """Read ``a + b`` out of a measured bitstring (b register + carry-out)."""
    _, b_qubits, _, carry_out = cuccaro_registers(num_bits)
    total = 0
    for k in range(num_bits):
        total |= int(bits[b_qubits[k]]) << k
    total |= int(bits[carry_out]) << num_bits
    return total
