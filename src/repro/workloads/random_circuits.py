"""Random circuit generation.

Used by the property-based tests and useful to downstream users for
fuzzing compilers and loss strategies: structurally random programs with
a controllable mix of 1-, 2-, and 3-qubit gates.  Also provides GHZ-state
preparation and a standalone QFT as additional library circuits.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.circuits.circuit import Circuit
from repro.circuits.gates import ccx, cx, h, rx, rz, rzz
from repro.utils.rng import RngLike, ensure_rng
from repro.workloads.qft_adder import qft


def random_circuit(
    num_qubits: int,
    num_gates: int,
    arity_weights: Sequence[float] = (0.3, 0.5, 0.2),
    rng: RngLike = 0,
) -> Circuit:
    """A structurally random circuit.

    ``arity_weights`` gives the relative frequency of 1-, 2-, and 3-qubit
    gates; 3-qubit draws fall back to 2-qubit when the register is too
    small.  Gate choices: H/RZ/RX (1q), CX/RZZ (2q), CCX (3q).
    """
    if num_qubits < 2:
        raise ValueError("random circuits need at least 2 qubits")
    if num_gates < 0:
        raise ValueError("num_gates must be non-negative")
    if len(arity_weights) != 3 or any(w < 0 for w in arity_weights):
        raise ValueError("arity_weights must be three non-negative numbers")
    total = sum(arity_weights)
    if total <= 0:
        raise ValueError("arity_weights must not all be zero")
    weights = [w / total for w in arity_weights]

    generator = ensure_rng(rng)
    circuit = Circuit(num_qubits)
    for _ in range(num_gates):
        arity = 1 + int(generator.choice(3, p=weights))
        if arity == 3 and num_qubits < 3:
            arity = 2
        qubits = generator.choice(num_qubits, size=arity, replace=False)
        qubits = [int(q) for q in qubits]
        if arity == 1:
            kind = int(generator.integers(3))
            if kind == 0:
                circuit.append(h(qubits[0]))
            elif kind == 1:
                circuit.append(rz(float(generator.uniform(0.1, 3.0)), qubits[0]))
            else:
                circuit.append(rx(float(generator.uniform(0.1, 3.0)), qubits[0]))
        elif arity == 2:
            if generator.random() < 0.7:
                circuit.append(cx(qubits[0], qubits[1]))
            else:
                circuit.append(rzz(float(generator.uniform(0.1, 3.0)),
                                   qubits[0], qubits[1]))
        else:
            circuit.append(ccx(qubits[0], qubits[1], qubits[2]))
    return circuit


def ghz_circuit(num_qubits: int) -> Circuit:
    """GHZ-state preparation: H then a CX chain."""
    if num_qubits < 2:
        raise ValueError("GHZ needs at least 2 qubits")
    circuit = Circuit(num_qubits)
    circuit.append(h(0))
    for q in range(1, num_qubits):
        circuit.append(cx(q - 1, q))
    return circuit


def qft_circuit(num_qubits: int, include_swaps: bool = True) -> Circuit:
    """Standalone quantum Fourier transform."""
    if num_qubits < 1:
        raise ValueError("QFT needs at least 1 qubit")
    circuit = Circuit(num_qubits)
    circuit.extend(qft(list(range(num_qubits)), include_swaps=include_swaps))
    return circuit
