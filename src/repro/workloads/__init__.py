"""Parameterized benchmark circuits from the paper's §III-B suite."""

from repro.workloads.bv import bernstein_vazirani
from repro.workloads.cnu import cnu, cnu_from_total_qubits, cnu_registers
from repro.workloads.cuccaro import (
    cuccaro_adder,
    cuccaro_from_total_qubits,
    cuccaro_registers,
)
from repro.workloads.qaoa import cut_value, qaoa_maxcut, random_graph
from repro.workloads.qft_adder import qft, qft_adder, qft_adder_from_total_qubits
from repro.workloads.random_circuits import ghz_circuit, qft_circuit, random_circuit
from repro.workloads.ref import WorkloadRef, iter_circuit_digests, resolve_circuit
from repro.workloads.registry import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    Benchmark,
    BenchmarkInstance,
    build_circuit,
    get_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "Benchmark",
    "BenchmarkInstance",
    "WorkloadRef",
    "iter_circuit_digests",
    "resolve_circuit",
    "bernstein_vazirani",
    "build_circuit",
    "cnu",
    "cnu_from_total_qubits",
    "cnu_registers",
    "cuccaro_adder",
    "cuccaro_from_total_qubits",
    "cuccaro_registers",
    "cut_value",
    "get_benchmark",
    "qaoa_maxcut",
    "qft",
    "qft_adder",
    "qft_adder_from_total_qubits",
    "random_graph",
    "random_circuit",
    "ghz_circuit",
    "qft_circuit",
]
