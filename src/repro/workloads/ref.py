"""`WorkloadRef`: the one seam every experiment sources circuits through.

A workload used to *be* a registry name — every driver called
``get_benchmark(name).circuit(size)`` and only the §III-B suite could
ever run.  A :class:`WorkloadRef` widens that to three spellings:

* ``"bv"`` — a named family, sized by the experiment's own parameter;
* ``"bv@20"`` — a named family pinned to a size in the ref itself;
* ``"circuit:<64 hex>"`` — a content-addressed uploaded program,
  resolved through the active session's circuit store.

Refs canonicalize to their string spelling for store keying via
:meth:`WorkloadRef.store_form` (duck-typed by ``repro.exec.keys`` and
``repro.api.store``), so the typed object and the JSON string spell the
same store key and uploaded-circuit runs dedup/replay exactly like
named-benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Union

from repro.circuits.circuit import Circuit
from repro.circuits.digest import CIRCUIT_REF_PREFIX, parse_circuit_ref
from repro.utils.rng import RngLike
from repro.workloads.registry import BENCHMARKS, get_benchmark


@dataclass(frozen=True)
class WorkloadRef:
    """A reference to a runnable program: named family or circuit digest."""

    family: Optional[str] = None
    size: Optional[int] = None
    digest: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.family is None) == (self.digest is None):
            raise ValueError(
                "WorkloadRef needs exactly one of family= or digest="
            )
        if self.digest is not None and self.size is not None:
            raise ValueError(
                "a circuit digest fixes the program; size= does not apply"
            )

    @property
    def is_circuit(self) -> bool:
        return self.digest is not None

    @staticmethod
    def parse(value: Union[str, "WorkloadRef"]) -> "WorkloadRef":
        """Parse ``"fam"``, ``"fam@N"``, or ``"circuit:<digest>"``.

        Raises ``ValueError`` naming the bad input and the known
        families; a malformed ``circuit:`` ref propagates its own error
        rather than being misread as a family name.
        """
        if isinstance(value, WorkloadRef):
            return value
        if not isinstance(value, str):
            raise ValueError(
                f"expected a workload reference string, got {value!r}"
            )
        digest = parse_circuit_ref(value)
        if digest is not None:
            return WorkloadRef(digest=digest)
        family, sep, size_text = value.partition("@")
        family = family.strip().lower()
        if family not in BENCHMARKS:
            raise ValueError(
                f"unknown workload {value!r}: expected one of "
                f"{sorted(BENCHMARKS)}, 'family@size', or "
                f"'{CIRCUIT_REF_PREFIX}<digest>'"
            )
        if not sep:
            return WorkloadRef(family=family)
        try:
            size = int(size_text)
        except ValueError:
            raise ValueError(
                f"malformed workload size in {value!r}: expected "
                "'family@<integer>'"
            ) from None
        return WorkloadRef(family=family, size=size)

    def store_form(self) -> str:
        """The canonical string this ref keys as (see module docstring)."""
        return str(self)

    def __str__(self) -> str:
        if self.digest is not None:
            return CIRCUIT_REF_PREFIX + self.digest
        if self.size is not None:
            return f"{self.family}@{self.size}"
        return str(self.family)


def resolve_circuit(workload: Union[str, WorkloadRef],
                    num_qubits: Optional[int] = None,
                    rng: RngLike = 0) -> Circuit:
    """Build or fetch the circuit a workload reference names.

    Named families build through the registry exactly as before
    (byte-identical circuits, same rng contract).  A size embedded in
    the ref (``"fam@N"``) wins over ``num_qubits``.  Circuit digests
    resolve through the active session's :class:`~repro.api.circuits.
    CircuitStore`; a digest the store has never seen raises ``KeyError``
    telling the caller to upload it first.
    """
    ref = WorkloadRef.parse(workload)
    if ref.digest is not None:
        from repro.api.session import current_session

        circuit = current_session().circuits.get(ref.digest)
        if circuit is None:
            raise KeyError(
                f"circuit {ref.digest} is not in the session's circuit "
                "store; upload it first (repro circuits add / "
                "POST /circuits)"
            )
        return circuit
    size = ref.size if ref.size is not None else num_qubits
    if size is None:
        raise ValueError(
            f"workload {ref} carries no size; pass num_qubits or use "
            "'family@size'"
        )
    return get_benchmark(ref.family).circuit(size, rng=rng)


def iter_circuit_digests(params: Mapping[str, object]) -> Iterator[str]:
    """Yield every circuit digest referenced anywhere in ``params``.

    Walks nested tuples/lists/dicts so serve-side validation and fleet
    prefetch see digests wherever a param schema puts them.  Malformed
    ``circuit:`` strings raise (same contract as :func:`parse_circuit_ref`).
    """
    def walk(value: object) -> Iterator[str]:
        if isinstance(value, WorkloadRef):
            if value.digest is not None:
                yield value.digest
            return
        if isinstance(value, str):
            digest = parse_circuit_ref(value)
            if digest is not None:
                yield digest
            return
        if isinstance(value, (tuple, list)):
            for item in value:
                yield from walk(item)
            return
        if isinstance(value, Mapping):
            for item in value.values():
                yield from walk(item)

    for value in params.values():
        yield from walk(value)
