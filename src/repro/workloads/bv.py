"""Bernstein-Vazirani with the all-ones oracle.

The paper uses BV (§III-B) with the all-1s secret string "to maximize
gates": every data qubit contributes one CNOT onto the shared phase-
kickback ancilla, producing a fully serial chain of two-qubit gates all
touching one qubit — the worst case for limited connectivity and the best
showcase for long-range interactions.
"""

from __future__ import annotations

from typing import Optional

from repro.circuits.circuit import Circuit
from repro.circuits.gates import cx, h, x, z


def bernstein_vazirani(num_qubits: int, secret: Optional[str] = None) -> Circuit:
    """Build BV on ``num_qubits`` total qubits (data = ``num_qubits - 1``).

    ``secret`` is the hidden bitstring over the data qubits; ``None`` means
    all ones (the paper's choice).  The ancilla is the last qubit.

    The circuit leaves the data register in the computational basis state
    equal to ``secret`` — verified exactly by the statevector tests.
    """
    if num_qubits < 2:
        raise ValueError("BV needs at least one data qubit plus the ancilla")
    num_data = num_qubits - 1
    if secret is None:
        secret = "1" * num_data
    if len(secret) != num_data or any(b not in "01" for b in secret):
        raise ValueError(f"secret must be {num_data} bits of 0/1, got {secret!r}")

    ancilla = num_data
    circuit = Circuit(num_qubits)
    # Prepare the ancilla in |-> for phase kickback.
    circuit.append(x(ancilla))
    for q in range(num_data):
        circuit.append(h(q))
    circuit.append(h(ancilla))
    # Oracle: CNOT from each secret-1 data qubit onto the ancilla.
    for q, bit in enumerate(secret):
        if bit == "1":
            circuit.append(cx(q, ancilla))
    # Un-Hadamard the data register; it now holds the secret.
    for q in range(num_data):
        circuit.append(h(q))
    # Return the ancilla to |1> -> |1> deterministic state for cleanliness.
    circuit.append(h(ancilla))
    circuit.append(x(ancilla))
    return circuit
