"""QAOA for MAX-CUT on sparse random graphs.

The paper's near-term benchmark (§III-B): one QAOA layer for MAX-CUT on
Erdos-Renyi-style random graphs with a fixed edge density of 0.1.  The
cost layer is a ``ZZ`` rotation per edge (native two-qubit gate here; the
CX-RZ-CX lowering is available through the standard decomposition path),
followed by an ``RX`` mixer on every qubit.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.gates import h, rx, rzz
from repro.utils.rng import RngLike, ensure_rng

#: The paper's fixed edge density for QAOA graphs.
DEFAULT_EDGE_DENSITY = 0.1


def random_graph(
    num_nodes: int,
    edge_density: float = DEFAULT_EDGE_DENSITY,
    rng: RngLike = 0,
) -> List[Tuple[int, int]]:
    """Sample an undirected graph with ~``density`` fraction of all edges.

    We draw exactly ``round(density * C(n, 2))`` distinct edges so every
    sampled instance has the same size — this keeps the benchmark's gate
    count a deterministic function of ``num_nodes`` up to edge identity,
    matching the paper's "fixed edge density" framing.
    """
    if not 0.0 <= edge_density <= 1.0:
        raise ValueError(f"edge density out of range: {edge_density}")
    generator = ensure_rng(rng)
    all_pairs = [
        (u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)
    ]
    num_edges = int(round(edge_density * len(all_pairs)))
    if num_edges == 0 and num_nodes >= 2:
        num_edges = 1  # Keep at least one interaction so the benchmark is nontrivial.
    chosen = generator.choice(len(all_pairs), size=num_edges, replace=False)
    return [all_pairs[int(i)] for i in sorted(chosen)]


def qaoa_maxcut(
    num_qubits: int,
    edges: Optional[List[Tuple[int, int]]] = None,
    gamma: float = 0.7,
    beta: float = 0.3,
    layers: int = 1,
    rng: RngLike = 0,
) -> Circuit:
    """One-or-more-layer QAOA MAX-CUT ansatz.

    ``edges=None`` samples a random graph at the paper's 0.1 density using
    ``rng``.  Angles default to fixed representative values — the compiler
    metrics depend only on circuit structure, not the angles.
    """
    if num_qubits < 2:
        raise ValueError("QAOA needs at least 2 qubits")
    if layers < 1:
        raise ValueError("layers must be >= 1")
    if edges is None:
        edges = random_graph(num_qubits, rng=rng)
    for u, v in edges:
        if not (0 <= u < num_qubits and 0 <= v < num_qubits and u != v):
            raise ValueError(f"bad edge ({u}, {v})")

    circuit = Circuit(num_qubits)
    for q in range(num_qubits):
        circuit.append(h(q))
    for layer in range(layers):
        layer_gamma = gamma * (layer + 1) / layers
        layer_beta = beta * (1 - layer / (2 * layers))
        for u, v in edges:
            circuit.append(rzz(2.0 * layer_gamma, u, v))
        for q in range(num_qubits):
            circuit.append(rx(2.0 * layer_beta, q))
    return circuit


def cut_value(bits: str, edges: List[Tuple[int, int]]) -> int:
    """MAX-CUT objective of an assignment bitstring."""
    return sum(1 for u, v in edges if bits[u] != bits[v])


def expected_cut(probabilities, edges: List[Tuple[int, int]], num_qubits: int) -> float:
    """Expectation of the cut value under an outcome distribution.

    ``probabilities`` is indexable by basis-state integer (big-endian).
    """
    total = 0.0
    for index in range(1 << num_qubits):
        p = float(probabilities[index])
        if p < 1e-15:
            continue
        bits = format(index, f"0{num_qubits}b")
        total += p * cut_value(bits, edges)
    return total
