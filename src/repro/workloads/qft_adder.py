"""QFT adder (Ruiz-Perez & Garcia-Escartin, QIP 2017).

The paper's mixed benchmark (§III-B): "a circuit with two QFT components
and a highly parallel addition component".  Computes ``|a>|b> ->
|a>|a + b mod 2^n>`` by Fourier-transforming B, phase-kicking A's bits
into the Fourier state with controlled phases, and transforming back.

Register layout: A = qubits ``0 .. n-1``, B = qubits ``n .. 2n-1``.
Within each register, index 0 is the most significant bit (big-endian,
matching the simulator's bit order).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.circuits.circuit import Circuit
from repro.circuits.gates import cphase, h, swap


def qft(qubits: Sequence[int], include_swaps: bool = False) -> List:
    """QFT gate list over ``qubits`` (most significant first).

    ``include_swaps=False`` (default) leaves the output bit-reversed, the
    standard trick adders use: the inverse QFT undoes the reversal, so the
    swap network is never needed.
    """
    gates = []
    n = len(qubits)
    for i in range(n):
        gates.append(h(qubits[i]))
        for j in range(i + 1, n):
            angle = math.pi / (2 ** (j - i))
            gates.append(cphase(angle, qubits[j], qubits[i]))
    if include_swaps:
        for i in range(n // 2):
            gates.append(swap(qubits[i], qubits[n - 1 - i]))
    return gates


def inverse_qft(qubits: Sequence[int], include_swaps: bool = False) -> List:
    """Inverse of :func:`qft` (conjugate phases, reversed order)."""
    gates = []
    if include_swaps:
        n = len(qubits)
        for i in range(n // 2):
            gates.append(swap(qubits[i], qubits[n - 1 - i]))
    forward = qft(qubits, include_swaps=False)
    for gate in reversed(forward):
        if gate.name == "cphase":
            gates.append(cphase(-gate.params[0], *gate.qubits))
        else:
            gates.append(gate)
    return gates


def qft_adder(num_bits: int) -> Circuit:
    """Fourier-space adder on ``2 * num_bits`` qubits: B += A (mod 2^n)."""
    if num_bits < 1:
        raise ValueError("adder needs at least one bit")
    a_qubits = list(range(num_bits))
    b_qubits = list(range(num_bits, 2 * num_bits))
    circuit = Circuit(2 * num_bits)

    circuit.extend(qft(b_qubits))
    # Phase addition: after the swapless QFT, b_qubits[i] carries the phase
    # e^{2 pi i B / 2^{n-i}} on its |1> component.  Adding A means rotating
    # it by 2 pi A / 2^{n-i}; bit a_j (value weight 2^{n-1-j}) contributes
    # angle 2 pi 2^{n-1-j} / 2^{n-i} = pi / 2^{j-i}, nontrivial for j >= i.
    for i in range(num_bits):
        for j in range(i, num_bits):
            angle = math.pi / (2 ** (j - i))
            circuit.append(cphase(angle, a_qubits[j], b_qubits[i]))
    circuit.extend(inverse_qft(b_qubits))
    return circuit


def qft_adder_from_total_qubits(num_qubits: int) -> Circuit:
    """Adder sized to use at most ``num_qubits`` qubits (>= 2)."""
    if num_qubits < 2:
        raise ValueError("qft adder needs at least 2 qubits")
    return qft_adder(num_qubits // 2)


def encode_operands(a_value: int, b_value: int, num_bits: int) -> str:
    """Initial basis state encoding A and B (big-endian within registers)."""
    if a_value >= 2**num_bits or b_value >= 2**num_bits:
        raise ValueError("operand does not fit in the register")
    a_bits = format(a_value, f"0{num_bits}b")
    b_bits = format(b_value, f"0{num_bits}b")
    return a_bits + b_bits


def decode_sum(bits: str, num_bits: int) -> int:
    """Read ``(a + b) mod 2^n`` from the B register of a measured bitstring."""
    return int(bits[num_bits:2 * num_bits], 2)
