"""A Session whose backend is a running ``repro serve`` server.

:class:`RemoteSession` makes "a backend = a Session policy" literal: it
exposes the same ``run(experiment, quick=..., force=..., **params)``
call as :class:`repro.api.Session`, but proxies the execution to a
serving endpoint over HTTP and decodes the returned envelope through
``ExperimentResult.from_dict`` — so call sites can swap a local session
for a remote one without changing shape:

    from repro.api import RemoteSession

    session = RemoteSession("http://127.0.0.1:8000")
    result = session.run("fig10", quick=True)
    print(result.format())          # same object contract as Session.run

Sweeps speak the same protocol at cell granularity:
:meth:`RemoteSession.iter_sweep` POSTs the
:class:`~repro.api.sweep.SweepSpec` to ``/sweeps`` (the server expands
it, short-circuits stored cells, and dedups in-flight ones) and then
consumes ``GET /sweeps/<id>/stream`` incrementally — each ``(cell,
result)`` pair is yielded the moment the server finalizes that cell,
not when the whole grid finishes.  :meth:`RemoteSession.run_sweep`
drains the same stream into the canonically-ordered
:class:`~repro.api.sweep.SweepResult` a local ``Session.run_sweep``
returns.  Together with ``run`` this satisfies
:class:`repro.api.protocol.SessionProtocol`.

Server-side errors map back onto the exceptions the local session would
raise: an unknown experiment is a ``KeyError``, a bad parameter is a
``TypeError``/``ValueError`` (transported as HTTP 4xx), and a failed
execution surfaces as :class:`RemoteRunError` (HTTP 5xx).  Only the
standard library is used (``urllib``), like everything else here.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.api.results import ExperimentResult
from repro.api.sweep import SweepCell, SweepResult, SweepSpec
from repro.obs import trace as _obs

#: Seconds to back off before the single idempotent-GET retry.
RETRY_BACKOFF_S = 0.2


class RemoteRunError(RuntimeError):
    """A run failed on the server (the transported job error)."""


def _raise_mapped(error: urllib.error.HTTPError) -> None:
    """Re-raise a server error as the local exception it stands for."""
    message, error_type = _decode_error(error)
    if error.code == 404:
        raise KeyError(message) from None
    if error.code == 400:
        if error_type == "TypeError":
            raise TypeError(message) from None
        raise ValueError(message) from None
    raise RemoteRunError(message) from None


def _decode_error(error: urllib.error.HTTPError) -> tuple:
    """``(message, error_type)`` from a server error body.

    ``error_type`` is the server's structured name for the local
    exception class (see ``repro.serve.app._error``); ``None`` when the
    body carries none.
    """
    try:
        payload = json.loads(error.read().decode("utf-8", "replace"))
        return str(payload.get("error", payload)), payload.get("error_type")
    except ValueError:
        return f"HTTP {error.code}", None


class RemoteSession:
    """Run registered experiments against a remote serving endpoint.

    ``trace=True`` turns on end-to-end tracing (see :mod:`repro.obs`):
    every :meth:`run` / :meth:`iter_sweep` mints a fresh trace id,
    propagates it to the server in the ``X-Repro-Trace`` header (joining
    the server's routing, queue, and worker spans to the same trace),
    records the client's own spans, and exports them to the server's
    trace store via ``POST /trace`` — so one ``GET /trace/<id>`` shows
    the whole distributed operation.  :attr:`last_trace_id` names the
    most recent trace.  Tracing never changes result bytes (the
    zero-perturbation contract) and export failures are dropped, never
    raised.
    """

    def __init__(self, base_url: str, timeout: Optional[float] = None,
                 trace: bool = False):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Server-reported outcome counters for this client's run()
        #: calls — the RemoteSession analogue of ``ResultStore.hits`` /
        #: ``misses`` on a local read-through session.
        self.hits = 0
        self.misses = 0
        self._tracer = (_obs.Tracer(_obs.SpanBuffer(), service="client")
                        if trace else None)
        #: Trace id of the most recent traced operation (or ``None``).
        self.last_trace_id: Optional[str] = None

    # -- transport ---------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None):
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"}
        with _obs.span("client.request", method=method,
                       path=path) as request_span:
            active = _obs.current()
            if active is not None and active.span_id is not None:
                headers[_obs.TRACE_HEADER] = _obs.format_trace_header(
                    active.trace_id, active.span_id)
            request = urllib.request.Request(
                self.base_url + path, data=body, method=method,
                headers=headers,
            )
            response = urllib.request.urlopen(request,
                                              timeout=self.timeout)
            with response:
                request_span.set(status=response.status)
                return response, json.loads(
                    response.read().decode("utf-8"))

    @contextmanager
    def _traced(self, name: str, **attrs):
        """Mint one trace around an operation and export its spans."""
        if self._tracer is None:
            yield
            return
        trace_id = _obs.new_trace_id()
        self.last_trace_id = trace_id
        try:
            with _obs.activate(self._tracer, trace_id):
                with _obs.span(name, **attrs):
                    yield
        finally:
            self._export_spans()

    def _export_spans(self) -> None:
        """Ship buffered spans to the server (best effort: a failed
        export loses observability, never the operation)."""
        spans = self._tracer.sink.drain()
        if not spans:
            return
        try:
            self._request("POST", "/trace", {"spans": spans})
        except Exception:
            pass

    def _get(self, path: str) -> Dict[str, Any]:
        """One GET, retried once on a *transient* transport failure.

        GETs are idempotent, so a dropped connection or timeout (a
        server restarting, a load balancer shedding) is worth one short
        backoff and retry before surfacing.  An ``HTTPError`` is a
        *response* — the server spoke — and is never retried here
        (it subclasses ``URLError``, hence the explicit re-raise).
        """
        try:
            _, decoded = self._request("GET", path)
        except urllib.error.HTTPError:
            raise
        except (urllib.error.URLError, TimeoutError, ConnectionError):
            time.sleep(RETRY_BACKOFF_S)
            _, decoded = self._request("GET", path)
        return decoded

    # -- the Session-shaped surface ----------------------------------------------

    def run(self, experiment: str, quick: bool = False,
            force: bool = False, **params) -> ExperimentResult:
        """Run ``experiment`` on the server and decode the result.

        Blocks until the server has an envelope (a store hit returns
        immediately; a miss waits for the job).  Raises ``KeyError`` for
        an unknown experiment, ``TypeError``/``ValueError`` for invalid
        parameters, and :class:`RemoteRunError` when the server-side
        execution itself failed.
        """
        with self._traced("client.run", experiment=experiment,
                          quick=bool(quick)):
            try:
                response, envelope = self._request("POST", "/run", {
                    "experiment": experiment,
                    "quick": quick,
                    "force": force,
                    "params": params,
                    "wait": True,
                })
            except urllib.error.HTTPError as error:
                _raise_mapped(error)
            if response.headers.get("X-Repro-Store") == "hit":
                self.hits += 1
            else:
                self.misses += 1
            return ExperimentResult.from_dict(envelope)

    def iter_sweep(
        self, spec: SweepSpec, force: bool = False,
    ) -> Iterator[Tuple[SweepCell, ExperimentResult]]:
        """Run ``spec`` on the server, yielding ``(cell, result)`` pairs
        **in completion order** as the server's stream delivers them.

        The server expands the same canonical grid this client holds,
        so stream records are matched to local cells by index (and
        cross-checked by store key).  Cells the server answers from its
        result store count as :attr:`hits`; computed cells as
        :attr:`misses`.  A failed cell raises :class:`RemoteRunError`
        when its record arrives; the spec's own validation errors
        (``KeyError``/``TypeError``/``ValueError``) surface from the
        submission request exactly like :meth:`run`.
        """
        with self._traced("client.sweep", experiment=spec.experiment,
                          quick=bool(spec.quick)):
            try:
                _, description = self._request("POST", "/sweeps",
                                               {**spec.to_dict(),
                                                "force": bool(force)})
            except urllib.error.HTTPError as error:
                _raise_mapped(error)
        cells = spec.cells()
        stream_path = (description.get("stream_url")
                       or f"/sweeps/{description['id']}/stream")
        request = urllib.request.Request(
            self.base_url + stream_path, method="GET",
        )
        try:
            response = urllib.request.urlopen(request,
                                              timeout=self.timeout)
        except urllib.error.HTTPError as error:
            _raise_mapped(error)
        with response:
            # http.client de-chunks transparently; iterating the
            # response yields the stream's JSON lines as they arrive.
            for raw in response:
                raw = raw.strip()
                if not raw:
                    continue
                record = json.loads(raw)
                if "sweep" in record:
                    return  # the terminal summary line
                cell = cells[record["index"]]
                if record.get("key") != cell.key:
                    raise RemoteRunError(
                        f"server cell {record['index']} key "
                        f"{record.get('key')!r} does not match the "
                        f"local expansion ({cell.key!r}); client and "
                        "server disagree about the registry"
                    )
                if record.get("status") == "failed":
                    raise RemoteRunError(
                        f"sweep cell {cell.index} {dict(cell.params)!r} "
                        f"failed: {record.get('error')}"
                    )
                if record.get("source") == "store":
                    self.hits += 1
                else:
                    self.misses += 1
                yield cell, ExperimentResult.from_dict(record["envelope"])

    def run_sweep(self, spec: SweepSpec,
                  force: bool = False) -> SweepResult:
        """Run every cell of ``spec`` on the server; the canonically
        ordered :class:`~repro.api.sweep.SweepResult` — the same object
        a local ``Session.run_sweep`` returns."""
        pairs = list(self.iter_sweep(spec, force=force))
        pairs.sort(key=lambda pair: pair[0].index)
        return SweepResult(
            experiment=spec.experiment, quick=spec.quick,
            cells=tuple(cell for cell, _ in pairs),
            results=tuple(result for _, result in pairs),
        )

    def upload_circuit(self, qasm_text: str) -> str:
        """``POST /circuits``: ingest an OpenQASM program; the digest.

        Idempotent — re-uploading known content returns the same digest.
        Use the returned digest (as ``circuit:<digest>``) in run/sweep
        parameters.  Raises ``ValueError`` on malformed QASM (the
        server's line-attributed validation message).
        """
        request = urllib.request.Request(
            self.base_url + "/circuits", data=qasm_text.encode("utf-8"),
            headers={"Content-Type": "text/plain; charset=utf-8"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                decoded = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            _raise_mapped(error)
        return decoded["digest"]

    def circuit_qasm(self, digest: str) -> str:
        """``GET /circuits/<digest>``: the stored canonical QASM text
        (``KeyError`` when the server does not hold the digest)."""
        request = urllib.request.Request(
            self.base_url + f"/circuits/{digest}", method="GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            if error.code in (400, 404):
                raise KeyError(_decode_error(error)[0]) from None
            raise

    def submit(self, experiment: str, quick: bool = False,
               force: bool = False, **params) -> Dict[str, Any]:
        """Enqueue without waiting; returns the job description
        (or, on a store hit, the envelope itself)."""
        _, decoded = self._request("POST", "/run", {
            "experiment": experiment,
            "quick": quick,
            "force": force,
            "params": params,
            "wait": False,
        })
        return decoded

    # -- read-only views ---------------------------------------------------------

    def experiments(self) -> Dict[str, Dict[str, Any]]:
        """The server's registry, keyed by experiment name."""
        listing = self._get("/experiments")["experiments"]
        return {spec["name"]: spec for spec in listing}

    def result(self, key: str) -> Dict[str, Any]:
        """The stored envelope under ``key`` (``KeyError`` on a miss)."""
        try:
            return self._get(f"/results/{key}")
        except urllib.error.HTTPError as error:
            if error.code in (400, 404):
                raise KeyError(_decode_error(error)[0]) from None
            raise

    def job(self, job_id: str) -> Dict[str, Any]:
        try:
            return self._get(f"/jobs/{job_id}")
        except urllib.error.HTTPError as error:
            if error.code == 404:
                raise KeyError(_decode_error(error)[0]) from None
            raise

    def sweep(self, sweep_id: str) -> Dict[str, Any]:
        """Per-cell status of a submitted sweep (``KeyError`` if the
        server no longer tracks it)."""
        try:
            return self._get(f"/sweeps/{sweep_id}")
        except urllib.error.HTTPError as error:
            if error.code == 404:
                raise KeyError(_decode_error(error)[0]) from None
            raise

    def metrics(self) -> Dict[str, Any]:
        return self._get("/metrics")

    def __repr__(self) -> str:
        return f"RemoteSession({self.base_url!r})"
