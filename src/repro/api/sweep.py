"""First-class parameter sweeps: the SweepSpec / SweepResult contract.

The paper's experiments are all parameter sweeps, and every layer below
this one already speaks cells — ``grid_map`` fans a driver's grid over
the engine, the result store keys each (experiment, resolved-params)
run, the serving layer dedups in-flight work by that key.  What was
missing is a *public* object describing a sweep, so those layers can
fan out, dedup, and stream at **cell** granularity instead of
whole-experiment granularity.

A :class:`SweepSpec` is an experiment name plus a parameter grid::

    from repro.api import Session, SweepSpec

    spec = SweepSpec("ext-trapped-ion", axes={"program_size": (10, 20)},
                     quick=True)
    result = Session(store_dir="/tmp/store").run_sweep(spec)
    for cell, experiment_result in result:
        print(cell.params, experiment_result.format())

Expansion is **canonical**: axes are ordered by name and the grid is
their cartesian product in row-major order (last axis fastest, exactly
:func:`repro.exec.keys.task_grid`), so two clients describing the same
grid — whatever order they wrote the axes in — expand to the same cells
in the same order.  Every cell carries its own
:func:`repro.api.store.store_key` over the cell's *resolved* parameter
mapping — the same digest the result store and the serving layer use —
which is what makes cell results replayable and dedupable for free:
a sweep cell and the equivalent single ``Session.run`` share one key,
one stored envelope, one in-flight job.

Validation happens at construction, with the registry's conventions: an
unknown axis or base parameter raises ``TypeError`` naming the unknown
key and the known set (:meth:`ExperimentSpec.validate_params`), a
malformed axis raises ``ValueError``, and a value with no canonical
store form is rejected by :func:`store_key` before anything runs.

A :class:`SweepResult` is the schema-versioned envelope around the
per-cell results, with ``to_dict``/``from_dict`` mirroring
:class:`~repro.api.results.ExperimentResult` — bump
:data:`SWEEP_SCHEMA_VERSION` when its layout changes shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.api.results import ExperimentResult

#: Envelope identifier for serialized sweep results.
SWEEP_SCHEMA = "repro.sweep-result"

#: Bump when the sweep envelope layout changes shape.
SWEEP_SCHEMA_VERSION = 1


def _normalized(value: Any) -> Any:
    """Lists folded into tuples, recursively — the store's equivalence
    (``mids=[2.0]`` == ``mids=(2.0,)``), applied up front so a spec
    rebuilt from its JSON wire form expands to identical cells."""
    if isinstance(value, (tuple, list)):
        return tuple(_normalized(item) for item in value)
    return value


def _jsonable(value: Any) -> Any:
    """The JSON spelling of a normalized parameter value (tuples become
    lists; everything else is already a JSON primitive)."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class SweepCell:
    """One expanded grid point of a sweep.

    ``params`` is the per-cell override mapping (the spec's ``base``
    overlaid by this cell's axis values); ``resolved`` is the full
    effective parameter mapping
    (:meth:`ExperimentSpec.resolved_params`); ``key`` is the cell's
    result-store digest — identical to the key of the equivalent
    single-experiment run by construction.
    """

    index: int
    params: Dict[str, Any]
    resolved: Dict[str, Any]
    key: str

    def describe(self) -> Dict[str, Any]:
        """The JSON shape of this cell used on the wire."""
        return {
            "index": self.index,
            "params": {name: _jsonable(value)
                       for name, value in self.params.items()},
            "key": self.key,
        }


class SweepSpec:
    """A validated, canonically-ordered parameter sweep of one experiment.

    ``axes``
        Mapping of parameter name to a non-empty sequence of values;
        the grid is the cartesian product.  Exact repeats within an
        axis are dropped (they would name the same cell twice).
    ``base``
        Fixed parameter overrides applied to every cell.  A name cannot
        be both an axis and a base override.
    ``quick``
        Apply the experiment's registered ``--quick`` preset underneath
        ``base`` and the axis values, exactly like ``Session.run``.
    """

    def __init__(self, experiment: str,
                 axes: Optional[Mapping[str, Any]] = None,
                 base: Optional[Mapping[str, Any]] = None,
                 quick: bool = False):
        from repro.api.registry import get_experiment
        from repro.api.store import store_key

        spec = get_experiment(experiment)  # KeyError on an unknown name
        axes = dict(axes or {})
        base = dict(base or {})
        overlap = sorted(set(axes) & set(base))
        if overlap:
            raise ValueError(
                f"parameter(s) {', '.join(map(repr, overlap))} appear in "
                "both axes and base; a sweep parameter is one or the other"
            )
        # The registry's error convention: unknown names raise TypeError
        # naming the unknown key and the known set.
        spec.validate_params({name: None for name in (*axes, *base)})
        normalized_axes: Dict[str, Tuple[Any, ...]] = {}
        for name in sorted(axes):
            values = axes[name]
            if isinstance(values, (str, bytes)) or not hasattr(values,
                                                               "__iter__"):
                raise ValueError(
                    f"axis {name!r} must be a sequence of values, got "
                    f"{values!r}"
                )
            seen: List[str] = []
            kept: List[Any] = []
            for value in values:
                value = _normalized(value)
                marker = repr(value)
                if marker in seen:
                    continue
                seen.append(marker)
                kept.append(value)
            if not kept:
                raise ValueError(f"axis {name!r} has no values")
            normalized_axes[name] = tuple(kept)
        self.experiment = experiment
        self.axes: Dict[str, Tuple[Any, ...]] = normalized_axes
        self.base: Dict[str, Any] = {name: _normalized(value)
                                     for name, value in base.items()}
        self.quick = bool(quick)
        # Expand eagerly: every validation error — including a value
        # with no canonical store form — surfaces at construction, not
        # mid-sweep.
        from repro.exec.keys import task_grid

        combos = task_grid(**self.axes) if self.axes else [{}]
        cells = []
        for index, combo in enumerate(combos):
            params = dict(self.base)
            params.update(combo)
            resolved = spec.resolved_params(quick=self.quick,
                                            overrides=params)
            cells.append(SweepCell(
                index=index,
                params=params,
                resolved=resolved,
                key=store_key(experiment, resolved),
            ))
        self._cells: Tuple[SweepCell, ...] = tuple(cells)

    def cells(self) -> Tuple[SweepCell, ...]:
        """Every grid point, in canonical order (axes sorted by name,
        cartesian product row-major, last axis fastest)."""
        return self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def keys(self) -> Tuple[str, ...]:
        """The cells' store keys, in canonical cell order."""
        return tuple(cell.key for cell in self._cells)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON wire form (``POST /sweeps`` request body)."""
        return {
            "experiment": self.experiment,
            "axes": {name: [_jsonable(value) for value in values]
                     for name, values in self.axes.items()},
            "base": {name: _jsonable(value)
                     for name, value in self.base.items()},
            "quick": self.quick,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` (re-validating fully)."""
        if not isinstance(payload, Mapping):
            raise TypeError(f"expected a sweep spec object, got "
                            f"{type(payload).__name__}")
        experiment = payload.get("experiment")
        if not isinstance(experiment, str):
            raise ValueError('a sweep spec needs an "experiment" name')
        # Shape-check before any falsy coercion: a wrong-shaped "axes"
        # ([], false, "") must be rejected, not silently emptied.
        axes = payload.get("axes")
        base = payload.get("base")
        axes = {} if axes is None else axes
        base = {} if base is None else base
        if not isinstance(axes, Mapping):
            raise ValueError('"axes" must be an object mapping parameter '
                             "names to value arrays")
        if not isinstance(base, Mapping):
            raise ValueError('"base" must be an object of parameter '
                             "overrides")
        return cls(experiment, axes=axes, base=base,
                   quick=bool(payload.get("quick", False)))

    def __eq__(self, other) -> bool:
        if not isinstance(other, SweepSpec):
            return NotImplemented
        return self.keys() == other.keys() and self.quick == other.quick

    def __repr__(self) -> str:
        axes = ", ".join(f"{name}×{len(values)}"
                         for name, values in self.axes.items())
        return (f"SweepSpec({self.experiment!r}, cells={len(self)}"
                f"{', ' + axes if axes else ''}"
                f"{', quick' if self.quick else ''})")


@dataclass
class SweepResult:
    """Every cell's result, aligned with the spec's canonical order.

    Iterating yields ``(cell, result)`` pairs; ``to_dict`` returns the
    schema-versioned envelope whose per-cell ``result`` entries are the
    cells' own ``ExperimentResult.to_dict()`` envelopes — each one
    byte-identical (through ``canonical_json``) to the equivalent
    single-experiment ``--format json`` output.
    """

    experiment: str
    quick: bool
    cells: Tuple[SweepCell, ...]
    results: Tuple[ExperimentResult, ...]

    def __post_init__(self):
        if len(self.cells) != len(self.results):
            raise ValueError(
                f"{len(self.cells)} cells but {len(self.results)} results"
            )

    def __iter__(self) -> Iterator[Tuple[SweepCell, ExperimentResult]]:
        return iter(zip(self.cells, self.results))

    def __len__(self) -> int:
        return len(self.cells)

    def format(self) -> str:
        """Per-cell figure text, each under a one-line cell header."""
        blocks = []
        for cell, result in self:
            params = ", ".join(f"{name}={value!r}"
                               for name, value in cell.params.items())
            blocks.append(f"== {self.experiment}[{params}] ==\n"
                          + result.format())
        return "\n\n".join(blocks)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SWEEP_SCHEMA,
            "schema_version": SWEEP_SCHEMA_VERSION,
            "experiment": self.experiment,
            "quick": self.quick,
            "cells": [
                {**cell.describe(), "result": result.to_dict()}
                for cell, result in self
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepResult":
        """Reconstruct from a :meth:`to_dict` envelope.

        Cell keys are re-derived from the registry (never trusted from
        the payload), so a stale envelope whose parameters no longer
        resolve — a removed driver parameter, a schema bump — fails
        loudly instead of replaying under the wrong identity.
        """
        from repro.api.registry import get_experiment
        from repro.api.store import store_key

        if not isinstance(payload, Mapping):
            raise TypeError(f"expected a sweep envelope dict, got "
                            f"{type(payload).__name__}")
        if payload.get("schema") != SWEEP_SCHEMA:
            raise ValueError(
                f"not a {SWEEP_SCHEMA} payload: "
                f"schema={payload.get('schema')!r}"
            )
        version = payload.get("schema_version")
        if version != SWEEP_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported sweep schema version {version!r} "
                f"(expected {SWEEP_SCHEMA_VERSION})"
            )
        experiment = payload.get("experiment")
        if not isinstance(experiment, str):
            raise ValueError('sweep envelope needs an "experiment" name')
        spec = get_experiment(experiment)
        entries = payload.get("cells")
        if not isinstance(entries, list):
            raise ValueError('sweep envelope needs a "cells" array')
        quick = bool(payload.get("quick", False))
        cells = []
        results = []
        for index, entry in enumerate(entries):
            if not isinstance(entry, Mapping):
                raise ValueError(f"cell {index} is not an object")
            params = {name: _normalized(value)
                      for name, value in (entry.get("params") or {}).items()}
            resolved = spec.resolved_params(quick=quick, overrides=params)
            cells.append(SweepCell(
                index=index, params=params, resolved=resolved,
                key=store_key(experiment, resolved),
            ))
            results.append(ExperimentResult.from_dict(entry.get("result")))
        return cls(experiment=experiment, quick=quick,
                   cells=tuple(cells), results=tuple(results))
