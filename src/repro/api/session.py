"""Session-scoped execution policy.

A :class:`Session` owns everything that used to live in process-wide
module globals: the worker count for sweep grids, the (two-tier) compile
cache, and the base RNG policy.  Two sessions with different
configurations can coexist in one process — the prerequisite for
embedding the repro as a library in a service:

    from repro.api import Session

    fast = Session(jobs=8, cache_dir="/var/cache/repro")
    result = fast.run("fig10", quick=True)
    print(result.format())          # or result.to_dict() for JSON

Scoping uses a :mod:`contextvars` context variable, so ``activate()``
nests correctly and is safe under asyncio/threaded callers: code running
inside ``with session.activate():`` (including ``repro.exec.run_tasks``
and every ``cached_compile``) resolves *that* session.  Outside any
``activate()`` block, a lazily-constructed process **default session**
applies — the legacy ``set_jobs``/``set_cache_dir`` shims mutate only
that default.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterable, List, Optional

from repro.api.circuits import CIRCUIT_DIR_ENV, CircuitStore
from repro.api.store import ResultStore
from repro.exec.cache import CACHE_DIR_ENV, CompileCache
from repro.obs import trace as _obs

_CURRENT: ContextVar[Optional["Session"]] = ContextVar(
    "repro_current_session", default=None
)
_DEFAULT: Optional["Session"] = None


class Session:
    """One self-contained execution configuration.

    ``jobs``
        Worker-process count for sweep grids (default 1 = inline).
    ``cache`` / ``cache_dir``
        The compile cache this session's work goes through.  Pass an
        existing :class:`CompileCache` to share a warm memory tier, or a
        directory for a fresh cache with an on-disk tier (``None`` =
        memory only).
    ``seed``
        Optional base RNG seed applied to experiments run through
        :meth:`run` that accept an ``rng`` parameter; ``None`` keeps
        each driver's own default, preserving historical output.
    ``store`` / ``store_dir``
        Optional persistent :class:`~repro.api.store.ResultStore` making
        :meth:`run` **read-through**: a previously stored run decodes
        via ``ExperimentResult.from_dict`` instead of recomputing
        (``force=True`` escapes).  ``None`` (the default) always
        recomputes.
    ``backend``
        Optional :class:`~repro.exec.engine.ExecBackend` pinning *how*
        this session's task grids execute (inline, spawn pool, ...).
        ``None`` (the default) picks inline vs. spawn-pool from
        ``jobs`` per call — the historical behavior.  A per-call
        ``run_tasks(jobs=...)`` override still wins over the pin.
    ``circuits`` / ``circuit_dir``
        The content-addressed :class:`~repro.api.circuits.CircuitStore`
        this session resolves ``circuit:<digest>`` workload references
        through.  Defaults to ``$REPRO_CIRCUIT_DIR`` or
        ``~/.cache/repro/circuits`` (nothing touches disk until a
        circuit is actually added or resolved).
    ``tracer`` / ``trace_dir``
        Optional tracing (see :mod:`repro.obs`): a directory makes every
        :meth:`run` record its spans — session, store read/write, task
        fan-out, per-task compile and shots — into an append-only JSONL
        trace under it; :attr:`last_trace_id` names the most recent one.
        ``None`` (the default) records nothing and costs nothing.
        Tracing never feeds keys, seeds, or envelopes (the
        zero-perturbation contract).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        cache: Optional[CompileCache] = None,
        seed: Optional[int] = None,
        store_dir: Optional[str] = None,
        store: Optional[ResultStore] = None,
        backend=None,
        circuit_dir: Optional[str] = None,
        circuits: Optional[CircuitStore] = None,
        trace_dir: Optional[str] = None,
        tracer: Optional[_obs.Tracer] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if cache is not None and cache_dir is not None:
            raise ValueError("pass cache or cache_dir, not both")
        if store is not None and store_dir is not None:
            raise ValueError("pass store or store_dir, not both")
        if circuits is not None and circuit_dir is not None:
            raise ValueError("pass circuits or circuit_dir, not both")
        if tracer is not None and trace_dir is not None:
            raise ValueError("pass tracer or trace_dir, not both")
        if backend is not None and not callable(getattr(backend, "run",
                                                        None)):
            raise TypeError(
                f"backend must be an ExecBackend (object with a run() "
                f"method), got {backend!r}")
        self.jobs = int(jobs)
        self.cache = cache if cache is not None else CompileCache(cache_dir)
        self.seed = None if seed is None else int(seed)
        self.store = (store if store is not None
                      else ResultStore(store_dir) if store_dir else None)
        self.backend = backend
        if circuits is None:
            if circuit_dir is None:
                circuit_dir = (os.environ.get(CIRCUIT_DIR_ENV)
                               or os.path.join(os.path.expanduser("~"),
                                               ".cache", "repro", "circuits"))
            circuits = CircuitStore(circuit_dir)
        self.circuits = circuits
        if tracer is None and trace_dir is not None:
            from repro.obs import TraceStore

            tracer = _obs.Tracer(TraceStore(trace_dir), service="session")
        self.tracer = tracer
        #: Trace id of the most recent traced :meth:`run` (``None``
        #: until one happens, or when tracing is off).
        self.last_trace_id: Optional[str] = None
        #: Sweep tasks dispatched under this session (parent-side count,
        #: any worker level) — zero across a pure store replay.
        self.tasks_executed = 0

    # -- scoping -----------------------------------------------------------------------

    @contextmanager
    def activate(self):
        """Make this the current session for the dynamic extent."""
        token = _CURRENT.set(self)
        try:
            yield self
        finally:
            _CURRENT.reset(token)

    # -- execution ---------------------------------------------------------------------

    def run_tasks(
        self, task_fn: Callable, tasks: Iterable, jobs: Optional[int] = None
    ) -> List:
        """Fan ``tasks`` over the sweep engine under this session."""
        from repro.exec.engine import run_tasks

        return run_tasks(task_fn, tasks, jobs=jobs, session=self)

    def cached_compile(self, circuit, topology, config=None,
                       persist: bool = True):
        """``compile_circuit`` behind this session's compile cache."""
        from repro.exec.cache import cached_compile

        return cached_compile(
            circuit, topology, config, persist=persist, cache=self.cache
        )

    def run(self, experiment: str, quick: bool = False,
            force: bool = False, **params):
        """Run a registered experiment under this session's policy.

        Returns the driver's :class:`~repro.api.results.ExperimentResult`.
        ``quick=True`` applies the spec's reduced-parameter preset;
        keyword arguments override individual parameters.

        With a configured result store the call is **read-through**: a
        stored envelope for this (experiment, resolved params) decodes
        via ``from_dict`` and nothing recomputes; a miss runs the
        driver, persists its envelope, and returns it.  ``force=True``
        skips the lookup but still refreshes the stored entry.  Either
        way one ledger line records the outcome.
        """
        from repro.api.registry import get_experiment

        spec = get_experiment(experiment)
        if (
            self.seed is not None
            and "rng" not in params
            and any(p.name == "rng" for p in spec.params)
        ):
            params["rng"] = self.seed
        with _obs.root_span(self.tracer, "session.run", service="session",
                            experiment=spec.name,
                            quick=bool(quick)) as run_span:
            if run_span.trace_id is not None:
                self.last_trace_id = run_span.trace_id
            if self.store is None:
                with self.activate():
                    return spec.run(quick=quick, **params)

            from repro.api.results import ExperimentResult
            from repro.api.store import store_key

            key = store_key(
                spec.name, spec.resolved_params(quick=quick,
                                                overrides=params)
            )
            start = time.perf_counter()
            if not force:
                with _obs.span("store.read", key=key[:16]) as read_span:
                    envelope = self.store.get(key)
                    read_span.set(hit=envelope is not None)
                if envelope is not None:
                    try:
                        result = ExperimentResult.from_dict(envelope)
                    except (TypeError, ValueError):
                        # A stale or corrupt entry (e.g. written before a
                        # schema bump) degrades to a miss and is
                        # overwritten below.
                        pass
                    else:
                        run_span.set(store="hit")
                        self.store.record(
                            key, spec.name, time.perf_counter() - start,
                            hit=True, trace=run_span.trace_id,
                        )
                        return result
            with self.activate():
                result = spec.run(quick=quick, **params)
            run_span.set(store="miss")
            with _obs.span("store.write", key=key[:16]):
                self.store.put(key, result.to_dict())
            self.store.record(
                key, spec.name, time.perf_counter() - start, hit=False,
                trace=run_span.trace_id,
            )
            return result

    # -- sweeps ------------------------------------------------------------------------

    def iter_sweep(self, spec, force: bool = False):
        """Run a :class:`~repro.api.sweep.SweepSpec` cell by cell,
        yielding ``(cell, result)`` as each completes.

        Every cell goes through :meth:`run`, so cells inherit this
        session's full policy — task grids fan out over the session's
        backend/jobs, and with a configured store each cell is
        **read-through** under its own cell key (a previously stored
        cell replays with zero tasks executed; ``force=True`` recomputes
        every cell).
        """
        for cell in spec.cells():
            result = self.run(spec.experiment, quick=spec.quick,
                              force=force, **dict(cell.params))
            yield cell, result

    def run_sweep(self, spec, force: bool = False):
        """Run every cell of ``spec``; the aligned
        :class:`~repro.api.sweep.SweepResult` envelope."""
        from repro.api.sweep import SweepResult

        cells = []
        results = []
        for cell, result in self.iter_sweep(spec, force=force):
            cells.append(cell)
            results.append(result)
        return SweepResult(experiment=spec.experiment, quick=spec.quick,
                           cells=tuple(cells), results=tuple(results))

    # -- introspection -----------------------------------------------------------------

    @property
    def hits(self) -> int:
        """Replay count of this session's result store (zero without
        one).  Note the counters live on the store object: sessions
        sharing one store — the serving layer's per-job sessions —
        share the counts."""
        return self.store.hits if self.store is not None else 0

    @property
    def misses(self) -> int:
        """Miss (fresh execution) count of this session's result store
        (zero without one); see :attr:`hits` for the sharing caveat."""
        return self.store.misses if self.store is not None else 0

    def cache_stats(self) -> dict:
        """This session's compile-cache counters (per-run, not global)."""
        return self.cache.stats()

    def __repr__(self) -> str:
        where = self.cache.path or "memory"
        stored = self.store.path if self.store is not None else None
        pinned = f", backend={self.backend!r}" if self.backend else ""
        return (f"Session(jobs={self.jobs}, cache={where!r}, "
                f"seed={self.seed!r}, store={stored!r}, "
                f"circuits={self.circuits.path!r}{pinned})")


# -- current / default session resolution ------------------------------------------------


def current_session() -> Session:
    """The active session: innermost ``activate()``, else the default."""
    active = _CURRENT.get()
    return active if active is not None else default_session()


def default_session() -> Session:
    """The process default session (lazily built from the environment)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Session(
            cache_dir=os.environ.get(CACHE_DIR_ENV) or None
        )
    return _DEFAULT


def install_default(session: Optional[Session]) -> Optional[Session]:
    """Replace the process default session, returning the previous one.

    ``None`` resets to "unconfigured": the next :func:`default_session`
    call rebuilds from the environment.  Used by worker initializers
    (to mirror the parent's cache policy) and test fixtures.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = session
    return previous
