"""The common result contract every experiment driver returns.

An :class:`ExperimentResult` renders the paper's figure text via
``format()`` (unchanged from the original drivers) and additionally
round-trips through a schema-stable JSON form:

* ``to_dict()`` — a JSON-compatible envelope ``{"schema", "schema_version",
  "experiment", "result_type", "data"}`` whose ``data`` is the tagged
  encoding of the result dataclass (:mod:`repro.api.serialize`);
* ``from_dict(payload)`` — reconstructs an equal result object, so
  ``Result.from_dict(result.to_dict())`` is the identity.

Every concrete result is a dataclass registered through
:func:`repro.api.registry.register_experiment`, which stamps its
experiment name and serializable registration; the default ``to_dict``
and ``from_dict`` below therefore work for all of them without
per-class code.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

#: Envelope identifier — the JSON output contract's format marker.
RESULT_SCHEMA = "repro.experiment-result"

#: Bump when the envelope layout or tagged encoding changes shape.
RESULT_SCHEMA_VERSION = 1


class ExperimentResult:
    """Base class (and protocol) for experiment result objects.

    Subclasses are dataclasses; ``format()`` renders the figure text and
    must stay byte-stable, while ``to_dict``/``from_dict`` expose the
    same data programmatically.
    """

    #: Stamped by ``register_experiment`` — the registry name this
    #: result type belongs to.
    experiment_name: str = ""

    def format(self) -> str:
        raise NotImplementedError(
            f"{type(self).__name__} must implement format()"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible envelope around the tagged result encoding."""
        from repro.api.serialize import encode

        if not dataclasses.is_dataclass(self):
            raise TypeError(
                f"{type(self).__name__} must be a dataclass to serialize"
            )
        return {
            "schema": RESULT_SCHEMA,
            "schema_version": RESULT_SCHEMA_VERSION,
            "experiment": type(self).experiment_name,
            "result_type": type(self).__name__,
            "data": encode(self),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentResult":
        """Reconstruct a result from its ``to_dict`` envelope.

        Callable on the base class (returns whatever registered type the
        payload names) or on a concrete subclass (additionally enforces
        that the payload is of that type).
        """
        from repro.api import registry
        from repro.api.serialize import decode

        if not isinstance(payload, dict):
            raise TypeError(f"expected a result envelope dict, got "
                            f"{type(payload).__name__}")
        if payload.get("schema") != RESULT_SCHEMA:
            raise ValueError(
                f"not a {RESULT_SCHEMA} payload: "
                f"schema={payload.get('schema')!r}"
            )
        version = payload.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema version {version!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        # Decoding needs every result type registered, which happens when
        # the experiment modules import.
        registry.ensure_loaded()
        # Validate the envelope's own identity fields up front: a stale
        # or hand-edited payload must fail with the offending value and
        # the supported set, not leak a registry KeyError from deep in
        # the decoder.
        experiment = payload.get("experiment")
        known_experiments = registry.all_experiments()
        if experiment not in known_experiments:
            raise ValueError(
                f"payload names unknown experiment {experiment!r}; "
                f"known: {', '.join(sorted(known_experiments))}"
            )
        result_type = payload.get("result_type")
        from repro.api.serialize import _registered_types

        if result_type not in _registered_types():
            raise ValueError(
                f"payload names unknown result type {result_type!r}; "
                f"known: {', '.join(sorted(_registered_types()))}"
            )
        if "data" not in payload:
            raise ValueError(
                "result envelope is missing its 'data' field"
            )
        result = decode(payload["data"])
        if not isinstance(result, ExperimentResult):
            raise ValueError(
                f"payload decoded to {type(result).__name__}, which is "
                "not an ExperimentResult"
            )
        if cls is not ExperimentResult and not isinstance(result, cls):
            raise ValueError(
                f"payload holds a {type(result).__name__}, not a "
                f"{cls.__name__}"
            )
        return result
