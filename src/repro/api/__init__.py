"""Public execution API: sessions, the experiment registry, and the
structured result contract.

This package is the seam between the reproduction's internals and
anything that embeds it — the CLI, services, notebooks:

* :class:`Session` — owns jobs / compile cache / RNG policy; replaces
  the old process-wide ``set_jobs``/``set_cache_dir`` globals and lets
  differently-configured runs coexist in one process;
* :class:`ExperimentSpec` / :func:`all_experiments` — the declarative
  registry every figure, ablation, and extension driver registers into;
* :class:`ExperimentResult` — ``format()`` for the byte-stable figure
  text plus ``to_dict()``/``from_dict()`` for schema-stable JSON;
* :class:`ResultStore` / :func:`store_key` — the persistent
  content-addressed store of result envelopes behind read-through
  ``Session(store_dir=...).run``;
* :class:`CircuitStore` — its circuit-side sibling: uploaded programs
  stored under their canonical gate-stream digest, resolvable as
  ``circuit:<digest>`` workload references in any experiment;
* :class:`SweepSpec` / :class:`SweepResult` — first-class parameter
  sweeps: a validated grid that expands canonically into per-cell store
  keys, run via ``Session.run_sweep`` / ``iter_sweep`` (or streamed
  from a server through :class:`RemoteSession`);
* :class:`RemoteSession` — the same ``run()``/``run_sweep()`` surface
  backed by a ``python -m repro serve`` endpoint instead of local
  execution — both satisfy :class:`SessionProtocol`.

``__all__`` below is the supported surface; anything underscored or
absent from it is internal and may change without notice.
"""

from repro.api.circuits import CircuitStore
from repro.api.client import RemoteRunError, RemoteSession
from repro.api.protocol import SessionProtocol
from repro.api.registry import (
    ExperimentSpec,
    ParamSpec,
    all_experiments,
    get_experiment,
    register_experiment,
)
from repro.api.results import (
    RESULT_SCHEMA,
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
)
from repro.api.serialize import serializable
from repro.api.session import (
    Session,
    current_session,
    default_session,
    install_default,
)
from repro.api.store import ResultStore, store_key
from repro.api.sweep import (
    SWEEP_SCHEMA,
    SWEEP_SCHEMA_VERSION,
    SweepCell,
    SweepResult,
    SweepSpec,
)

__all__ = [
    "RESULT_SCHEMA",
    "RESULT_SCHEMA_VERSION",
    "SWEEP_SCHEMA",
    "SWEEP_SCHEMA_VERSION",
    "CircuitStore",
    "ExperimentResult",
    "ExperimentSpec",
    "ParamSpec",
    "RemoteRunError",
    "RemoteSession",
    "ResultStore",
    "Session",
    "SessionProtocol",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "all_experiments",
    "current_session",
    "default_session",
    "get_experiment",
    "install_default",
    "register_experiment",
    "serializable",
    "store_key",
]
