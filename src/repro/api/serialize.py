"""Tagged JSON-safe encoding for experiment results.

Experiment results are nested dataclasses whose fields mix tuples,
tuple-keyed dicts, and numpy scalars — none of which survive a naive
``json.dumps``/``loads`` round trip.  This module defines a small tagged
encoding that does:

* scalars (``None``/``bool``/``int``/``float``/``str``) pass through,
  with numpy scalars coerced to their Python equivalents;
* lists encode elementwise; tuples become ``{"__tuple__": [...]}``;
* dicts with plain string keys encode as JSON objects, any other dict
  becomes ``{"__map__": [[key, value], ...]}``;
* registered dataclasses become ``{"__dc__": "ClassName", "fields":
  {...}}`` and are reconstructed by calling the class with decoded
  fields.

Only dataclasses explicitly registered with :func:`serializable` can be
encoded or decoded — the registry doubles as the schema whitelist, so a
tampered payload cannot instantiate arbitrary types.  Because decoding
reconstructs the same dataclasses with equal field values, ``decode``
is a true inverse of ``encode`` for every registered result type.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Type

#: Tag keys reserved by the encoding.
_TUPLE_TAG = "__tuple__"
_MAP_TAG = "__map__"
_DATACLASS_TAG = "__dc__"
_RESERVED_KEYS = {_TUPLE_TAG, _MAP_TAG, _DATACLASS_TAG}

_REGISTRY: Dict[str, Type] = {}


def serializable(cls: Type) -> Type:
    """Class decorator registering a dataclass for tagged encoding.

    Registration is by class name, which therefore must be unique across
    the library's serializable types.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    existing = _REGISTRY.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"serializable name collision: {cls.__name__!r} already "
            f"registered by {existing.__module__}"
        )
    _REGISTRY[cls.__name__] = cls
    return cls


def _registered_types() -> Dict[str, Type]:
    """Internal registry view (decode error messages, results.py)."""
    return dict(_REGISTRY)


def encode(value: Any) -> Any:
    """Encode ``value`` into JSON-compatible primitives (tagged form)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # Fold numpy scalars into plain Python numbers without a hard numpy
    # dependency: duck-type via the ``item`` method every numpy scalar
    # exposes.  The ndim guard keeps ndarrays out — a size-1 array would
    # otherwise silently collapse to a scalar and break the
    # encode/decode inverse.
    if (type(value).__module__ == "numpy" and hasattr(value, "item")
            and getattr(value, "ndim", None) == 0):
        item = value.item()
        if isinstance(item, (bool, int, float, str)):
            return item
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if _REGISTRY.get(name) is not type(value):
            raise TypeError(
                f"{type(value).__module__}.{name} is not registered as "
                "@serializable"
            )
        fields = {
            f.name: encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {_DATACLASS_TAG: name, "fields": fields}
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [encode(v) for v in value]}
    if isinstance(value, list):
        return [encode(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and not (
            _RESERVED_KEYS & set(value)
        ):
            return {k: encode(v) for k, v in value.items()}
        return {_MAP_TAG: [[encode(k), encode(v)] for k, v in value.items()]}
    raise TypeError(f"cannot encode {type(value).__name__}: {value!r}")


def decode(value: Any) -> Any:
    """Inverse of :func:`encode`."""
    if isinstance(value, dict):
        if _DATACLASS_TAG in value:
            name = value[_DATACLASS_TAG]
            cls = _REGISTRY.get(name)
            if cls is None:
                raise ValueError(f"unknown serializable type {name!r}")
            fields = {k: decode(v) for k, v in value.get("fields", {}).items()}
            return cls(**fields)
        if _TUPLE_TAG in value:
            return tuple(decode(v) for v in value[_TUPLE_TAG])
        if _MAP_TAG in value:
            return {decode(k): decode(v) for k, v in value[_MAP_TAG]}
        return {k: decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode(v) for v in value]
    return value
