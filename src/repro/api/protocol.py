"""The shared shape of every session-like execution surface.

:class:`SessionProtocol` is the structural contract both
:class:`repro.api.Session` (local execution) and
:class:`repro.api.RemoteSession` (execution proxied to a ``repro
serve`` endpoint) satisfy: ``run`` one experiment, ``run_sweep`` /
``iter_sweep`` a parameter grid, and expose ``hits`` / ``misses``
outcome counters.  Call sites written against this protocol can swap a
local session for a remote one — "a backend = a Session policy" — with
no shape change, and ``tests/test_api_sweep.py`` asserts the two
implementations' signatures stay identical so the surfaces cannot
drift apart again.
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol, Tuple, runtime_checkable

from repro.api.results import ExperimentResult
from repro.api.sweep import SweepCell, SweepResult, SweepSpec


@runtime_checkable
class SessionProtocol(Protocol):
    """What it means to be a session, local or remote.

    Semantics every implementation upholds:

    * ``run`` blocks until the experiment's result exists and returns a
      decoded :class:`ExperimentResult`; ``KeyError`` for an unknown
      experiment, ``TypeError``/``ValueError`` for invalid parameters.
    * ``run_sweep`` executes every cell of a :class:`SweepSpec` and
      returns the aligned :class:`SweepResult`; ``iter_sweep`` yields
      each ``(cell, result)`` pair as it completes instead of blocking
      on the slowest cell.
    * ``hits`` / ``misses`` count result-store outcomes observed by
      this surface's calls (a session with no store reports zeros).
    """

    @property
    def hits(self) -> int: ...

    @property
    def misses(self) -> int: ...

    def run(self, experiment: str, quick: bool = False,
            force: bool = False, **params) -> ExperimentResult: ...

    def run_sweep(self, spec: SweepSpec,
                  force: bool = False) -> SweepResult: ...

    def iter_sweep(
        self, spec: SweepSpec, force: bool = False,
    ) -> Iterator[Tuple[SweepCell, ExperimentResult]]: ...
