"""Content-addressed on-disk store of uploaded circuits.

The circuit-side sibling of :class:`repro.api.store.ResultStore`: a
:class:`CircuitStore` persists user-supplied programs under their
canonical gate-stream digest (:func:`repro.circuits.digest.
circuit_digest`), so a ``circuit:<digest>`` workload reference resolves
to the same program on any machine that holds the bytes — the server,
a fleet worker's local cache, a developer laptop.

What is stored is the **canonical QASM text** (``to_qasm(from_qasm(
upload))``), not the upload verbatim: comments, blank lines, and
whitespace are not part of program identity, so two uploads differing
only in those collapse to one entry, and ``GET /circuits/<digest>``
returns byte-identical text everywhere.  Writes are atomic (temp file +
``os.replace``), re-adding an existing digest is a no-op (idempotent
uploads), and :meth:`gc` bounds the directory with the shared
LRU-by-mtime policy from :mod:`repro.exec.diskutil`.

Reads re-verify: :meth:`get` re-digests the parsed circuit and treats a
mismatch (torn write, tampered file) as a miss rather than silently
running the wrong program under a right-looking name.
"""

from __future__ import annotations

import os
import sys
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.digest import circuit_digest, is_circuit_digest
from repro.circuits.qasm import from_qasm, to_qasm
from repro.exec.diskutil import lru_evict, sweep_stale_temp_files

#: Environment variable naming the default circuit-store directory.
CIRCUIT_DIR_ENV = "REPRO_CIRCUIT_DIR"


class CircuitStore:
    """On-disk circuits keyed by canonical gate-stream digest."""

    def __init__(self, path: str):
        self.path = os.path.abspath(path)
        self._warned_unwritable = False

    def _warn_unwritable(self, error: OSError) -> None:
        if self._warned_unwritable:
            return
        self._warned_unwritable = True
        print(f"[circuit store {self.path} is not writable ({error}); "
              "uploads will not persist]", file=sys.stderr)

    def _file_for(self, digest: str) -> str:
        return os.path.join(self.path, digest[:2], digest + ".qasm")

    # -- ingestion ---------------------------------------------------------------

    def add(self, qasm_text: str) -> str:
        """Ingest QASM text; returns the digest.  Idempotent.

        Parses through :func:`repro.circuits.qasm.from_qasm` (so every
        validation error it raises applies here) and stores the
        canonical re-serialization.  Propagates ``ValueError`` on
        malformed programs; an unwritable directory degrades to
        in-memory-only (the digest is still returned, nothing persists).
        """
        return self.add_circuit(from_qasm(qasm_text))

    def add_circuit(self, circuit: Circuit) -> str:
        """Ingest an in-memory circuit; returns the digest.  Idempotent."""
        digest = circuit_digest(circuit)
        target = self._file_for(digest)
        if os.path.exists(target):
            return digest
        directory = os.path.dirname(target)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=".qasm"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8",
                               newline="") as handle:
                    handle.write(to_qasm(circuit))
                os.replace(temp_path, target)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError as error:
            self._warn_unwritable(error)
        return digest

    # -- retrieval ---------------------------------------------------------------

    def get_qasm(self, digest: str) -> Optional[str]:
        """The stored canonical QASM text for ``digest``, or ``None``."""
        if not is_circuit_digest(digest):
            return None
        try:
            with open(self._file_for(digest), "r",
                      encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        return text

    def get(self, digest: str) -> Optional[Circuit]:
        """The circuit stored under ``digest``, or ``None``.

        Verified: the parsed circuit must re-digest to ``digest``; a
        corrupt or tampered entry is a miss, never a wrong program.  A
        hit touches mtime so :meth:`gc` evicts least-recently-used
        entries first.
        """
        text = self.get_qasm(digest)
        if text is None:
            return None
        try:
            circuit = from_qasm(text)
        except ValueError:
            return None
        if circuit_digest(circuit) != digest:
            return None
        try:
            os.utime(self._file_for(digest))
        except OSError:
            pass
        return circuit

    def has(self, digest: str) -> bool:
        return (is_circuit_digest(digest)
                and os.path.exists(self._file_for(digest)))

    # -- maintenance -------------------------------------------------------------

    def entries(self) -> List[Tuple[str, str, int, float]]:
        """Every stored circuit as ``(digest, path, bytes, mtime)``."""
        rows = []
        for dirpath, _, filenames in os.walk(self.path):
            for name in filenames:
                if not name.endswith(".qasm") or name.startswith(".tmp-"):
                    continue
                target = os.path.join(dirpath, name)
                try:
                    info = os.stat(target)
                except OSError:
                    continue
                rows.append((name[:-len(".qasm")], target,
                             info.st_size, info.st_mtime))
        return rows

    def stats(self) -> Dict[str, Any]:
        rows = self.entries()
        return {
            "path": self.path,
            "entries": len(rows),
            "total_bytes": sum(size for _, _, size, _ in rows),
        }

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used circuits until the store fits
        ``max_bytes`` (shared policy: :mod:`repro.exec.diskutil`)."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        sweep_stale_temp_files(self.path, max_age_seconds=3600.0)
        return lru_evict(
            [(path, size, mtime) for _, path, size, mtime in self.entries()],
            max_bytes,
        )

    def __repr__(self) -> str:
        return f"CircuitStore({self.path!r})"
