"""Persistent, content-addressed store of experiment-result envelopes.

Repeated experiment runs are the serving-scale workload: once a
parameter set has been computed, answering it again should be an O(1)
lookup, not a recomputation.  A :class:`ResultStore` persists every
``ExperimentResult.to_dict()`` envelope under a canonical **store key**
— a SHA-256 digest of

* the experiment name,
* the *resolved* parameter mapping (declared defaults overlaid by the
  ``--quick`` preset and any overrides, canonicalized exactly the way
  sweep-task keys are — see :func:`repro.exec.keys.params_digest`),
* :data:`repro.api.results.RESULT_SCHEMA_VERSION` (envelope shape), and
* :data:`repro.exec.keys.SCHEMA_VERSION` (compiler semantics),

so bumping either schema version re-keys every run and silently orphans
stale entries instead of ever replaying them.  Execution-policy
parameters (``jobs``) stay out of the key: the determinism contract
guarantees they never change output.

Layout on disk mirrors the compile cache: sharded
``<key[:2]>/<key>.json`` entry files written atomically (temp file +
``os.replace``), plus an append-only run ledger ``ledger.jsonl`` — one
``{"timestamp", "experiment", "key", "hit", "wall_s"}`` line per
``Session.run`` through the store (plus a ``"trace"`` id when tracing
was active) — for trend inspection.
:meth:`ResultStore.gc` bounds the directory with the same LRU-by-mtime
policy (path tie-break included) as ``CompileCache.prune_disk``; entry
reads touch mtimes so replayed results stay resident.

Entries hold the canonical JSON text (``sort_keys`` + 2-space indent +
trailing newline) that ``python -m repro run X --format json`` prints,
so a stored envelope and a fresh run are byte-comparable.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.api import results as _results
from repro.exec import keys as _keys
from repro.exec.diskutil import lru_evict, sweep_stale_temp_files

#: Environment variable naming the default result-store directory.
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: The append-only run ledger, at the store root (never an entry).
LEDGER_NAME = "ledger.jsonl"

#: Parameters that select execution policy, not experiment semantics:
#: the determinism contract pins output at any worker count, so they
#: must not fragment store keys.
NON_SEMANTIC_PARAMS = frozenset({"jobs"})


def _storable(value: Any) -> bool:
    """Whether ``value`` canonicalizes stably into a store key."""
    if isinstance(value, (str, int, float, bool, type(None))):
        return True
    if isinstance(value, (tuple, list)):
        return all(_storable(item) for item in value)
    return callable(getattr(value, "store_form", None))


def _normalized(value: Any) -> Any:
    """Lists folded into tuples, recursively; typed workload references
    folded into their canonical string.

    Drivers treat sequence parameters interchangeably (``mids=[2.0]``
    vs ``mids=(2.0,)``), so turning a store on must not start rejecting
    — or re-keying — the list spelling of a call that already worked.
    Likewise a typed :class:`repro.workloads.ref.WorkloadRef` and its
    string spelling (``"bv@20"``, ``"circuit:<digest>"``) must share one
    key: refs arrive typed from Python callers and as strings over JSON
    (serve, fleet), and those are the *same run*.  No ``SCHEMA_VERSION``
    bump: accepting a new value type cannot re-key any existing entry —
    only changing the canonical form of an already-accepted type can
    (see :func:`repro.exec.keys.task_key`).
    """
    store_form = getattr(value, "store_form", None)
    if callable(store_form):
        return store_form()
    if isinstance(value, (tuple, list)):
        return tuple(_normalized(item) for item in value)
    return value


def _tagged(value: Any) -> Tuple[str, Any]:
    """A normalized value with its type name, floats via ``repr``.

    Result identity needs more than :func:`repro.exec.keys.task_key`'s
    seed-grade canonicalization: there a top-level float and its string
    spelling may collide harmlessly, but replaying the wrong stored
    result silently is not harmless.  Tagging every value with its type
    keeps ``3.0``, ``"3.0"``, ``3``, and ``True``/``1`` all distinct.
    """
    value = _normalized(value)
    return (type(value).__name__,
            repr(value) if isinstance(value, float) else value)


def store_key(experiment: str, params: Mapping[str, Any]) -> str:
    """Canonical digest identifying one (experiment, resolved-params) run.

    ``params`` must be the *resolved* mapping
    (:meth:`repro.api.registry.ExperimentSpec.resolved_params`), so two
    spellings of the same effective run — ``--quick`` vs its explicit
    parameters — share a key.  Raises ``ValueError`` on parameter values
    (live RNG objects, model instances) with no stable canonical form.
    """
    semantic = {name: value for name, value in params.items()
                if name not in NON_SEMANTIC_PARAMS}
    for name in sorted(semantic):
        if not _storable(semantic[name]):
            raise ValueError(
                f"parameter {name!r}={semantic[name]!r} has no canonical "
                "store form; store keys are built from str/int/float/"
                "bool/None (or tuples of them)"
            )
    return _keys.params_digest(
        (
            "repro-result",
            _results.RESULT_SCHEMA_VERSION,
            _keys.SCHEMA_VERSION,
            experiment,
        ),
        {name: _tagged(value) for name, value in semantic.items()},
    )


def canonical_json(envelope: Dict[str, Any]) -> str:
    """The byte-stable JSON text of one envelope — identical to the
    single-experiment ``--format json`` CLI output."""
    return json.dumps(envelope, indent=2, sort_keys=True) + "\n"


class ResultStore:
    """On-disk store of result envelopes keyed by :func:`store_key`."""

    def __init__(self, path: str):
        self.path = os.path.abspath(path)
        self.hits = 0
        self.misses = 0
        self._warned_unwritable = False

    def _warn_unwritable(self, error: OSError) -> None:
        """One stderr line the first time persistence fails — the
        degrade to pass-through execution must be observable, or an
        unwritable volume silently recomputes forever."""
        if self._warned_unwritable:
            return
        self._warned_unwritable = True
        print(f"[result store {self.path} is not writable ({error}); "
              "results will be recomputed, not persisted]",
              file=sys.stderr)

    # -- entry i/o ---------------------------------------------------------------

    def _file_for(self, key: str) -> str:
        return os.path.join(self.path, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored envelope for ``key``, or ``None``.

        A missing, torn, or non-JSON entry is a miss; a hit touches the
        entry's mtime so :meth:`gc` evicts least-recently-used results
        first.
        """
        envelope = self.peek(key)
        if envelope is not None:
            try:
                os.utime(self._file_for(key))
            except OSError:
                pass
        return envelope

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """:meth:`get` without the recency touch — for inspection tools
        (``store ls``/``show``) that must not distort LRU eviction
        order by reading."""
        target = self._file_for(key)
        try:
            with open(target, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(envelope, dict):
            return None
        return envelope

    def put(self, key: str, envelope: Dict[str, Any]) -> None:
        """Persist one envelope atomically (temp file + ``os.replace``).

        An unwritable store directory degrades to pass-through
        execution rather than failing the run that produced the result.
        """
        target = self._file_for(key)
        directory = os.path.dirname(target)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8",
                               newline="") as handle:
                    handle.write(canonical_json(envelope))
                os.replace(temp_path, target)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError as error:
            self._warn_unwritable(error)

    # -- the run ledger ----------------------------------------------------------

    def ledger_path(self) -> str:
        return os.path.join(self.path, LEDGER_NAME)

    def record(self, key: str, experiment: str, wall_s: float,
               hit: bool, trace: Optional[str] = None) -> None:
        """Append one run event to the ledger (and the counters).

        ``trace`` is the trace id of the run that produced the event,
        when tracing was on — it links a stored envelope back to its
        spans (``store ls --last`` shows it, ``repro trace show``
        expands it).  Observability only: never part of the store key.
        """
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        entry = {
            "timestamp": round(time.time(), 3),
            "experiment": experiment,
            "key": key,
            "hit": bool(hit),
            "wall_s": round(wall_s, 4),
        }
        if trace is not None:
            entry["trace"] = trace
        try:
            os.makedirs(self.path, exist_ok=True)
            with open(self.ledger_path(), "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        except OSError as error:
            # An unwritable store degrades to pass-through execution;
            # losing a trend line must not fail the run itself — but the
            # degrade is announced once on stderr.
            self._warn_unwritable(error)

    @staticmethod
    def _parse_ledger_lines(lines) -> List[Dict[str, Any]]:
        entries = []
        for line in lines:
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
        return entries

    def ledger_entries(self) -> List[Dict[str, Any]]:
        """Every ledger line, oldest first (malformed lines skipped)."""
        try:
            with open(self.ledger_path(), "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return []
        return self._parse_ledger_lines(lines)

    def tail(self, n: int) -> List[Dict[str, Any]]:
        """The valid entries among the last ``n`` ledger lines, oldest
        first — **bounded**: reads backwards from the end of the file in
        fixed-size blocks, so a long-lived server polling its recent
        activity never pays for (or holds in memory) the whole
        append-only history.  Malformed lines in the window are skipped,
        like :meth:`ledger_entries`.
        """
        if n <= 0:
            return []
        try:
            handle = open(self.ledger_path(), "rb")
        except OSError:
            return []
        block = 1 << 16
        with handle:
            handle.seek(0, os.SEEK_END)
            position = handle.tell()
            data = b""
            # n+1 newlines guarantee n complete trailing lines even when
            # the file ends mid-line (a writer between write and flush).
            while position > 0 and data.count(b"\n") <= n:
                step = min(block, position)
                position -= step
                handle.seek(position)
                data = handle.read(step) + data
        lines = data.split(b"\n")
        if position > 0:
            # The first chunk border almost certainly split a line.
            lines = lines[1:]
        tail_lines = [line for line in lines if line][-n:]
        return self._parse_ledger_lines(
            line.decode("utf-8", "replace") for line in tail_lines
        )

    # -- maintenance -------------------------------------------------------------

    def entries(self) -> List[Tuple[str, str, int, float]]:
        """Every persisted entry as ``(key, path, bytes, mtime)``."""
        rows = []
        for dirpath, _, filenames in os.walk(self.path):
            for name in filenames:
                if not name.endswith(".json") or name.startswith(".tmp-"):
                    continue
                target = os.path.join(dirpath, name)
                try:
                    info = os.stat(target)
                except OSError:
                    continue
                rows.append((name[:-len(".json")], target,
                             info.st_size, info.st_mtime))
        return rows

    def stats(self) -> Dict[str, Any]:
        rows = self.entries()
        return {
            "path": self.path,
            "entries": len(rows),
            "total_bytes": sum(size for _, _, size, _ in rows),
        }

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used entries until the entry files fit
        ``max_bytes`` — the same LRU policy as
        ``CompileCache.prune_disk`` (one shared implementation:
        :mod:`repro.exec.diskutil`).  The ledger is never evicted."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        # Orphans from killed writers never become entries, so evicting
        # only entries could leave the directory over budget forever.
        sweep_stale_temp_files(self.path, max_age_seconds=3600.0)
        return lru_evict(
            [(path, size, mtime) for _, path, size, mtime in self.entries()],
            max_bytes,
        )

    def __repr__(self) -> str:
        return f"ResultStore({self.path!r})"
