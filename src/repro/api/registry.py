"""Declarative experiment registry.

Each figure / ablation / extension driver registers an
:class:`ExperimentSpec` at import time: its CLI name, one-line doc, the
``run()`` callable, the result type, a parameter schema derived from the
runner's signature, and the ``--quick`` preset (formerly a dict buried
in ``repro.__main__``).  The CLI, the :class:`repro.api.Session`
execution API, and the JSON decoder all resolve experiments through
this registry instead of hard-coded module tables.
"""

from __future__ import annotations

import inspect
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Type

from repro.api.results import ExperimentResult
from repro.api.serialize import serializable

_SPECS: Dict[str, "ExperimentSpec"] = {}
_LOADED = False


@dataclass(frozen=True)
class ParamSpec:
    """One keyword parameter of an experiment's ``run()``."""

    name: str
    #: The runner's default value; ``required`` marks parameters without one.
    default: Any = None
    required: bool = False


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one registered experiment."""

    name: str
    doc: str
    runner: Callable[..., ExperimentResult]
    result_type: Type[ExperimentResult]
    #: Reduced keyword arguments for ``--quick`` runs.
    quick: Mapping[str, Any] = field(default_factory=dict)
    params: Tuple[ParamSpec, ...] = ()
    #: Parameter names carrying a workload reference (named family,
    #: ``family@size``, or ``circuit:<digest>``) — validated through
    #: :meth:`repro.workloads.ref.WorkloadRef.parse` at resolve time,
    #: and the hook ``repro run EXP --circuit file.qasm`` injects into.
    circuit_params: Tuple[str, ...] = ()

    def param_defaults(self) -> Dict[str, Any]:
        """Parameter schema as ``{name: default}``."""
        return {p.name: p.default for p in self.params}

    def validate_params(self, overrides: Mapping[str, Any]) -> None:
        known = {p.name for p in self.params}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise TypeError(
                f"experiment {self.name!r} has no parameter(s) "
                f"{', '.join(map(repr, unknown))}; "
                f"valid: {', '.join(sorted(known))}"
            )

    def resolved_params(self, quick: bool = False,
                        overrides: Optional[Mapping[str, Any]] = None
                        ) -> Dict[str, Any]:
        """The full effective parameter mapping of one ``run()`` call.

        Declared defaults overlaid by the ``--quick`` preset (when
        ``quick``) and then the caller's overrides — the mapping the
        result store digests, so ``--quick`` and the equivalent explicit
        parameters share one store key.
        """
        kwargs = dict(self.quick) if quick else {}
        kwargs.update(overrides or {})
        self.validate_params(kwargs)
        resolved = self.param_defaults()
        resolved.update(kwargs)
        for name in self.circuit_params:
            value = resolved.get(name)
            if value is None:
                continue
            from repro.workloads.ref import WorkloadRef

            try:
                WorkloadRef.parse(value)
            except ValueError as error:
                raise ValueError(
                    f"experiment {self.name!r} parameter {name!r}: {error}"
                ) from None
        return resolved

    def run(self, quick: bool = False, **overrides) -> ExperimentResult:
        """Execute the driver with the quick preset and/or overrides."""
        kwargs = dict(self.quick) if quick else {}
        kwargs.update(overrides)
        self.validate_params(kwargs)
        return self.runner(**kwargs)


def _params_from_signature(runner: Callable) -> Tuple[ParamSpec, ...]:
    params = []
    for parameter in inspect.signature(runner).parameters.values():
        if parameter.kind in (inspect.Parameter.VAR_POSITIONAL,
                              inspect.Parameter.VAR_KEYWORD):
            continue
        required = parameter.default is inspect.Parameter.empty
        params.append(ParamSpec(
            name=parameter.name,
            default=None if required else parameter.default,
            required=required,
        ))
    return tuple(params)


def register_experiment(
    name: str,
    runner: Callable[..., ExperimentResult],
    result_type: Type[ExperimentResult],
    quick: Optional[Mapping[str, Any]] = None,
    doc: Optional[str] = None,
    circuit_params: Tuple[str, ...] = (),
) -> ExperimentSpec:
    """Register one experiment driver; called at driver-module import.

    Derives the parameter schema from ``runner``'s signature, stamps
    ``result_type.experiment_name``, and registers the result type for
    tagged serialization.  ``circuit_params`` names the parameters that
    carry workload references (validated at resolve time).
    """
    if not (isinstance(result_type, type)
            and issubclass(result_type, ExperimentResult)):
        raise TypeError(
            f"{result_type!r} must subclass ExperimentResult"
        )
    if doc is None:
        module = sys.modules.get(runner.__module__)
        module_doc = (getattr(module, "__doc__", "") or "").strip()
        doc = module_doc.splitlines()[0] if module_doc else ""
    spec = ExperimentSpec(
        name=name,
        doc=doc,
        runner=runner,
        result_type=result_type,
        quick=dict(quick or {}),
        params=_params_from_signature(runner),
        circuit_params=tuple(circuit_params),
    )
    unknown_circuit_params = (set(spec.circuit_params)
                              - {p.name for p in spec.params})
    if unknown_circuit_params:
        raise ValueError(
            f"circuit_params {sorted(unknown_circuit_params)} are not "
            f"parameters of {name!r}"
        )
    spec.validate_params(spec.quick)
    existing = _SPECS.get(name)
    if existing is not None and existing.runner is not runner:
        raise ValueError(f"experiment {name!r} already registered")
    result_type.experiment_name = name
    serializable(result_type)
    _SPECS[name] = spec
    return spec


def ensure_loaded() -> None:
    """Import the experiment package so every driver registers itself."""
    global _LOADED
    if not _LOADED:
        import repro.experiments  # noqa: F401  (import side effect)
        _LOADED = True


def get_experiment(name: str) -> ExperimentSpec:
    ensure_loaded()
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; "
            f"known: {', '.join(sorted(_SPECS))}"
        ) from None


def all_experiments() -> Dict[str, ExperimentSpec]:
    """Every registered spec, keyed by name (insertion order)."""
    ensure_loaded()
    return dict(_SPECS)
