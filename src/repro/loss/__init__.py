"""Atom-loss modelling: coping strategies, shot runner, tolerance sweeps."""

from repro.loss.runner import RunResult, ShotRunner
from repro.loss.strategies import (
    AlwaysRecompile,
    AlwaysReload,
    CompileSmall,
    CompileSmallReroute,
    CopingStrategy,
    LossOutcome,
    MinorReroute,
    STRATEGY_ORDER,
    VirtualRemap,
    make_strategy,
    max_swap_budget,
)
from repro.loss.timeline import TimelineEvent, render_timeline, totals_by_kind
from repro.loss.tolerance import ToleranceResult, max_loss_tolerance
from repro.loss.virtual_map import RemapFailed, VirtualMap

__all__ = [
    "AlwaysRecompile",
    "AlwaysReload",
    "CompileSmall",
    "CompileSmallReroute",
    "CopingStrategy",
    "LossOutcome",
    "MinorReroute",
    "RemapFailed",
    "RunResult",
    "STRATEGY_ORDER",
    "ShotRunner",
    "TimelineEvent",
    "ToleranceResult",
    "VirtualMap",
    "VirtualRemap",
    "make_strategy",
    "max_loss_tolerance",
    "max_swap_budget",
    "render_timeline",
    "totals_by_kind",
]
