"""The paper's six atom-loss coping strategies (§VI)."""

from typing import Dict, List, Optional, Type

from repro.hardware.noise import NoiseModel
from repro.loss.strategies.always_reload import AlwaysReload
from repro.loss.strategies.base import CopingStrategy, LossOutcome, max_swap_budget
from repro.loss.strategies.compile_small import CompileSmall, CompileSmallReroute
from repro.loss.strategies.recompile import AlwaysRecompile
from repro.loss.strategies.reroute import MinorReroute
from repro.loss.strategies.virtual_remap import VirtualRemap

#: Display order matching the paper's Fig 10 legend.
STRATEGY_ORDER: List[str] = [
    "virtual remapping",
    "reroute",
    "compile small",
    "c. small+reroute",
    "recompile",
]


def make_strategy(name: str, noise: Optional[NoiseModel] = None) -> CopingStrategy:
    """Build a strategy by its paper-legend name."""
    key = name.lower()
    if key in ("virtual remapping", "virtual remap", "remap"):
        return VirtualRemap()
    if key in ("reroute", "minor reroute", "minor rerouting"):
        return MinorReroute(noise=noise)
    if key in ("compile small", "c. small"):
        return CompileSmall()
    if key in ("c. small+reroute", "compile small + reroute", "compile small reroute"):
        return CompileSmallReroute(noise=noise)
    if key in ("recompile", "always recompile", "full recompile"):
        return AlwaysRecompile()
    if key in ("always reload", "reload"):
        return AlwaysReload()
    raise KeyError(f"unknown strategy {name!r}")


__all__ = [
    "AlwaysRecompile",
    "AlwaysReload",
    "CompileSmall",
    "CompileSmallReroute",
    "CopingStrategy",
    "LossOutcome",
    "MinorReroute",
    "STRATEGY_ORDER",
    "VirtualRemap",
    "make_strategy",
    "max_swap_budget",
]
