"""Minor Rerouting (§VI, Fig 9c).

Starts from Virtual Remapping's shift, but instead of reloading when an
interaction overstretches, inserts a SWAP chain over usable atoms to bring
the operands into range, executes the gate, and reverses the chain to
restore the mapping.  Each fixed-up gate therefore costs
``2 * len(chain)`` SWAPs on every subsequent shot while the hole pattern
persists.

Reloads are still forced when:

* the remap shift itself has no spare direction;
* no path of active atoms connects the operands (disconnection);
* cumulative fixup SWAPs would drop the shot success rate below half of
  the clean program's (six SWAPs at a 96.5% two-qubit fidelity).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.result import ScheduledOp
from repro.core.routing import reroute_path_swaps
from repro.hardware.noise import NoiseModel
from repro.loss.strategies.base import LossOutcome, max_swap_budget
from repro.loss.strategies.virtual_remap import VirtualRemap


class MinorReroute(VirtualRemap):
    """Remap, then patch overstretched gates with SWAP chains."""

    name = "reroute"

    def __init__(self, noise: Optional[NoiseModel] = None,
                 success_drop_factor: float = 0.5) -> None:
        super().__init__()
        if noise is None:
            noise = NoiseModel.neutral_atom()
        self.noise = noise
        self.success_drop_factor = success_drop_factor
        self.swap_budget = max_swap_budget(noise, success_drop_factor)

    def _handle_violations(
        self, violated: List[ScheduledOp], remap_updates: int
    ) -> LossOutcome:
        new_swaps = 0
        for op in violated:
            chain = self._fixup_chain(op)
            if chain is None:
                return LossOutcome.needs_reload()
            # SWAP in, execute, SWAP back out.
            new_swaps += 2 * len(chain)
        if self.added_swaps + new_swaps > self.swap_budget:
            return LossOutcome.needs_reload()
        self.added_swaps += new_swaps
        return LossOutcome(
            coped=True,
            interfering=True,
            swaps_added=new_swaps,
            remap_updates=remap_updates,
            ran_fixup_search=True,
        )

    def _fixup_chain(self, op: ScheduledOp) -> Optional[List]:
        """SWAP chain bringing every operand pair of ``op`` within the limit.

        Works pairwise on a scratch position list: for each overstretched
        pair, walk the first operand toward the second along active atoms.
        Returns ``None`` when any pair is unreachable.
        """
        limit = self._distance_limit()
        topo = self.topology
        grid = topo.grid
        sites = [self.virtual_map.role_to_site[s] for s in op.sites]
        # Work on a scratch topology view honoring the true reach limit.
        reach = topo.with_interaction_distance(limit) if (
            abs(limit - topo.max_interaction_distance) > 1e-9
        ) else topo
        chain: List = []
        max_rounds = 8
        for _ in range(max_rounds):
            worst = None
            worst_dist = limit + 1e-9
            for i in range(len(sites)):
                for j in range(i + 1, len(sites)):
                    dist = grid.distance(sites[i], sites[j])
                    if dist > worst_dist:
                        worst_dist = dist
                        worst = (i, j)
            if worst is None:
                return chain
            i, j = worst
            swaps = reroute_path_swaps(sites[i], sites[j], reach)
            if swaps is None:
                return None
            if not swaps:
                # Already in range per the reach topology; the pair scan
                # disagrees only through rounding — treat as fixed.
                return chain
            chain.extend(swaps)
            sites[i] = swaps[-1][1]
        return None
