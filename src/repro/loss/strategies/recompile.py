"""Always Full Recompile (§VI).

On every interfering loss, re-run the whole compiler against the
now-sparser topology.  Tolerates the most loss of any strategy — it fails
only when the active graph disconnects or runs out of atoms — but each
event costs full software compilation, which exceeds the array reload
time (the reason it is excluded from Fig 12's overhead chart).
"""

from __future__ import annotations

from repro.core.errors import CompilationError
from repro.exec.cache import cached_compile
from repro.loss.strategies.base import CopingStrategy, LossOutcome


class AlwaysRecompile(CopingStrategy):
    """Recompile from scratch on every interfering loss."""

    name = "recompile"

    def on_loss(self, site: int) -> LossOutcome:
        if site not in self.program.used_sites():
            return LossOutcome.spare_loss()
        try:
            # persist=False: transient hole patterns essentially never
            # recur, so the result is looked up but never stored — in
            # either cache tier.
            recompiled = cached_compile(
                self.source, self.topology, self.config, persist=False
            )
        except CompilationError:
            return LossOutcome.needs_reload()
        previous_swaps = self.program.swap_count
        self.program = recompiled
        # Success erosion shows up directly in the recompiled program's own
        # swap census, not in `added_swaps`; but we track the growth so the
        # runner's per-shot success uses the up-to-date program.
        self.added_swaps = 0
        return LossOutcome(
            coped=True,
            interfering=True,
            swaps_added=max(0, recompiled.swap_count - previous_swaps),
            recompile_seconds=recompiled.compile_seconds,
        )

    def after_reload(self) -> None:
        """Reload restores the full grid; recompile for it once.

        The original program (compiled for the pristine grid at begin())
        is still valid, so we simply restore it instead of recompiling.
        """
        super().after_reload()
        # The program compiled in begin() targeted the full grid; recompiling
        # after a reload would produce the same artifact, so reuse it.
        if self._pristine_program is not None:
            self.program = self._pristine_program

    def begin(self, circuit, topology, config):
        program = super().begin(circuit, topology, config)
        self._pristine_program = program
        return program

    def _reset_adaptation(self) -> None:
        if not hasattr(self, "_pristine_program"):
            self._pristine_program = None
