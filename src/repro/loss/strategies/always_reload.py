"""Always Reload (§VI): the naive baseline.

Any loss touching the program triggers a full array reload.  Only one
compilation ever happens, and there is no adaptation state at all — the
entire cost is reload time, which is why it anchors the overhead
comparison of Fig 12.
"""

from __future__ import annotations

from repro.loss.strategies.base import CopingStrategy, LossOutcome


class AlwaysReload(CopingStrategy):
    """Reload on every interfering loss."""

    name = "always reload"

    def on_loss(self, site: int) -> LossOutcome:
        if site not in self.program.used_sites():
            return LossOutcome.spare_loss()
        return LossOutcome.needs_reload()
