"""Virtual Remapping (§VI, Fig 9b).

Pure-hardware coping: on an interfering loss, shift the role table one
step toward the spare-richest edge (~40 ns per table update).  No gates
are ever added, so the success rate never erodes — but the moment any
scheduled interaction stretches beyond the device's true maximum
interaction distance, the only option is a reload.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.result import CompiledProgram, ScheduledOp
from repro.hardware.topology import Topology
from repro.loss.strategies.base import CopingStrategy, LossOutcome
from repro.loss.virtual_map import RemapFailed, VirtualMap


class VirtualRemap(CopingStrategy):
    """Shift roles into spares; reload when an interaction overstretches."""

    name = "virtual remapping"

    def __init__(self) -> None:
        super().__init__()
        self.virtual_map: Optional[VirtualMap] = None

    def _reset_adaptation(self) -> None:
        if self.program is None:
            self.virtual_map = None
            return
        self.virtual_map = VirtualMap(self.topology, self.program.used_sites())

    def current_used_sites(self) -> set:
        if self.virtual_map is None:
            raise RuntimeError("strategy not started; call begin() first")
        return self.virtual_map.occupied_sites()

    def current_measured_sites(self) -> set:
        if self.virtual_map is None:
            raise RuntimeError("strategy not started; call begin() first")
        translate = self.virtual_map.role_to_site
        return {translate[s] for s in self.program.measured_sites()}

    # -- the distance the adapted program must respect ---------------------------------

    def _distance_limit(self) -> float:
        """Interactions may stretch up to the device's true MID.

        For plain virtual remapping the compiled MID *is* the device MID;
        the compile-small variants override this.
        """
        return self.topology.max_interaction_distance

    def on_loss(self, site: int) -> LossOutcome:
        occupied = self.virtual_map.occupied_sites()
        if site not in occupied:
            return LossOutcome.spare_loss()
        try:
            updates = self.virtual_map.shift_for_loss(site)
        except RemapFailed:
            return LossOutcome.needs_reload()
        violated = self._violated_ops()
        if violated:
            return self._handle_violations(violated, updates)
        return LossOutcome(
            coped=True, interfering=True, remap_updates=updates
        )

    # -- violation scanning -----------------------------------------------------------------

    def _violated_ops(self) -> List[ScheduledOp]:
        """Scheduled multiqubit ops whose remapped operands overstretch."""
        limit = self._distance_limit() + 1e-9
        grid = self.topology.grid
        translate = self.virtual_map.role_to_site
        violated = []
        for op in self.program.multiqubit_ops():
            sites = [translate[s] for s in op.sites]
            too_far = False
            for i in range(len(sites)):
                for j in range(i + 1, len(sites)):
                    if grid.distance(sites[i], sites[j]) > limit:
                        too_far = True
                        break
                if too_far:
                    break
            if too_far:
                violated.append(op)
        return violated

    def _handle_violations(
        self, violated: List[ScheduledOp], remap_updates: int
    ) -> LossOutcome:
        """Plain virtual remapping has no fixup path: reload."""
        return LossOutcome.needs_reload()
