"""Coping-strategy contract (§VI).

A strategy owns one compiled program and reacts to atom-loss events.  The
shot runner drives it:

1. ``begin(circuit, topology, config)`` — compile and reset state.  The
   topology object is shared with the runner, which marks atoms lost.
2. ``on_loss(site)`` — adapt to the loss of a (possibly spare) atom.
   Returns a :class:`LossOutcome` describing what it did and what it cost.
3. ``after_reload()`` — the runner reloaded the array; restore the
   original program (recompilation is NOT needed: the initial compile
   assumed a full grid).

Strategies also expose ``current_added_swaps`` and
``current_success_multiplier`` so success-rate erosion from fixups
(Fig 11) can be charged per shot.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from repro.circuits.circuit import Circuit
from repro.core.config import CompilerConfig
from repro.core.result import CompiledProgram
from repro.hardware.noise import NoiseModel
from repro.hardware.topology import Topology


@dataclass(frozen=True)
class LossOutcome:
    """What a strategy did about one lost atom."""

    #: False when the strategy cannot cope and the array must be reloaded.
    coped: bool
    #: Whether the loss touched the program at all (spare losses don't).
    interfering: bool
    #: SWAP gates newly added to the executed circuit by this event.
    swaps_added: int = 0
    #: Role-table updates performed (each costs ``TimingModel.remap_time``).
    remap_updates: int = 0
    #: Whether a software reroute/fixup computation ran (costs
    #: ``TimingModel.reroute_fixup_time``).
    ran_fixup_search: bool = False
    #: Wall-clock seconds of recompilation, when the strategy recompiled.
    recompile_seconds: float = 0.0

    @classmethod
    def spare_loss(cls) -> "LossOutcome":
        return cls(coped=True, interfering=False)

    @classmethod
    def needs_reload(cls) -> "LossOutcome":
        return cls(coped=False, interfering=True)


def max_swap_budget(noise: NoiseModel, drop_factor: float = 0.5) -> int:
    """Largest number of fixup SWAPs whose error keeps success above
    ``drop_factor`` of the original.

    The paper's example: at a 96.5% two-qubit fidelity, a 50% drop budget
    allows six SWAPs (each SWAP is three two-qubit gates).

    ``drop_factor`` must lie in ``(0, 1]``: zero or negative values have
    no finite budget and values above 1 would demand fixups *increase*
    success.
    """
    if not 0.0 < drop_factor <= 1.0:
        raise ValueError(
            f"drop_factor must be in (0, 1], got {drop_factor!r}"
        )
    fidelity = noise.fidelity(2)
    if fidelity >= 1.0:
        return 10**9
    return int(math.floor(math.log(drop_factor) / (3.0 * math.log(fidelity))))


class CopingStrategy(ABC):
    """Base class for the paper's six §VI strategies."""

    #: Short name used in experiment tables (matches the paper's legend).
    name: str = "base"

    def __init__(self) -> None:
        self.source: Optional[Circuit] = None
        self.topology: Optional[Topology] = None
        self.config: Optional[CompilerConfig] = None
        self.program: Optional[CompiledProgram] = None
        #: Cumulative SWAPs added on top of the compiled program while the
        #: current hole pattern persists.
        self.added_swaps: int = 0

    # -- lifecycle --------------------------------------------------------------------

    def begin(
        self,
        circuit: Circuit,
        topology: Topology,
        config: CompilerConfig,
    ) -> CompiledProgram:
        """Compile ``circuit`` and reset all per-run state."""
        self.source = circuit
        self.topology = topology
        self.config = config
        self.added_swaps = 0
        self.program = self._initial_compile(circuit, topology, config)
        self._reset_adaptation()
        return self.program

    def after_reload(self) -> None:
        """The array was reloaded: every site is occupied again."""
        self.added_swaps = 0
        self._reset_adaptation()

    # -- per-event hook ------------------------------------------------------------------

    @abstractmethod
    def on_loss(self, site: int) -> LossOutcome:
        """React to the loss of the atom at physical ``site``.

        Called after the runner marked the site lost in the topology.
        """

    # -- current physical footprint ------------------------------------------------------

    def current_used_sites(self) -> set:
        """Physical sites the adapted program currently relies on.

        Losses outside this set are spare losses (no shot invalidated).
        Subclasses with a virtual map translate roles to physical sites.
        """
        if self.program is None:
            raise RuntimeError("strategy not started; call begin() first")
        return self.program.used_sites()

    def current_measured_sites(self) -> set:
        """Physical sites read out at the end of each shot."""
        if self.program is None:
            raise RuntimeError("strategy not started; call begin() first")
        return self.program.measured_sites()

    # -- success accounting -------------------------------------------------------------

    def shot_success_rate(self, noise: NoiseModel) -> float:
        """Expected success of one shot of the *currently adapted* program."""
        if self.program is None:
            raise RuntimeError("strategy not started; call begin() first")
        base = self.program.success_rate(noise)
        penalty = noise.fidelity(2) ** (3 * self.added_swaps)
        return base * penalty

    # -- subclass hooks ----------------------------------------------------------------------

    def _initial_compile(
        self,
        circuit: Circuit,
        topology: Topology,
        config: CompilerConfig,
    ) -> CompiledProgram:
        """Default: compile at the topology's full interaction distance.

        Routed through the active session's compile cache: every
        strategy (and every sweep worker) asking for the same
        pristine-grid compilation shares one artifact.  Cached programs
        are shared — strategies must replace ``self.program``, never
        mutate it.
        """
        from repro.api.session import current_session

        return current_session().cached_compile(circuit, topology, config)

    def _reset_adaptation(self) -> None:
        """Clear any adaptation state (virtual maps, fixups)."""

    # -- conveniences for subclasses ----------------------------------------------------------

    def _is_interfering(self, site: int, occupied_sites) -> bool:
        return site in occupied_sites

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
