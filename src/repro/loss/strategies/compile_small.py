"""Compile Small strategies (§VI).

Compile the program for an interaction distance *below* the device's true
maximum.  Most of the gate-count benefit of long range arrives in the
first few distance increments (Fig 3), so compiling one notch down costs
little — and buys slack: remap shifts can stretch interactions past the
compiled distance without exceeding what the hardware can actually do.

Two variants, exactly as in the paper:

* :class:`CompileSmall` — slack + virtual remapping; reload when the
  *true* maximum is exceeded.
* :class:`CompileSmallReroute` — the same compile, with Minor Rerouting's
  SWAP-chain fixups on top.  The paper's balanced recommendation.
"""

from __future__ import annotations

from typing import Optional

from repro.circuits.circuit import Circuit
from repro.core.config import CompilerConfig
from repro.exec.cache import cached_compile
from repro.core.result import CompiledProgram
from repro.hardware.noise import NoiseModel
from repro.hardware.topology import Topology
from repro.loss.strategies.reroute import MinorReroute
from repro.loss.strategies.virtual_remap import VirtualRemap

#: The paper compiles "to one less than the maximum interaction distance"
#: and has no entries at MID 2 (it never compiles to distance 1).
DEFAULT_MARGIN = 1.0
MINIMUM_COMPILED_DISTANCE = 2.0


def compiled_distance(true_distance: float, margin: float = DEFAULT_MARGIN) -> float:
    """The reduced distance the program is compiled for."""
    reduced = true_distance - margin
    if reduced < MINIMUM_COMPILED_DISTANCE:
        raise ValueError(
            f"compile-small needs a true MID of at least "
            f"{MINIMUM_COMPILED_DISTANCE + margin} (got {true_distance}); "
            "the paper likewise has no compile-small entries at MID 2"
        )
    return reduced


class CompileSmall(VirtualRemap):
    """Compile at MID - margin; remap; reload when the true MID is exceeded."""

    name = "compile small"

    def __init__(self, margin: float = DEFAULT_MARGIN) -> None:
        super().__init__()
        self.margin = margin

    def _initial_compile(
        self,
        circuit: Circuit,
        topology: Topology,
        config: CompilerConfig,
    ) -> CompiledProgram:
        reduced = compiled_distance(topology.max_interaction_distance, self.margin)
        small_topology = topology.with_interaction_distance(reduced)
        small_config = config.with_mid(reduced)
        return cached_compile(circuit, small_topology, small_config)

    # _distance_limit stays the TRUE device maximum (inherited behaviour
    # reads it from self.topology, which keeps the full MID) — that is the
    # whole point of the slack.


class CompileSmallReroute(MinorReroute):
    """Compile small + Minor Rerouting fixups (the paper's balanced pick)."""

    name = "c. small+reroute"

    def __init__(
        self,
        margin: float = DEFAULT_MARGIN,
        noise: Optional[NoiseModel] = None,
        success_drop_factor: float = 0.5,
    ) -> None:
        super().__init__(noise=noise, success_drop_factor=success_drop_factor)
        self.margin = margin

    def _initial_compile(
        self,
        circuit: Circuit,
        topology: Topology,
        config: CompilerConfig,
    ) -> CompiledProgram:
        reduced = compiled_distance(topology.max_interaction_distance, self.margin)
        small_topology = topology.with_interaction_distance(reduced)
        small_config = config.with_mid(reduced)
        return cached_compile(circuit, small_topology, small_config)
