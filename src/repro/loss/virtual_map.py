"""Virtual site remapping (§VI, Fig 9b).

The compiled program addresses *roles* — the sites the compiler assigned.
Hardware keeps a lookup table translating each role to the physical site
currently playing it (a ~40 ns update, borrowed from DRAM sparing).  When
an in-use atom is lost, the roles along a row or column shift by one
toward the spare-richest edge, consuming one spare atom.

The map never moves atoms; it reassigns meaning.  Interactions the
compiler scheduled at distance d can therefore stretch beyond the MID —
detecting and coping with that is the strategies' job.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hardware.topology import Topology

#: Cardinal directions as (d_row, d_col), in deterministic tie-break order.
DIRECTIONS: Tuple[Tuple[int, int], ...] = ((0, 1), (0, -1), (1, 0), (-1, 0))


class RemapFailed(RuntimeError):
    """No direction had a spare atom to absorb the shift."""


class VirtualMap:
    """Role-site -> physical-site lookup table."""

    def __init__(self, topology: Topology, used_roles) -> None:
        self.topology = topology
        #: role -> physical site currently playing it.
        self.role_to_site: Dict[int, int] = {r: r for r in used_roles}
        self.site_to_role: Dict[int, int] = {r: r for r in used_roles}
        #: Total role shifts performed (each is one ~40 ns table update).
        self.shift_count = 0

    def physical(self, role: int) -> int:
        """Physical site currently playing ``role``."""
        return self.role_to_site[role]

    def occupied_sites(self) -> set:
        return set(self.role_to_site.values())

    def role_at(self, site: int) -> Optional[int]:
        return self.site_to_role.get(site)

    # -- the shift ------------------------------------------------------------------

    def spares_toward_edge(self, site: int, direction: Tuple[int, int]) -> int:
        """Active, unoccupied atoms along ``direction`` from ``site`` to edge."""
        return len(self._spare_line(site, direction)[1])

    def _spare_line(
        self, site: int, direction: Tuple[int, int]
    ) -> Tuple[List[int], List[int]]:
        """Walk from ``site`` (exclusive) to the edge.

        Returns ``(active_line, spare_sites)``: the active sites along the
        walk in order, and the subset that are unoccupied (spares).
        """
        grid = self.topology.grid
        row, col = grid.position(site)
        d_row, d_col = direction
        active_line: List[int] = []
        spares: List[int] = []
        row, col = row + d_row, col + d_col
        while grid.in_bounds(row, col):
            candidate = grid.site_at(row, col)
            if self.topology.is_active(candidate):
                active_line.append(candidate)
                if candidate not in self.site_to_role:
                    spares.append(candidate)
            row, col = row + d_row, col + d_col
        return active_line, spares

    def best_direction(self, site: int) -> Optional[Tuple[int, int]]:
        """Direction with the most spares from ``site`` to the edge, or
        ``None`` when every direction is spare-free."""
        best = None
        best_count = 0
        for direction in DIRECTIONS:
            count = self.spares_toward_edge(site, direction)
            if count > best_count:
                best_count = count
                best = direction
        return best

    def shift_for_loss(self, lost_site: int) -> int:
        """Handle loss of the atom at physical ``lost_site``.

        The role chain from the lost site toward the spare-richest edge
        shifts one active site outward; the first spare absorbs it.
        Returns the number of role reassignments performed.  Raises
        :class:`RemapFailed` when no direction has a spare.

        The caller must already have marked ``lost_site`` lost in the
        topology (so it is neither active nor a candidate spare).
        """
        role = self.site_to_role.get(lost_site)
        if role is None:
            return 0  # Spare atom lost: nothing to reassign.
        direction = self.best_direction(lost_site)
        if direction is None:
            raise RemapFailed(
                f"no spare atoms in any direction from site {lost_site}"
            )
        active_line, _spares = self._spare_line(lost_site, direction)

        # Shift roles outward along the active line until the first spare.
        moves = 0
        carried_role = role
        self.site_to_role.pop(lost_site)
        for candidate in active_line:
            displaced = self.site_to_role.get(candidate)
            self.site_to_role[candidate] = carried_role
            self.role_to_site[carried_role] = candidate
            moves += 1
            if displaced is None:
                break  # Spare absorbed the shift.
            carried_role = displaced
        self.shift_count += moves
        return moves

    def translate_sites(self, sites) -> Tuple[int, ...]:
        """Physical sites currently playing the given roles."""
        return tuple(self.role_to_site[s] for s in sites)
