"""Shot-level execution simulator (§VI, Figs 12-14).

Replays a compiled program shot after shot against stochastic atom loss,
letting a :class:`~repro.loss.strategies.base.CopingStrategy` adapt, and
accounts wall-clock time by category (compile / run / fluorescence /
fixup / reload).  This is the engine behind the paper's overhead and
sensitivity results.

Per shot:

1. the circuit runs (its scheduled duration, plus fixup SWAP time);
2. fluorescence imaging (~6 ms) detects losses sampled from the
   :class:`~repro.hardware.loss.LossModel` — vacuum loss over the whole
   array plus readout loss on measured atoms;
3. a shot is *successful* when no loss touched a program atom
   (a loss means the run cannot be trusted and is discarded);
4. each lost atom is handed to the strategy, which remaps / reroutes /
   recompiles or gives up; giving up triggers an array reload (~0.3 s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.api.serialize import serializable
from repro.circuits.circuit import Circuit
from repro.core.config import CompilerConfig
from repro.hardware.loss import LossModel, ShotLossSampler
from repro.hardware.noise import NoiseModel
from repro.hardware.timing import TimingModel
from repro.hardware.topology import Topology
from repro.loss.strategies.base import CopingStrategy
from repro.loss.timeline import TimelineEvent, totals_by_kind
from repro.utils.rng import RngLike, ensure_rng


@serializable
@dataclass
class RunResult:
    """Everything measured over one batch of shots."""

    strategy_name: str
    shots_attempted: int = 0
    shots_successful: int = 0
    reload_count: int = 0
    interfering_losses: int = 0
    spare_losses: int = 0
    #: Sum over successful shots of the analytic §V success probability of
    #: the program as adapted at that moment (gate errors on top of loss).
    expected_successes: float = 0.0
    #: Successful shots in each inter-reload segment (last segment open).
    shots_between_reloads: List[int] = field(default_factory=list)
    timeline: List[TimelineEvent] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(e.duration for e in self.timeline)

    def time_by_kind(self) -> dict:
        return totals_by_kind(self.timeline)

    @property
    def overhead_time(self) -> float:
        """Everything except useful circuit execution.

        A timeline can legitimately contain no run events at all
        (``max_shots=0`` or ``target_successful=0``), so the run total
        defaults to zero rather than assuming the key exists.
        """
        by_kind = self.time_by_kind()
        return self.total_time - by_kind.get("run", 0.0)

    @property
    def mean_shots_between_reloads(self) -> float:
        """Mean successful shots per *closed* inter-reload segment.

        ``shots_between_reloads`` holds one entry per segment; a segment
        closes when a reload fires, and the run's final (still open)
        segment is appended when the shot loop ends.  With at least one
        reload, the open tail is excluded — it was cut short by the shot
        budget, not by a reload.  With no reloads the single open segment
        *is* the whole run, so the mean equals ``shots_successful``
        (including the degenerate case of a result with no recorded
        segments at all).
        """
        closed = self.shots_between_reloads[:-1] or self.shots_between_reloads
        if not closed:
            return float(self.shots_successful)
        return sum(closed) / len(closed)


class ShotRunner:
    """Drives one strategy through a batch of shots on one device."""

    def __init__(
        self,
        strategy: CopingStrategy,
        circuit: Circuit,
        topology: Topology,
        config: Optional[CompilerConfig] = None,
        noise: Optional[NoiseModel] = None,
        loss_model: Optional[LossModel] = None,
        timing: Optional[TimingModel] = None,
        rng: RngLike = None,
    ):
        self.strategy = strategy
        self.circuit = circuit
        self.topology = topology
        self.config = config or CompilerConfig(
            max_interaction_distance=topology.max_interaction_distance
        )
        self.noise = noise or NoiseModel.neutral_atom()
        self.loss_model = loss_model or LossModel.lossless_readout()
        self.timing = timing or TimingModel.paper_defaults()
        self.rng = ensure_rng(rng)
        #: Whether the generator was created here (seed or None) rather
        #: than passed in.  Owned generators are never observed by the
        #: caller after a run, so the loss sampler may buffer its uniform
        #: draws in blocks (identical consumed stream, fewer RNG calls).
        self._owns_rng = rng is not self.rng

    # -- main loop ---------------------------------------------------------------------

    def run(
        self,
        max_shots: int = 500,
        target_successful: Optional[int] = None,
        include_compile_event: bool = True,
    ) -> RunResult:
        """Run up to ``max_shots`` shots (stopping early once
        ``target_successful`` successes accumulate, if given)."""
        program = self.strategy.begin(self.circuit, self.topology, self.config)
        result = RunResult(strategy_name=self.strategy.name)
        clock = 0.0
        segment_successes = 0
        sampler = ShotLossSampler(
            self.loss_model, self.rng, buffered=self._owns_rng
        )

        if include_compile_event:
            clock = self._emit(result, "compile", clock, program.compile_seconds)

        for _ in range(max_shots):
            if (
                target_successful is not None
                and result.shots_successful >= target_successful
            ):
                break
            result.shots_attempted += 1

            # 1. Run the (possibly fixed-up) circuit.
            run_time = self.strategy.program.duration(self.noise)
            run_time += self.strategy.added_swaps * self.timing.swap_duration()
            clock = self._emit(result, "run", clock, run_time)

            # 2. Fluorescence imaging reveals this shot's losses.
            clock = self._emit(
                result, "fluorescence", clock, self.timing.fluorescence_time
            )
            lost = sampler.sample(
                self.topology.active_sites(),
                self.strategy.current_measured_sites(),
            )

            # 3. Score the shot before adapting.
            used = self.strategy.current_used_sites()
            shot_ok = not (lost & used)
            if shot_ok:
                result.shots_successful += 1
                segment_successes += 1
                result.expected_successes += self.strategy.shot_success_rate(
                    self.noise
                )

            # 4. Let the strategy cope, loss by loss.
            reloaded = False
            for site in sorted(lost):
                if reloaded:
                    break
                self.topology.remove_atom(site)
                outcome = self.strategy.on_loss(site)
                if outcome.interfering:
                    result.interfering_losses += 1
                else:
                    result.spare_losses += 1
                fixup_time = (
                    outcome.remap_updates * self.timing.remap_time
                    + (self.timing.reroute_fixup_time
                       if outcome.ran_fixup_search else 0.0)
                )
                if fixup_time > 0:
                    clock = self._emit(result, "fixup", clock, fixup_time)
                if outcome.recompile_seconds > 0:
                    recompile_cost = (
                        self.timing.recompile_time
                        if self.timing.recompile_time is not None
                        else outcome.recompile_seconds
                    )
                    clock = self._emit(result, "compile", clock, recompile_cost)
                if not outcome.coped:
                    clock = self._reload(result, clock)
                    result.shots_between_reloads.append(segment_successes)
                    segment_successes = 0
                    reloaded = True

        result.shots_between_reloads.append(segment_successes)
        return result

    # -- helpers ---------------------------------------------------------------------------

    def _reload(self, result: RunResult, clock: float) -> float:
        self.topology.reload()
        self.strategy.after_reload()
        result.reload_count += 1
        return self._emit(result, "reload", clock, self.timing.reload_time)

    @staticmethod
    def _emit(
        result: RunResult, kind: str, clock: float, duration: float
    ) -> float:
        if duration > 0:
            result.timeline.append(TimelineEvent(kind, clock, duration))
        return clock + duration


# -- batch execution over the sweep engine ---------------------------------------------


@dataclass(frozen=True)
class ShotSpec:
    """One self-contained shot-simulation task.

    Everything needed to reproduce a run from a clean process: the
    benchmark is named (workers rebuild the circuit), the models are
    frozen dataclasses, and the seed is an integer — typically derived
    from the task's canonical key via
    :func:`repro.exec.keys.derive_seed`, which is what makes a batch
    deterministic at any worker count.
    """

    strategy: str
    benchmark: str
    program_size: int
    grid_side: int
    mid: float
    max_shots: int
    seed: int
    target_successful: Optional[int] = None
    loss_model: Optional[LossModel] = None
    timing: Optional[TimingModel] = None
    noise: Optional[NoiseModel] = None
    include_compile_event: bool = True


def run_shot_spec(spec: ShotSpec) -> RunResult:
    """Execute one :class:`ShotSpec` (module-level: usable as an engine
    task function from spawn-based workers)."""
    from repro.loss.strategies import make_strategy
    from repro.obs import trace as _trace
    from repro.workloads.ref import resolve_circuit

    with _trace.span("shots", strategy=spec.strategy,
                     benchmark=spec.benchmark, size=spec.program_size):
        noise = spec.noise or NoiseModel.neutral_atom()
        runner = ShotRunner(
            make_strategy(spec.strategy, noise=noise),
            resolve_circuit(spec.benchmark, spec.program_size),
            Topology.square(spec.grid_side, spec.mid),
            config=CompilerConfig(max_interaction_distance=spec.mid),
            noise=noise,
            loss_model=spec.loss_model,
            timing=spec.timing,
            rng=spec.seed,
        )
        return runner.run(
            max_shots=spec.max_shots,
            target_successful=spec.target_successful,
            include_compile_event=spec.include_compile_event,
        )


def run_shot_specs(specs, jobs: Optional[int] = None) -> List[RunResult]:
    """Run a batch of specs through the sweep engine, in spec order."""
    from repro.exec.engine import run_tasks

    return run_tasks(run_shot_spec, list(specs), jobs=jobs)


def run_shot_grid_map(
    specs,
    *,
    experiment: str,
    base_seed: int = 0,
    key_fields=None,
    jobs: Optional[int] = None,
) -> List[RunResult]:
    """Run a batch of specs with key-derived seeds, in spec order.

    The grid_map layer over :func:`run_shot_specs`: each spec's ``seed``
    field is **overwritten** with a seed derived from the spec's
    canonical cell key (its primitive fields — strategy, benchmark,
    sizes, shot counts — under the ``experiment`` namespace; the
    attached model objects stay out of the key), so shot outcomes are
    identical at any worker count and independent of which other specs
    share the batch.  Construct specs with ``seed=0`` as a placeholder.
    """
    from repro.exec.grid import grid_map

    return grid_map(run_shot_spec, list(specs), experiment=experiment,
                    base_seed=base_seed, key_fields=key_fields, jobs=jobs)
