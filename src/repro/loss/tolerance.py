"""Maximum atom-loss tolerance (Fig 10).

How many atoms can each strategy lose — one by one, uniformly at random
over the remaining array — before it must reload?  Reported as a fraction
of total device size, averaged over trials.

Upper bounds from the paper's reasoning, all reproduced by these
simulations:

* recompile tolerates up to ``1 - program/device`` (70% for a 30-qubit
  program on 100 sites) once the MID bridges any holes;
* the remap/reroute family is capped lower because shifting needs a
  spare *in line* with the hole and rerouting needs connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.api.serialize import serializable
from repro.circuits.circuit import Circuit
from repro.core.config import CompilerConfig
from repro.hardware.topology import Topology
from repro.loss.strategies.base import CopingStrategy
from repro.utils.rng import RngLike, ensure_rng


@serializable
@dataclass
class ToleranceResult:
    """Loss tolerance of one (strategy, program, device) combination."""

    strategy_name: str
    device_sites: int
    losses_sustained: List[int] = field(default_factory=list)

    @property
    def mean_losses(self) -> float:
        if not self.losses_sustained:
            return 0.0
        return sum(self.losses_sustained) / len(self.losses_sustained)

    @property
    def mean_fraction(self) -> float:
        """Mean tolerated loss as a fraction of device size (Fig 10's y-axis)."""
        return self.mean_losses / self.device_sites

    @property
    def std_fraction(self) -> float:
        if len(self.losses_sustained) < 2:
            return 0.0
        mean = self.mean_losses
        var = sum((x - mean) ** 2 for x in self.losses_sustained) / (
            len(self.losses_sustained) - 1
        )
        return (var**0.5) / self.device_sites


def max_loss_tolerance(
    strategy: CopingStrategy,
    circuit: Circuit,
    grid_side: int,
    max_interaction_distance: float,
    config: Optional[CompilerConfig] = None,
    trials: int = 5,
    rng: RngLike = 0,
) -> ToleranceResult:
    """Measure how many uniform random losses ``strategy`` survives.

    Each trial starts from a fresh full array, removes random atoms one at
    a time (letting the strategy adapt after each), and stops at the first
    loss the strategy cannot cope with.  That failing loss is not counted.
    """
    generator = ensure_rng(rng)
    base_config = config or CompilerConfig(
        max_interaction_distance=max_interaction_distance
    )
    result = ToleranceResult(
        strategy_name=strategy.name, device_sites=grid_side * grid_side
    )
    for _ in range(trials):
        topology = Topology.square(grid_side, max_interaction_distance)
        strategy.begin(circuit, topology, base_config)
        sustained = 0
        # Strategies never mutate occupancy, so the active-site list can
        # be maintained incrementally instead of rebuilt per loss.  The
        # site-selection draws stay scalar: each ``integers(n)`` has a
        # trial-dependent bound, so the draw sequence (and generator
        # state) is exactly the historical one.
        active = topology.active_sites()
        while active:
            index = int(generator.integers(len(active)))
            site = int(active[index])
            del active[index]
            topology.remove_atom(site)
            outcome = strategy.on_loss(site)
            if not outcome.coped:
                break
            sustained += 1
        result.losses_sustained.append(sustained)
    return result
