"""Execution timeline records (Fig 14).

The shot runner emits a flat list of :class:`TimelineEvent`; rendering
them as a labelled text trace reproduces the paper's timeline figure
(compile / run circuit / fluorescence / circuit fixup / reload atoms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.api.serialize import serializable

#: Event kinds, in the paper's legend order.
EVENT_KINDS = ("compile", "run", "fluorescence", "fixup", "reload")


@serializable
@dataclass(frozen=True)
class TimelineEvent:
    """One contiguous activity segment."""

    kind: str
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.duration < 0 or self.start < 0:
            raise ValueError("timeline events need non-negative start/duration")

    @property
    def end(self) -> float:
        return self.start + self.duration


def totals_by_kind(events: Iterable[TimelineEvent]) -> Dict[str, float]:
    """Total seconds per event kind."""
    totals = {kind: 0.0 for kind in EVENT_KINDS}
    for event in events:
        totals[event.kind] += event.duration
    return totals


def render_timeline(events: List[TimelineEvent], width: int = 100) -> str:
    """ASCII strip chart of a trace (one character column per time slice).

    Each column shows the event kind occupying most of that slice:
    C=compile, r=run, f=fluorescence, x=fixup, R=reload, .=idle.
    """
    if not events:
        return "(empty timeline)"
    total = max(e.end for e in events)
    if total <= 0:
        return "(zero-length timeline)"
    symbols = {"compile": "C", "run": "r", "fluorescence": "f",
               "fixup": "x", "reload": "R"}
    columns = []
    slice_width = total / width
    for i in range(width):
        lo, hi = i * slice_width, (i + 1) * slice_width
        best_kind, best_overlap = None, 0.0
        for event in events:
            overlap = min(hi, event.end) - max(lo, event.start)
            if overlap > best_overlap:
                best_overlap = overlap
                best_kind = event.kind
        columns.append(symbols.get(best_kind, "."))
    legend = "  ".join(f"{sym}={kind}" for kind, sym in symbols.items())
    return f"|{''.join(columns)}|  total={total:.3f}s\n{legend}"
