"""Command-line entry point: regenerate any experiment by name.

Usage::

    python -m repro list
    python -m repro run fig3
    python -m repro run fig12 --quick
    python -m repro run all --quick --jobs 4 --cache-dir /tmp/repro-cache

``--quick`` passes reduced parameters (the same scale the pytest
benchmarks use is hit via ``pytest benchmarks/ --benchmark-only``;
``--quick`` here is even smaller, for a fast smoke pass).

``--jobs N`` fans sweep grids out over N worker processes; any N
produces identical figure text because every task seeds its RNG from its
canonical key.  ``--cache-dir`` points the persistent compile cache at a
directory shared by workers and future runs; figure output goes to
stdout and timing diagnostics to stderr, so redirected output is
byte-comparable between runs sharing a warm cache.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.exec import cache as exec_cache
from repro.exec import engine as exec_engine
from repro.experiments import ALL_EXPERIMENTS

#: Default on-disk compile cache for CLI runs (override with --cache-dir,
#: the REPRO_CACHE_DIR environment variable, or disable with --no-cache).
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro", "compile")

#: Reduced keyword arguments per experiment for --quick runs.
_QUICK_ARGS = {
    "fig3": dict(max_size=30, size_step=10, mids=(2.0, 3.0, 5.0),
                 bv_line_sizes=(15, 27)),
    "fig4": dict(max_size=30, size_step=10, mids=(2.0, 3.0, 5.0),
                 qft_line_sizes=(10, 26)),
    "fig5": dict(max_size=24, size_step=8, mids=(2.0, 3.0),
                 qaoa_line_sizes=(16,)),
    "fig6": dict(sizes=(16, 30), mids=(2.0, 3.0)),
    "fig7": dict(program_size=24, error_points=9),
    "fig8": dict(max_size=30, size_step=10, error_points=9),
    "fig10": dict(mids=(2.0, 3.0), program_size=20, trials=2),
    "fig11": dict(benchmarks=("cnu",), mids=(3.0,), max_holes=10,
                  program_size=20, trials=2),
    "fig12": dict(mids=(3.0, 4.0), shots=120, program_size=20),
    "fig13": dict(mids=(4.0,), factors=(1.0, 10.0), shots_per_run=150,
                  program_size=20),
    "fig14": dict(target_shots=10, program_size=20),
    "validation": dict(),
    "ablation-zones": dict(benchmarks=("qaoa",), program_size=20),
    "ablation-lookahead": dict(program_size=20),
    "ablation-margin": dict(program_size=20, trials=2, margins=(1.0, 2.0)),
    "ext-ejection": dict(shots=60),
    "ext-scaling": dict(grid_sides=(6, 10)),
    "ext-noisy-validation": dict(shots=150),
    "ext-trapped-ion": dict(benchmarks=("bv", "cnu", "qaoa"), program_size=20),
    "ext-geometry": dict(benchmarks=("bv",), grid_side=5),
}


def _run_one(name: str, quick: bool) -> None:
    module = ALL_EXPERIMENTS[name]
    kwargs = _QUICK_ARGS.get(name, {}) if quick else {}
    start = time.perf_counter()
    result = module.run(**kwargs)
    elapsed = time.perf_counter() - start
    print(result.format())
    print()
    # Diagnostics go to stderr: stdout carries only the (deterministic)
    # figure text, so two runs can be compared byte-for-byte.
    print(f"[{name} regenerated in {elapsed:.1f}s"
          f"{' (quick parameters)' if quick else ''}]",
          file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures and extensions.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment",
        help=f"one of {', '.join(sorted(ALL_EXPERIMENTS))}, or 'all'",
    )
    run_parser.add_argument(
        "--quick", action="store_true",
        help="reduced parameters for a fast smoke run",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep grids (default 1; output is "
             "identical at any N whenever the on-disk cache is enabled "
             "— see README for the --no-cache caveat)",
    )
    run_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent compile-cache directory (default: "
             "$REPRO_CACHE_DIR, else ~/.cache/repro/compile)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk compile cache (memory-only)",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, module in sorted(ALL_EXPERIMENTS.items()):
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:22s} {doc}")
        return 0

    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    exec_engine.set_jobs(args.jobs)
    if args.no_cache:
        exec_cache.set_cache_dir(None)
    else:
        cache_dir = (args.cache_dir
                     or os.environ.get(exec_cache.CACHE_DIR_ENV)
                     or os.path.expanduser(DEFAULT_CACHE_DIR))
        exec_cache.set_cache_dir(cache_dir)

    if args.experiment == "all":
        for name in ALL_EXPERIMENTS:
            _run_one(name, args.quick)
        _print_cache_stats()
        return 0
    if args.experiment not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(sorted(ALL_EXPERIMENTS))}", file=sys.stderr)
        return 2
    _run_one(args.experiment, args.quick)
    _print_cache_stats()
    return 0


def _print_cache_stats() -> None:
    cache = exec_cache.get_cache()
    stats = cache.stats()
    where = cache.path or "memory only"
    # Parent-process counters only: with --jobs > 1 most compiles (and
    # their cache hits) happen inside workers, whose counters die with
    # the worker processes.
    print(f"[compile cache ({where}), parent process: "
          f"{stats['memory_hits']} memory hits, "
          f"{stats['disk_hits']} disk hits, {stats['misses']} misses]",
          file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
