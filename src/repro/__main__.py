"""Command-line entry point: regenerate any experiment by name.

Usage::

    python -m repro list
    python -m repro run fig3
    python -m repro run fig12 --quick
    python -m repro run all --quick --jobs 4 --cache-dir /tmp/repro-cache
    python -m repro run fig3 --quick --format json --out fig3.json
    python -m repro run fig3 --quick --store /tmp/repro-store
    python -m repro sweep ext-trapped-ion --quick --axis program_size=10,20
    python -m repro sweep fig3 --axis mids=2,4 --server http://host:8000
    python -m repro run workload-metrics --circuit prog.qasm --quick
    python -m repro circuits add prog.qasm
    python -m repro circuits add prog.qasm --server http://host:8000
    python -m repro circuits ls
    python -m repro circuits show DIGEST
    python -m repro cache stats
    python -m repro cache prune --max-size 256
    python -m repro store ls
    python -m repro store ls --last 20
    python -m repro store show KEY --format json
    python -m repro store gc --max-size 64
    python -m repro serve --port 8000 --store /tmp/repro-store --jobs 2
    python -m repro serve --port 8000 --store /shared/store --jobs 0
    python -m repro worker --server http://host:8000 --store /shared/store
    python -m repro run fig3 --quick --trace-dir /tmp/repro-traces
    python -m repro serve --port 8000 --jobs 0 --trace-dir /shared/traces
    python -m repro trace ls --trace-dir /tmp/repro-traces
    python -m repro trace show TRACE_ID --format json

Every run executes under a :class:`repro.api.Session` built from the
flags — no process-global execution state.  ``--format text`` (the
default) prints the figure text exactly as always; ``--format json``
emits the result's schema-stable ``to_dict()`` envelope, which
round-trips through ``ExperimentResult.from_dict``.  ``run all
--format json`` emits one JSON object mapping each experiment name to
its envelope (decode each value individually).  ``--out FILE`` writes
the payload to a file instead of stdout.

``--quick`` applies each experiment's registered reduced-parameter
preset (the same scale the pytest benchmarks use is hit via ``pytest
benchmarks/ --benchmark-only``; ``--quick`` here is even smaller, for a
fast smoke pass).

``--jobs N`` fans sweep grids out over N worker processes; any N
produces identical figure text because every task seeds its RNG from its
canonical key.  ``--cache-dir`` points the persistent compile cache at a
directory shared by workers and future runs; ``--store DIR`` makes runs
read-through against a persistent result store (``--force`` recomputes
and refreshes the stored entry).  Figure output goes to stdout and
timing diagnostics to stderr, so redirected output is byte-comparable
between runs sharing a warm cache — or replayed from the store.

``sweep`` runs a parameter grid as one :class:`repro.api.SweepSpec`:
each ``--axis name=v1,v2,...`` contributes one grid dimension, ``--set
name=value`` fixes a parameter across every cell, and the grid expands
canonically (axes sorted by name, cartesian product).  Per-cell
progress goes to stderr as cells complete; stdout carries the final
:class:`~repro.api.SweepResult` (``--format json`` emits its
schema-versioned envelope, whose per-cell ``result`` entries are
byte-identical to the equivalent ``run --format json``).  With
``--server URL`` the grid is submitted to a serving endpoint instead —
the server dedups cells against its store and in-flight jobs, and the
CLI consumes the streamed results as they finalize.

``circuits`` manages the content-addressed circuit store: ``add``
ingests an OpenQASM 2.0 file (locally, or — with ``--server`` — into a
serving endpoint via ``POST /circuits``) and prints its digest; ``ls``
and ``show`` inspect stored programs.  ``run EXP --circuit FILE`` is the
one-step spelling: the file is ingested and its ``circuit:<digest>``
reference is injected as the experiment's circuit parameter (the
experiment must declare exactly one).

``--trace-dir DIR`` turns on end-to-end tracing (:mod:`repro.obs`):
the run (or each served request chain) gets a trace id, every timed
stage — store read/write, task fan-out, per-task compiles, shot
kernels, queue wait, lease lifetime — lands as one span in an
append-only JSONL store under DIR, and the id is printed to stderr as
``[trace <id>]``.  Tracing is observability only: ``--format json``
output is byte-identical with it on or off.  ``trace ls`` / ``trace
show`` browse a trace directory (unique id prefixes accepted); a
serving endpoint started with ``--trace-dir`` also answers ``GET
/trace/<id>``.

``serve`` starts the HTTP serving layer (:mod:`repro.serve`) over a
result store: cached results are answered from disk, misses run on a
background job queue.  The first stderr line is machine-parseable —
``[serve] listening on http://HOST:PORT`` — so scripts binding ``--port
0`` (an ephemeral port; no more races for fixed ones) can read back the
address.  ``--jobs 0`` starts no local execution threads: jobs wait for
``worker`` processes, which pull them over the :mod:`repro.fleet`
protocol (lease + heartbeat; a killed worker's jobs are reclaimed and
re-run elsewhere).  Ctrl-C anywhere exits with the conventional SIGINT
status 130 after cleaning up (no orphaned cache temp files).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.api import ExperimentResult, Session, all_experiments
from repro.api.circuits import CIRCUIT_DIR_ENV, CircuitStore
from repro.api.store import ResultStore, STORE_DIR_ENV, canonical_json
from repro.exec.cache import CACHE_DIR_ENV

#: Default on-disk compile cache for CLI runs (override with --cache-dir,
#: the REPRO_CACHE_DIR environment variable, or disable with --no-cache).
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro", "compile")

#: Default result-store directory for the `store` subcommand (override
#: with --store-dir or the REPRO_STORE_DIR environment variable; `run`
#: only uses a store when --store DIR is passed explicitly).
DEFAULT_STORE_DIR = os.path.join("~", ".cache", "repro", "results")

#: Default content-addressed circuit store (override with --circuit-dir
#: or the REPRO_CIRCUIT_DIR environment variable).
DEFAULT_CIRCUIT_DIR = os.path.join("~", ".cache", "repro", "circuits")

#: Default trace directory for the `trace` subcommand (override with
#: --trace-dir or the REPRO_TRACE_DIR environment variable; `run`,
#: `sweep`, and `serve` only record spans when --trace-dir is passed
#: explicitly — tracing is opt-in per invocation).
DEFAULT_TRACE_DIR = os.path.join("~", ".cache", "repro", "traces")


def _resolve_cache_dir(cache_dir, no_cache: bool):
    if no_cache:
        return None
    return (cache_dir
            or os.environ.get(CACHE_DIR_ENV)
            or os.path.expanduser(DEFAULT_CACHE_DIR))


def _resolve_store_dir(store_dir):
    return (store_dir
            or os.environ.get(STORE_DIR_ENV)
            or os.path.expanduser(DEFAULT_STORE_DIR))


def _resolve_circuit_dir(circuit_dir):
    return (circuit_dir
            or os.environ.get(CIRCUIT_DIR_ENV)
            or os.path.expanduser(DEFAULT_CIRCUIT_DIR))


def _resolve_trace_dir(trace_dir):
    from repro.obs import TRACE_DIR_ENV

    return (trace_dir
            or os.environ.get(TRACE_DIR_ENV)
            or os.path.expanduser(DEFAULT_TRACE_DIR))


def _timed_run(session: Session, name: str, quick: bool,
               force: bool = False, overrides=None):
    """Run one experiment, emitting the timing diagnostic to stderr.

    stdout stays reserved for the (deterministic) result payload, so two
    runs can be compared byte-for-byte.  The diagnostic is attributed to
    *this* run under *this* session: store hits are marked, and the
    cache counters a caller reads afterwards belong to the session
    actually activated here — never to the process default session.
    """
    store = session.store
    hits_before = store.hits if store is not None else 0
    start = time.perf_counter()
    result = session.run(name, quick=quick, force=force,
                         **(overrides or {}))
    elapsed = time.perf_counter() - start
    replayed = store is not None and store.hits > hits_before
    print(f"[{name} "
          f"{'replayed from result store' if replayed else 'regenerated'} "
          f"in {elapsed:.1f}s"
          f"{' (quick parameters)' if quick else ''}]",
          file=sys.stderr)
    if session.last_trace_id is not None:
        # The handle to paste into `trace show` / GET /trace/<id>; on
        # stderr so traced and untraced stdout stay byte-identical.
        print(f"[trace {session.last_trace_id}]", file=sys.stderr)
    return result


def _emit(payload: str, out) -> None:
    """Write ``payload`` to stdout or FILE — identical bytes either way
    (modulo the guaranteed trailing newline), so redirected stdout and
    --out are interchangeable.  Missing parent directories of FILE are
    created."""
    if not payload.endswith("\n"):
        payload += "\n"
    if out is None:
        sys.stdout.write(payload)
    else:
        parent = os.path.dirname(os.path.abspath(out))
        os.makedirs(parent, exist_ok=True)
        # newline='' disables platform newline translation, keeping the
        # file byte-comparable with redirected stdout on every OS.
        with open(out, "w", encoding="utf-8", newline="") as handle:
            handle.write(payload)


def _cmd_run(args) -> int:
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    specs = all_experiments()
    if args.experiment != "all" and args.experiment not in specs:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(sorted(specs))}", file=sys.stderr)
        return 2
    names = list(specs) if args.experiment == "all" else [args.experiment]

    session = Session(
        jobs=args.jobs,
        cache_dir=_resolve_cache_dir(args.cache_dir, args.no_cache),
        store_dir=args.store,
        circuit_dir=_resolve_circuit_dir(args.circuit_dir),
        trace_dir=args.trace_dir,
    )
    overrides = {}
    if args.circuit is not None:
        if args.experiment == "all":
            print("--circuit needs one named experiment, not 'all'",
                  file=sys.stderr)
            return 2
        spec = specs[args.experiment]
        if len(spec.circuit_params) != 1:
            which = (f"declares {len(spec.circuit_params)} circuit "
                     f"parameters" if spec.circuit_params
                     else "takes no circuit parameter")
            print(f"experiment {args.experiment!r} {which}; --circuit "
                  "needs exactly one (try workload-metrics)",
                  file=sys.stderr)
            return 2
        try:
            with open(args.circuit, encoding="utf-8") as handle:
                qasm_text = handle.read()
        except OSError as error:
            print(f"cannot read {args.circuit}: {error}", file=sys.stderr)
            return 2
        try:
            digest = session.circuits.add(qasm_text)
        except ValueError as error:
            print(f"{args.circuit}: {error}", file=sys.stderr)
            return 2
        overrides = {spec.circuit_params[0]: f"circuit:{digest}"}
        print(f"[circuit {args.circuit} -> circuit:{digest[:16]}… "
              f"in {session.circuits.path}]", file=sys.stderr)
    stats_before = session.cache_stats()
    if args.format == "text" and args.out is None:
        # Streaming text path: byte-identical to the historical CLI.
        for name in names:
            result = _timed_run(session, name, args.quick, args.force,
                                overrides)
            print(result.format())
            print()
        _print_cache_stats(session, stats_before)
        return 0

    if args.format == "text":
        # Same bytes as the streaming stdout mode (format() + blank
        # separator per figure), so `--out f.txt` == `> f.txt`.
        payload = "".join(
            _timed_run(session, name, args.quick, args.force,
                       overrides).format()
            + "\n\n"
            for name in names
        )
    else:
        payloads = {
            name: _timed_run(session, name, args.quick, args.force,
                             overrides).to_dict()
            for name in names
        }
        document = (payloads[names[0]] if args.experiment != "all"
                    else payloads)
        # canonical_json is the one spelling of the envelope bytes: the
        # store persists it and `store show --format json` prints it,
        # so stored bytes == stdout bytes by construction.
        payload = canonical_json(document)
    try:
        _emit(payload, args.out)
    except OSError as error:
        print(f"cannot write {args.out}: {error}", file=sys.stderr)
        return 2
    _print_cache_stats(session, stats_before)
    return 0


def _parse_sweep_value(text: str):
    """One axis/override value: a Python literal when it parses as one
    (numbers, tuples, None, quoted strings), the raw string otherwise —
    so ``mids=2,4`` sweeps ints while ``name=foo`` stays a string."""
    import ast

    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_axis(text: str):
    name, sep, values = text.partition("=")
    if not sep or not name or not values:
        raise ValueError(
            f"--axis expects NAME=V1,V2,... got {text!r}")
    return name, tuple(_parse_sweep_value(value)
                       for value in values.split(","))


def _parse_override(text: str):
    name, sep, value = text.partition("=")
    if not sep or not name:
        raise ValueError(f"--set expects NAME=VALUE, got {text!r}")
    return name, _parse_sweep_value(value)


def _cmd_sweep(args) -> int:
    from repro.api import RemoteRunError, RemoteSession, SweepSpec

    try:
        axes = dict(_parse_axis(axis) for axis in args.axis or [])
        base = dict(_parse_override(item) for item in args.set or [])
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    try:
        spec = SweepSpec(args.experiment, axes=axes, base=base,
                         quick=args.quick)
    except KeyError:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: {', '.join(sorted(all_experiments()))}",
              file=sys.stderr)
        return 2
    except (TypeError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2

    if args.server is not None:
        # With tracing requested, spans buffer client-side and export to
        # the server's trace store (POST /trace) — there is no local dir.
        session = RemoteSession(args.server,
                                trace=args.trace_dir is not None)
    else:
        if args.jobs < 1:
            print("--jobs must be >= 1", file=sys.stderr)
            return 2
        session = Session(
            jobs=args.jobs,
            cache_dir=_resolve_cache_dir(args.cache_dir, args.no_cache),
            store_dir=args.store,
            circuit_dir=_resolve_circuit_dir(args.circuit_dir),
            trace_dir=args.trace_dir,
        )
    from repro.obs import trace as _obs

    hits_before = session.hits
    start = time.perf_counter()
    pairs = []
    try:
        # Local or remote, the SessionProtocol surface is the same:
        # iterate cells as they complete, diagnostics to stderr only.
        # One sweep-level root span ties every local cell to a single
        # trace id (a RemoteSession mints its own in iter_sweep).
        with _obs.root_span(getattr(session, "tracer", None),
                            "session.sweep", service="session",
                            experiment=spec.experiment, cells=len(spec),
                            quick=bool(spec.quick)):
            for cell, result in session.iter_sweep(spec, force=args.force):
                pairs.append((cell, result))
                params = ", ".join(f"{name}={value!r}"
                                   for name, value in cell.params.items())
                print(f"[cell {len(pairs)}/{len(spec)} "
                      f"{spec.experiment}[{params}] done]", file=sys.stderr)
    except RemoteRunError as error:
        print(f"sweep failed: {error}", file=sys.stderr)
        return 1
    pairs.sort(key=lambda pair: pair[0].index)
    from repro.api import SweepResult

    sweep_result = SweepResult(
        experiment=spec.experiment, quick=spec.quick,
        cells=tuple(cell for cell, _ in pairs),
        results=tuple(result for _, result in pairs),
    )
    replayed = session.hits - hits_before
    print(f"[sweep {spec.experiment}: {len(spec)} cell(s) in "
          f"{time.perf_counter() - start:.1f}s — {replayed} replayed, "
          f"{len(spec) - replayed} computed"
          f"{' (quick parameters)' if args.quick else ''}]",
          file=sys.stderr)
    trace_id = getattr(session, "last_trace_id", None)
    if trace_id is not None:
        print(f"[trace {trace_id}]", file=sys.stderr)
    payload = (canonical_json(sweep_result.to_dict())
               if args.format == "json" else sweep_result.format())
    try:
        _emit(payload, args.out)
    except OSError as error:
        print(f"cannot write {args.out}: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_list() -> int:
    for name, spec in sorted(all_experiments().items()):
        print(f"{name:22s} {spec.doc}")
    return 0


def _cmd_cache(args) -> int:
    # _resolve_cache_dir always lands on a concrete directory (flag, env,
    # or the default), so cache.path is never None here.
    session = Session(cache_dir=_resolve_cache_dir(args.cache_dir, False))
    cache = session.cache

    if args.cache_command == "stats":
        stats = cache.disk_stats()
        print(f"cache directory: {stats['path']}")
        print(f"entries:         {stats['entries']}")
        print(f"total size:      {stats['total_bytes'] / 1e6:.2f} MB")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear_disk()
        print(f"removed {removed} entries from {cache.path}")
        return 0
    if args.cache_command == "prune":
        if args.max_size < 0:
            print("--max-size must be >= 0", file=sys.stderr)
            return 2
        max_bytes = int(args.max_size * 1e6)
        outcome = cache.prune_disk(max_bytes)
        print(f"removed {outcome['removed']} least-recently-used entries; "
              f"{outcome['remaining_entries']} remain "
              f"({outcome['remaining_bytes'] / 1e6:.2f} MB) in {cache.path}")
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _workload_column(envelope) -> str:
    """The ``store ls`` workload-reference column for one envelope.

    Workload-driven results carry the reference they compiled in a
    ``workload`` field of their encoded dataclass; everything else (the
    fixed-suite figures) shows ``-``.  Uploaded-circuit references are
    shortened to ``circuit:<8 hex>…`` to keep the listing one line per
    entry.
    """
    data = envelope.get("data")
    fields = data.get("fields", {}) if isinstance(data, dict) else {}
    workload = fields.get("workload")
    if not isinstance(workload, str) or not workload:
        return "-"
    if workload.startswith("circuit:"):
        return f"circuit:{workload[len('circuit:'):][:8]}…"
    return workload


def _cmd_circuits(args) -> int:
    if args.circuits_command == "add" and args.server is not None:
        from repro.api import RemoteSession

        try:
            with open(args.file, encoding="utf-8") as handle:
                qasm_text = handle.read()
        except OSError as error:
            print(f"cannot read {args.file}: {error}", file=sys.stderr)
            return 2
        try:
            digest = RemoteSession(args.server).upload_circuit(qasm_text)
        except ValueError as error:
            print(f"{args.file}: {error}", file=sys.stderr)
            return 2
        except OSError as error:
            print(f"cannot reach {args.server}: {error}", file=sys.stderr)
            return 2
        print(f"circuit:{digest}")
        return 0

    circuits = CircuitStore(_resolve_circuit_dir(args.circuit_dir))

    if args.circuits_command == "add":
        try:
            with open(args.file, encoding="utf-8") as handle:
                qasm_text = handle.read()
        except OSError as error:
            print(f"cannot read {args.file}: {error}", file=sys.stderr)
            return 2
        try:
            digest = circuits.add(qasm_text)
        except ValueError as error:
            # The line-attributed QASM validation message, verbatim.
            print(f"{args.file}: {error}", file=sys.stderr)
            return 2
        # stdout carries exactly the reference to paste into --set /
        # --axis / params; diagnostics stay on stderr.
        print(f"circuit:{digest}")
        print(f"[stored in {circuits.path}]", file=sys.stderr)
        return 0

    if args.circuits_command == "ls":
        for digest, _, size, _ in sorted(circuits.entries()):
            print(f"circuit:{digest}  {size / 1e3:8.1f} kB")
        stats = circuits.stats()
        print(f"{stats['entries']} stored circuit(s), "
              f"{stats['total_bytes'] / 1e6:.2f} MB in {stats['path']}")
        return 0

    if args.circuits_command == "show":
        digest = args.digest
        if digest.startswith("circuit:"):
            digest = digest[len("circuit:"):]
        matches = sorted({entry[0] for entry in circuits.entries()
                          if entry[0].startswith(digest)})
        if not matches:
            print(f"no stored circuit matches {args.digest!r} in "
                  f"{circuits.path}", file=sys.stderr)
            return 2
        if len(matches) > 1:
            print(f"digest prefix {args.digest!r} is ambiguous: "
                  f"{', '.join(d[:16] for d in matches)}", file=sys.stderr)
            return 2
        text = circuits.get_qasm(matches[0])
        if text is None:
            print(f"stored circuit {matches[0][:16]}… is unreadable",
                  file=sys.stderr)
            return 2
        # The canonical QASM bytes — identical to GET /circuits/<digest>.
        sys.stdout.write(text)
        return 0
    raise AssertionError(
        f"unhandled circuits command {args.circuits_command!r}")


def _cmd_store(args) -> int:
    store = ResultStore(_resolve_store_dir(args.store_dir))

    if args.store_command == "ls" and args.last is not None:
        if args.last < 1:
            print("--last must be >= 1", file=sys.stderr)
            return 2
        # The bounded tail reader: a huge store's recent activity view
        # must not walk every entry or slurp the whole ledger.
        events = store.tail(args.last)
        for event in events:
            outcome = "hit " if event.get("hit") else "miss"
            trace = event.get("trace")
            # Traced runs stamp their ledger row; the short prefix here
            # pastes straight into `trace show` (prefixes resolve).
            trace_column = (f"  trace {trace[:12]}"
                            if isinstance(trace, str) and trace else "")
            print(f"{outcome}  {event.get('experiment', '?'):22s} "
                  f"{str(event.get('key', '?'))[:16]}  "
                  f"{event.get('wall_s', 0.0):8.3f}s{trace_column}")
        print(f"last {len(events)} run(s) recorded in {store.ledger_path()}")
        return 0

    if args.store_command == "ls":
        rows = sorted(store.entries(), key=lambda r: (r[3], r[1]))
        for key, _, size, _ in rows:
            # peek, not get: a listing must not refresh every entry's
            # recency and flatten the LRU order gc evicts by.
            envelope = store.peek(key) or {}
            experiment = envelope.get("experiment", "?")
            workload = _workload_column(envelope)
            print(f"{key}  {experiment:22s} {workload:28s} "
                  f"{size / 1e3:8.1f} kB")
        stats = store.stats()
        print(f"{stats['entries']} stored result(s), "
              f"{stats['total_bytes'] / 1e6:.2f} MB in {stats['path']}")
        return 0

    if args.store_command == "show":
        matches = sorted({key for key, _, _, _ in store.entries()
                          if key.startswith(args.key)})
        if not matches:
            print(f"no stored result matches key {args.key!r} in "
                  f"{store.path}", file=sys.stderr)
            return 2
        if len(matches) > 1:
            print(f"key prefix {args.key!r} is ambiguous: "
                  f"{', '.join(k[:16] for k in matches)}", file=sys.stderr)
            return 2
        envelope = store.peek(matches[0])
        if envelope is None:
            print(f"stored entry {matches[0]} is unreadable",
                  file=sys.stderr)
            return 2
        if args.format == "json":
            # Byte-identical to `run <x> --format json` for this entry.
            sys.stdout.write(canonical_json(envelope))
            return 0
        try:
            result = ExperimentResult.from_dict(envelope)
        except (TypeError, ValueError) as error:
            print(f"cannot decode stored entry {matches[0][:16]}…: {error}",
                  file=sys.stderr)
            return 2
        print(result.format())
        return 0

    if args.store_command == "gc":
        if args.max_size < 0:
            print("--max-size must be >= 0", file=sys.stderr)
            return 2
        outcome = store.gc(int(args.max_size * 1e6))
        print(f"removed {outcome['removed']} least-recently-used results; "
              f"{outcome['remaining_entries']} remain "
              f"({outcome['remaining_bytes'] / 1e6:.2f} MB) in {store.path}")
        return 0
    raise AssertionError(f"unhandled store command {args.store_command!r}")


def _span_depths(spans):
    """Tree depth per span id, for the indented ``trace show`` view.
    Orphaned parents (spans recorded elsewhere and never exported) and
    cycles (corrupt files) both land safely at their last known depth."""
    by_id = {span.get("span"): span for span in spans}
    depths = {}
    for span in spans:
        depth, parent, seen = 0, span.get("parent"), set()
        while parent in by_id and parent not in seen:
            seen.add(parent)
            depth += 1
            parent = by_id[parent].get("parent")
        depths[span.get("span")] = depth
    return depths


def _cmd_trace(args) -> int:
    from repro.obs import TraceStore

    traces = TraceStore(_resolve_trace_dir(args.trace_dir))

    if args.trace_command == "ls":
        rows = traces.traces()
        for trace_id, _, _ in rows:
            spans = traces.read(trace_id)
            root = next((span for span in spans
                         if span.get("parent") is None), None)
            label = root.get("name", "?") if root is not None else "?"
            services = sorted({span.get("service", "?") for span in spans})
            print(f"{trace_id}  {len(spans):4d} span(s)  {label:14s} "
                  f"[{', '.join(services)}]")
        stats = traces.stats()
        print(f"{stats['traces']} recorded trace(s), "
              f"{stats['total_bytes'] / 1e3:.1f} kB in {stats['path']}")
        return 0

    if args.trace_command == "show":
        prefix = args.id.strip()
        try:
            trace_id = traces.resolve(prefix)
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 2
        if trace_id is None:
            print(f"no recorded trace matches {args.id!r} in {traces.path}",
                  file=sys.stderr)
            return 2
        spans = traces.read(trace_id)
        if args.format == "json":
            # The same shape GET /trace/<id> serves, canonical bytes.
            sys.stdout.write(canonical_json({
                "trace": trace_id,
                "count": len(spans),
                "spans": spans,
            }))
            return 0
        print(f"trace {trace_id}  {len(spans)} span(s)")
        depths = _span_depths(spans)
        for span in spans:
            attrs = span.get("attrs") or {}
            attr_text = " ".join(f"{name}={value!r}" for name, value
                                 in sorted(attrs.items()))
            print(f"{'  ' * depths.get(span.get('span'), 0)}"
                  f"{span.get('name', '?')}  "
                  f"[{span.get('service', '?')}]  "
                  f"{float(span.get('duration_s', 0.0)) * 1e3:10.3f} ms"
                  f"{'  ' + attr_text if attr_text else ''}")
        return 0
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


def _install_service_signal_handlers() -> None:
    """SIGINT/SIGTERM → KeyboardInterrupt for long-lived commands.

    Non-interactive shells start backgrounded children with SIGINT set
    to SIG_IGN, and Python then never installs its KeyboardInterrupt
    handler — `kill -INT` on a `serve &` would be silently ignored.  A
    long-lived process must be stoppable, so re-install the default
    handler; SIGTERM (the service-manager spelling of "stop") takes the
    same clean-shutdown path.
    """
    import signal

    def _raise_interrupt(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGINT, signal.default_int_handler)
    signal.signal(signal.SIGTERM, _raise_interrupt)


def _cmd_serve(args) -> int:
    if args.jobs < 0:
        print("--jobs must be >= 0 (0 = fleet workers only)",
              file=sys.stderr)
        return 2
    if args.lease_ttl <= 0:
        print("--lease-ttl must be > 0", file=sys.stderr)
        return 2

    from repro.serve.http import build_server

    _install_service_signal_handlers()

    try:
        server = build_server(
            host=args.host,
            port=args.port,
            store_dir=_resolve_store_dir(args.store),
            cache_dir=_resolve_cache_dir(args.cache_dir, args.no_cache),
            workers=args.jobs,
            quiet=args.quiet,
            lease_ttl=args.lease_ttl,
            circuit_dir=args.circuit_dir,
            trace_dir=args.trace_dir,
        )
    except OSError as error:
        # Port in use, privileged port, unresolvable host: one stderr
        # line and the conventional CLI failure status, not a traceback.
        print(f"cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    # The FIRST stderr line, flushed, machine-parseable: with --port 0
    # the kernel picked the port, and test/smoke scripts read it from
    # here instead of racing each other for fixed port numbers.
    print(f"[serve] listening on http://{host}:{port}", file=sys.stderr,
          flush=True)
    print(f"[serving experiments on http://{host}:{port} — "
          f"store {server.app.store.path}, "
          f"{args.jobs} local job worker(s)"
          f"{' (fleet workers only)' if args.jobs == 0 else ''}; "
          "endpoints: /experiments /results/<key> /run /jobs/<id> "
          "/sweeps[/<id>[/stream]] /circuits[/<digest>] "
          "/metrics /healthz "
          "/fleet/claim|heartbeat|complete"
          f"{' /trace[/<id>]' if args.trace_dir is not None else ''}; "
          "stop with Ctrl-C]", file=sys.stderr)
    try:
        server.serve_forever()
    finally:
        # Runs on Ctrl-C too: stop accepting connections, drain the job
        # queue, and only then let the KeyboardInterrupt propagate to
        # main()'s exit-code handler.
        server.close()
    return 0


def _cmd_worker(args) -> int:
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if not args.server.startswith(("http://", "https://")):
        print(f"--server must be an http(s) URL, got {args.server!r}",
              file=sys.stderr)
        return 2
    import threading

    from repro.exec.cache import CompileCache
    from repro.fleet.worker import FleetWorker, default_worker_id

    _install_service_signal_handlers()

    # One shared compile cache + result store per process; each job
    # still executes under its own read-through Session, mirroring the
    # server's in-process job queue exactly.  Point --store at the same
    # directory the server serves (shared filesystem) and results are
    # visible to every node the moment they land.
    cache = CompileCache(_resolve_cache_dir(args.cache_dir, args.no_cache))
    store = ResultStore(_resolve_store_dir(args.store))
    # One local circuit store per worker process: digests a job names
    # but this node lacks are fetched from the server once, then served
    # from here (content-addressed, so cross-node sharing is safe).
    circuits = CircuitStore(_resolve_circuit_dir(args.circuit_dir))

    def session_factory():
        return Session(jobs=1, cache=cache, store=store, circuits=circuits)

    stop = threading.Event()
    workers = []
    for slot in range(args.jobs):
        if args.id is not None:
            worker_id = args.id if args.jobs == 1 else f"{args.id}-{slot}"
        else:
            worker_id = default_worker_id(slot if args.jobs > 1 else None)
        workers.append(FleetWorker(
            args.server, session_factory, worker_id=worker_id,
            poll_interval=args.poll, claim_delay=args.claim_delay,
            quiet=args.quiet, stop_event=stop,
        ))
    print(f"[worker] {len(workers)} claim loop(s) polling {args.server} — "
          f"store {store.path}, cache {cache.path or 'memory'}; "
          "stop with Ctrl-C]", file=sys.stderr, flush=True)
    threads = [
        threading.Thread(target=worker.run, daemon=True,
                         kwargs={"max_jobs": args.max_jobs},
                         name=f"repro-fleet-claim-{worker.worker_id}")
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    try:
        # Ctrl-C lands here; daemon claim loops die with the process
        # and any leased job is reclaimed by the server after ttl.
        for thread in threads:
            while thread.is_alive():
                thread.join(timeout=0.2)
    finally:
        stop.set()
    done = sum(worker.jobs_done for worker in workers)
    print(f"[worker] drained: {done} job(s) completed", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures and extensions.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment",
        help="an experiment name (see 'list'), or 'all'",
    )
    run_parser.add_argument(
        "--quick", action="store_true",
        help="reduced parameters for a fast smoke run",
    )
    run_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="text: the figure's rendered rows/series (default); "
             "json: the schema-stable ExperimentResult envelope "
             "(for 'all': one object mapping name -> envelope)",
    )
    run_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the result to FILE instead of stdout",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep grids (default 1; output is "
             "identical at any N whenever the on-disk cache is enabled "
             "— see README for the --no-cache caveat)",
    )
    run_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent compile-cache directory (default: "
             "$REPRO_CACHE_DIR, else ~/.cache/repro/compile)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk compile cache (memory-only)",
    )
    run_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent result store: replay a previously stored run "
             "instead of recomputing, persist fresh results",
    )
    run_parser.add_argument(
        "--force", action="store_true",
        help="with --store: recompute even on a store hit and refresh "
             "the stored entry",
    )
    run_parser.add_argument(
        "--circuit", default=None, metavar="FILE",
        help="ingest FILE (OpenQASM 2.0) into the circuit store and run "
             "the experiment against its circuit:<digest> reference "
             "(the experiment must declare exactly one circuit "
             "parameter, e.g. workload-metrics)",
    )
    run_parser.add_argument(
        "--circuit-dir", default=None, metavar="DIR",
        help="content-addressed circuit-store directory (default: "
             "$REPRO_CIRCUIT_DIR, else ~/.cache/repro/circuits)",
    )
    run_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="record an end-to-end trace of this run into DIR "
             "(append-only JSONL; browse with `trace show`); stdout "
             "stays byte-identical with tracing on or off",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a parameter grid over one experiment")
    sweep_parser.add_argument(
        "experiment", help="an experiment name (see 'list')",
    )
    sweep_parser.add_argument(
        "--axis", action="append", metavar="NAME=V1,V2,...",
        help="one grid dimension: a parameter name and its comma-"
             "separated values (repeatable; values parse as Python "
             "literals, falling back to strings)",
    )
    sweep_parser.add_argument(
        "--set", action="append", metavar="NAME=VALUE",
        help="fix a parameter to one value across every cell "
             "(repeatable)",
    )
    sweep_parser.add_argument(
        "--quick", action="store_true",
        help="apply the experiment's reduced-parameter preset under "
             "the grid",
    )
    sweep_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="text: per-cell figure text under cell headers (default); "
             "json: the schema-versioned SweepResult envelope",
    )
    sweep_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the sweep payload to FILE instead of stdout",
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for each cell's task grid (local runs "
             "only; default 1)",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent compile-cache directory (default: "
             "$REPRO_CACHE_DIR, else ~/.cache/repro/compile)",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk compile cache (memory-only)",
    )
    sweep_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent result store: cells replay from stored "
             "envelopes and fresh cells persist (local runs only)",
    )
    sweep_parser.add_argument(
        "--server", default=None, metavar="URL",
        help="submit the sweep to a running `repro serve` endpoint and "
             "stream per-cell results instead of executing locally",
    )
    sweep_parser.add_argument(
        "--force", action="store_true",
        help="recompute every cell even when a stored result exists",
    )
    sweep_parser.add_argument(
        "--circuit-dir", default=None, metavar="DIR",
        help="circuit-store directory circuit:<digest> references "
             "resolve from (local runs only; default: "
             "$REPRO_CIRCUIT_DIR, else ~/.cache/repro/circuits)",
    )
    sweep_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="record one end-to-end trace of the sweep into DIR; with "
             "--server, spans export to the server's trace store "
             "instead (POST /trace) and DIR is not written",
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or shrink the on-disk compile cache")
    cache_dir_parent = argparse.ArgumentParser(add_help=False)
    cache_dir_parent.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR, else "
             "~/.cache/repro/compile)",
    )
    cache_sub = cache_parser.add_subparsers(
        dest="cache_command", required=True)
    cache_sub.add_parser("stats", parents=[cache_dir_parent],
                         help="entry count and total size")
    cache_sub.add_parser("clear", parents=[cache_dir_parent],
                         help="delete every persisted entry")
    prune_parser = cache_sub.add_parser(
        "prune", parents=[cache_dir_parent],
        help="evict least-recently-used entries over a size cap")
    prune_parser.add_argument(
        "--max-size", type=float, required=True, metavar="MB",
        help="target size of the disk tier, in megabytes",
    )

    circuits_parser = subparsers.add_parser(
        "circuits",
        help="manage the content-addressed circuit store")
    circuit_dir_parent = argparse.ArgumentParser(add_help=False)
    circuit_dir_parent.add_argument(
        "--circuit-dir", default=None, metavar="DIR",
        help="circuit-store directory (default: $REPRO_CIRCUIT_DIR, "
             "else ~/.cache/repro/circuits)",
    )
    circuits_sub = circuits_parser.add_subparsers(
        dest="circuits_command", required=True)
    circuits_add = circuits_sub.add_parser(
        "add", parents=[circuit_dir_parent],
        help="ingest an OpenQASM 2.0 file; prints circuit:<digest> "
             "(idempotent)")
    circuits_add.add_argument("file", help="path to an OpenQASM 2.0 file")
    circuits_add.add_argument(
        "--server", default=None, metavar="URL",
        help="upload to a running `repro serve` endpoint "
             "(POST /circuits) instead of the local store",
    )
    circuits_sub.add_parser(
        "ls", parents=[circuit_dir_parent],
        help="list stored circuits (digest, size)")
    circuits_show = circuits_sub.add_parser(
        "show", parents=[circuit_dir_parent],
        help="print one stored circuit's canonical QASM by digest "
             "(unique prefixes accepted)")
    circuits_show.add_argument(
        "digest", help="circuit digest or circuit:<digest>, or a unique "
                       "prefix of one")

    store_parser = subparsers.add_parser(
        "store", help="inspect or shrink the persistent result store")
    store_dir_parent = argparse.ArgumentParser(add_help=False)
    store_dir_parent.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="result-store directory (default: $REPRO_STORE_DIR, else "
             "~/.cache/repro/results)",
    )
    store_sub = store_parser.add_subparsers(
        dest="store_command", required=True)
    ls_parser = store_sub.add_parser(
        "ls", parents=[store_dir_parent],
        help="list stored results (key, experiment, size)")
    ls_parser.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="instead of the entry listing, show the last N runs from "
             "the ledger (bounded read — safe on a huge store)",
    )
    show_parser = store_sub.add_parser(
        "show", parents=[store_dir_parent],
        help="print one stored result by key (unique prefixes accepted)")
    show_parser.add_argument("key", help="store key, or a unique prefix")
    show_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="text: the decoded figure text (default); json: the stored "
             "envelope, byte-identical to `run --format json`",
    )
    gc_parser = store_sub.add_parser(
        "gc", parents=[store_dir_parent],
        help="evict least-recently-used results over a size cap")
    gc_parser.add_argument(
        "--max-size", type=float, required=True, metavar="MB",
        help="target size of the stored entries, in megabytes",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="serve experiments over HTTP (see repro.serve)")
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8000, metavar="P",
        help="listen port (default 8000; 0 picks an ephemeral port)",
    )
    serve_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="result-store directory served from and persisted into "
             "(default: $REPRO_STORE_DIR, else ~/.cache/repro/results)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="concurrent experiment jobs (queue worker threads; each "
             "job's sweep grid runs inline; 0 = no local execution, "
             "jobs wait for fleet workers)",
    )
    serve_parser.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="S",
        help="seconds a fleet worker's job lease survives without a "
             "heartbeat before the job is reclaimed (default 15)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="compile-cache directory shared by all jobs (default: "
             "$REPRO_CACHE_DIR, else ~/.cache/repro/compile)",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk compile cache (memory-only)",
    )
    serve_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-request access log on stderr",
    )
    serve_parser.add_argument(
        "--circuit-dir", default=None, metavar="DIR",
        help="circuit-store directory uploads land in and digest "
             "references resolve from (default: <store>/circuits)",
    )
    serve_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="enable end-to-end tracing: request/queue/execution spans "
             "(and spans exported by clients and fleet workers) land "
             "in DIR, browsable via GET /trace/<id> and `trace show`",
    )

    trace_parser = subparsers.add_parser(
        "trace", help="browse recorded traces (see repro.obs)")
    trace_dir_parent = argparse.ArgumentParser(add_help=False)
    trace_dir_parent.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="trace directory (default: $REPRO_TRACE_DIR, else "
             "~/.cache/repro/traces)",
    )
    trace_sub = trace_parser.add_subparsers(
        dest="trace_command", required=True)
    trace_sub.add_parser(
        "ls", parents=[trace_dir_parent],
        help="list recorded traces (id, span count, root span)")
    trace_show = trace_sub.add_parser(
        "show", parents=[trace_dir_parent],
        help="print one trace's spans as an indented tree "
             "(unique id prefixes accepted)")
    trace_show.add_argument(
        "id", help="trace id, or a unique prefix of one")
    trace_show.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="text: indented span tree (default); json: the same "
             "payload GET /trace/<id> serves",
    )

    worker_parser = subparsers.add_parser(
        "worker",
        help="join a serve endpoint's worker fleet (see repro.fleet)")
    worker_parser.add_argument(
        "--server", required=True, metavar="URL",
        help="the serve endpoint to pull jobs from "
             "(e.g. http://127.0.0.1:8000)",
    )
    worker_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="concurrent claim loops in this process (default 1; each "
             "claimed job's sweep grid runs inline)",
    )
    worker_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="result-store directory results are persisted into — point "
             "it at the server's store (shared filesystem) so replays "
             "are free fleet-wide (default: $REPRO_STORE_DIR, else "
             "~/.cache/repro/results)",
    )
    worker_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="compile-cache directory shared by this worker's jobs "
             "(default: $REPRO_CACHE_DIR, else ~/.cache/repro/compile)",
    )
    worker_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk compile cache (memory-only)",
    )
    worker_parser.add_argument(
        "--circuit-dir", default=None, metavar="DIR",
        help="local circuit-store directory; digests a claimed job "
             "names but this store lacks are fetched from the server "
             "and cached here (default: $REPRO_CIRCUIT_DIR, else "
             "~/.cache/repro/circuits)",
    )
    worker_parser.add_argument(
        "--poll", type=float, default=0.5, metavar="S",
        help="idle-claim poll interval in seconds (default 0.5)",
    )
    worker_parser.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after each claim loop completes N jobs "
             "(default: run until stopped)",
    )
    worker_parser.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker id reported to the server (default: host-pid)",
    )
    worker_parser.add_argument(
        "--claim-delay", type=float, default=0.0, metavar="S",
        help="sleep S seconds between claiming a job and executing it — "
             "fault-injection aid for fleet drills (kill a worker that "
             "holds a lease but has not finished)",
    )
    worker_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-job log on stderr",
    )
    args = parser.parse_args(argv)

    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "circuits":
            return _cmd_circuits(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "worker":
            return _cmd_worker(args)
        return _cmd_run(args)
    except KeyboardInterrupt:
        # The engine has already cancelled its workers and reclaimed
        # cache temp files by the time the interrupt reaches here;
        # exit with the conventional SIGINT status instead of a
        # traceback.
        print("[interrupted]", file=sys.stderr)
        return 130


def _print_cache_stats(session: Session, before=None) -> None:
    stats = session.cache_stats()
    if before is not None:
        # Attribute exactly this batch of runs: a long-lived (library)
        # session may arrive with counters from earlier work, and those
        # must not be re-reported here.
        stats = {field: stats[field] - before.get(field, 0)
                 for field in ("memory_hits", "disk_hits", "misses")}
    where = session.cache.path or "memory only"
    # The counters are this run's parent-process activity under the
    # session actually activated for the run (never the process default
    # session); with --jobs > 1 most compiles (and their cache hits)
    # happen inside workers, whose counters die with the worker
    # processes.
    print(f"[compile cache ({where}), this run: "
          f"{stats['memory_hits']} memory hits, "
          f"{stats['disk_hits']} disk hits, {stats['misses']} misses]",
          file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
