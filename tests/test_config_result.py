"""Tests for CompilerConfig validation and CompiledProgram details."""

import pytest

from repro.circuits import Circuit
from repro.circuits.gates import cx, h
from repro.core import CompilerConfig, compile_circuit
from repro.core.result import ScheduledOp
from repro.core.errors import SchedulingStalledError
from repro.core.scheduler import schedule_circuit
from repro.hardware import NoiseModel, Topology
from repro.workloads import bernstein_vazirani


class TestConfigValidation:
    def test_defaults_valid(self):
        config = CompilerConfig()
        assert config.max_interaction_distance == 3.0
        assert not config.decompose_to_two_qubit

    @pytest.mark.parametrize("kwargs", [
        dict(max_interaction_distance=0.5),
        dict(restriction_radius="bogus"),
        dict(native_max_arity=1),
        dict(lookahead_layers=0),
        dict(lookahead_decay=0.0),
        dict(swap_depth_cost=0),
        dict(zone_scale=-1.0),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CompilerConfig(**kwargs)

    def test_variants(self):
        config = CompilerConfig()
        assert config.with_mid(5.0).max_interaction_distance == 5.0
        assert config.without_zones().restriction_model().disabled
        assert config.decomposed().decompose_to_two_qubit

    def test_sc_like_preset(self):
        config = CompilerConfig.superconducting_like()
        assert config.max_interaction_distance == 1.0
        assert config.restriction_model().disabled
        assert config.native_max_arity == 2

    def test_frozen(self):
        config = CompilerConfig()
        with pytest.raises(Exception):
            config.lookahead_layers = 5


class TestScheduledOp:
    def test_swap_op(self):
        op = ScheduledOp(gate=None, sites=(3, 4), timestep=2)
        assert op.is_swap
        assert op.name == "swap"
        assert op.arity == 2
        assert "swap" in str(op)

    def test_gate_op(self):
        op = ScheduledOp(gate=cx(0, 1), sites=(5, 6), timestep=0,
                         source_index=3)
        assert not op.is_swap
        assert op.name == "cx"
        assert op.source_index == 3


class TestCompiledProgramDetails:
    @pytest.fixture(scope="class")
    def program(self):
        return compile_circuit(
            bernstein_vazirani(6),
            Topology.square(3, 1.0),
            CompilerConfig.superconducting_like(),
        )

    def test_physical_circuit_width(self, program):
        physical = program.to_physical_circuit()
        assert physical.num_qubits == 9

    def test_compile_seconds_recorded(self, program):
        assert program.compile_seconds > 0

    def test_depth_charges_swaps_triple(self, program):
        # With swap_depth_cost=3, depth >= timesteps when swaps exist.
        if program.swap_count:
            assert program.depth() > len(program.schedule)

    def test_success_rate_between_zero_and_one(self, program):
        rate = program.success_rate(NoiseModel.neutral_atom())
        assert 0.0 < rate < 1.0

    def test_repr(self, program):
        assert "CompiledProgram" in repr(program)


class TestSchedulerGuards:
    def test_non_injective_mapping_rejected(self):
        circuit = Circuit(2, [cx(0, 1)])
        topo = Topology.square(2, 1.0)
        with pytest.raises(ValueError):
            schedule_circuit(circuit, topo,
                             CompilerConfig(max_interaction_distance=1.0),
                             {0: 0, 1: 0})

    def test_stall_guard_trips(self):
        # A gate between two disconnected islands, fed directly to the
        # scheduler with a pathological mapping, must raise rather than
        # loop forever.
        topo = Topology.square(3, 1.0)
        for site in (1, 4, 7):
            topo.remove_atom(site)
        circuit = Circuit(2, [cx(0, 1)])
        config = CompilerConfig(max_interaction_distance=1.0,
                                max_timestep_factor=5)
        with pytest.raises(Exception) as exc_info:
            schedule_circuit(circuit, topo, config, {0: 0, 1: 2})
        assert isinstance(
            exc_info.value, (SchedulingStalledError, RuntimeError)
        )
