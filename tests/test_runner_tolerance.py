"""Integration tests for the shot runner and tolerance sweeps (§VI)."""

import pytest

from repro.core import CompilerConfig
from repro.hardware import LossModel, NoiseModel, TimingModel, Topology
from repro.loss import (
    ShotRunner,
    make_strategy,
    max_loss_tolerance,
    render_timeline,
    totals_by_kind,
)
from repro.loss.timeline import TimelineEvent
from repro.workloads import build_circuit

NOISE = NoiseModel.neutral_atom()


def runner_for(strategy_name, mid=4.0, loss_model=None, rng=0, side=10,
               size=20):
    return ShotRunner(
        make_strategy(strategy_name, noise=NOISE),
        build_circuit("cnu", size),
        Topology.square(side, mid),
        config=CompilerConfig(max_interaction_distance=mid),
        noise=NOISE,
        loss_model=loss_model or LossModel.lossless_readout(),
        timing=TimingModel.paper_defaults(),
        rng=rng,
    )


class TestTimelineEvents:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            TimelineEvent("nonsense", 0.0, 1.0)
        with pytest.raises(ValueError):
            TimelineEvent("run", -1.0, 1.0)

    def test_totals(self):
        events = [TimelineEvent("run", 0.0, 1.0),
                  TimelineEvent("reload", 1.0, 0.3),
                  TimelineEvent("run", 1.3, 1.0)]
        totals = totals_by_kind(events)
        assert totals["run"] == pytest.approx(2.0)
        assert totals["reload"] == pytest.approx(0.3)

    def test_render_nonempty(self):
        events = [TimelineEvent("compile", 0.0, 0.1),
                  TimelineEvent("run", 0.1, 0.5)]
        text = render_timeline(events, width=20)
        assert "C" in text and "r" in text

    def test_render_empty(self):
        assert "empty" in render_timeline([])


class TestShotRunner:
    def test_no_loss_all_shots_succeed(self):
        runner = runner_for("virtual remapping", loss_model=LossModel.none())
        result = runner.run(max_shots=20)
        assert result.shots_attempted == 20
        assert result.shots_successful == 20
        assert result.reload_count == 0
        assert result.interfering_losses == 0

    def test_certain_loss_no_shot_succeeds(self):
        lossy = LossModel(vacuum_loss=0.9, measurement_loss=0.9)
        runner = runner_for("always reload", loss_model=lossy, rng=3)
        result = runner.run(max_shots=10)
        assert result.shots_successful < result.shots_attempted
        assert result.reload_count > 0

    def test_target_successful_stops_early(self):
        runner = runner_for("virtual remapping", loss_model=LossModel.none())
        result = runner.run(max_shots=100, target_successful=5)
        assert result.shots_successful == 5
        assert result.shots_attempted == 5

    def test_timeline_accounts_every_second(self):
        runner = runner_for("c. small+reroute", rng=5)
        result = runner.run(max_shots=40)
        by_kind = result.time_by_kind()
        assert sum(by_kind.values()) == pytest.approx(result.total_time)
        # Fluorescence is charged once per shot.
        assert by_kind["fluorescence"] == pytest.approx(
            result.shots_attempted * 6e-3
        )

    def test_reload_restores_full_array(self):
        runner = runner_for("always reload", rng=2)
        result = runner.run(max_shots=60)
        if result.reload_count:
            assert runner.topology.num_active + len(
                # Whatever was lost after the last reload is still gone;
                # everything before it was restored.
                runner.topology.lost_sites
            ) == runner.topology.grid.num_sites

    def test_adaptive_beats_always_reload(self):
        reload_result = runner_for("always reload", rng=11).run(max_shots=150)
        remap_result = runner_for("c. small+reroute", rng=11).run(max_shots=150)
        assert remap_result.reload_count < reload_result.reload_count
        assert remap_result.overhead_time < reload_result.overhead_time

    def test_expected_successes_bounded(self):
        result = runner_for("reroute", rng=4).run(max_shots=30)
        assert 0.0 <= result.expected_successes <= result.shots_successful

    def test_shots_between_reloads_tracks_segments(self):
        result = runner_for("virtual remapping", rng=9).run(max_shots=80)
        assert sum(result.shots_between_reloads) == result.shots_successful
        assert len(result.shots_between_reloads) == result.reload_count + 1

    def test_improvement_factor_extends_runs(self):
        base = runner_for("c. small+reroute", rng=21).run(max_shots=200)
        better = runner_for(
            "c. small+reroute",
            loss_model=LossModel.lossless_readout(improvement_factor=10.0),
            rng=21,
        ).run(max_shots=200)
        assert better.reload_count <= base.reload_count

    def test_recompile_time_override(self):
        timing = TimingModel(recompile_time=2.0)
        runner = ShotRunner(
            make_strategy("recompile", noise=NOISE),
            build_circuit("cnu", 12),
            Topology.square(6, 3.0),
            config=CompilerConfig(max_interaction_distance=3.0),
            noise=NOISE,
            loss_model=LossModel(vacuum_loss=0.2, measurement_loss=0.2),
            timing=timing,
            rng=1,
        )
        result = runner.run(max_shots=10)
        by_kind = result.time_by_kind()
        if result.interfering_losses:
            # Each recompile charged at the overridden 2 s.
            assert by_kind["compile"] >= 2.0


class TestTolerance:
    def test_recompile_tolerates_most(self):
        circuit = build_circuit("cnu", 20)
        results = {}
        for name in ("virtual remapping", "recompile"):
            results[name] = max_loss_tolerance(
                make_strategy(name, noise=NOISE), circuit, 8, 3.0,
                trials=2, rng=0,
            )
        assert (results["recompile"].mean_fraction
                > results["virtual remapping"].mean_fraction)

    def test_tolerance_grows_with_mid(self):
        circuit = build_circuit("cnu", 20)
        fractions = []
        for mid in (2.0, 4.0):
            result = max_loss_tolerance(
                make_strategy("virtual remapping"), circuit, 8, mid,
                trials=3, rng=1,
            )
            fractions.append(result.mean_fraction)
        assert fractions[1] > fractions[0]

    def test_result_statistics(self):
        circuit = build_circuit("cnu", 12)
        result = max_loss_tolerance(
            make_strategy("virtual remapping"), circuit, 6, 3.0,
            trials=4, rng=2,
        )
        assert len(result.losses_sustained) == 4
        assert 0.0 <= result.mean_fraction <= 1.0
        assert result.std_fraction >= 0.0
