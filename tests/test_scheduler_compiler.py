"""Integration tests for the scheduler and the top-level compiler."""

import pytest

from repro.circuits import Circuit
from repro.circuits.gates import ccx, cx, h, x
from repro.core import (
    CompilationError,
    CompilerConfig,
    check_compiled,
    compile_circuit,
    max_native_arity_for_distance,
)
from repro.core.errors import DisconnectedTopologyError
from repro.hardware import Grid, Topology
from repro.workloads import bernstein_vazirani, build_circuit, cuccaro_adder


def compile_on(circuit, side, mid, **config_kwargs):
    topo = Topology.square(side, mid)
    config = CompilerConfig(max_interaction_distance=mid, **config_kwargs)
    return compile_circuit(circuit, topo, config)


class TestScheduleInvariants:
    def test_all_source_gates_scheduled_once(self):
        program = compile_on(bernstein_vazirani(6), 3, 1.0,
                             restriction_radius="none", native_max_arity=2)
        source_indices = [op.source_index for op in program.ops
                          if not op.is_swap]
        assert sorted(source_indices) == list(range(len(program.source)))

    def test_ops_within_interaction_distance(self):
        program = compile_on(build_circuit("qaoa", 9), 3, 2.0)
        topo = Topology.square(3, 2.0)
        for op in program.ops:
            for i in range(len(op.sites)):
                for j in range(i + 1, len(op.sites)):
                    assert topo.distance(op.sites[i], op.sites[j]) <= 2.0 + 1e-9

    def test_no_site_reuse_within_timestep(self):
        program = compile_on(build_circuit("cnu", 8), 3, 2.0)
        for timestep in program.schedule:
            seen = set()
            for op in timestep:
                assert not (set(op.sites) & seen)
                seen.update(op.sites)

    def test_zones_disjoint_within_timestep(self):
        program = compile_on(build_circuit("qft-adder", 8), 3, 2.0)
        model = program.config.restriction_model()
        grid = Grid(3, 3)
        for timestep in program.schedule:
            for i in range(len(timestep)):
                for j in range(i + 1, len(timestep)):
                    a = [grid.position(s) for s in timestep[i].sites]
                    b = [grid.position(s) for s in timestep[j].sites]
                    assert not model.conflict(a, b)

    def test_final_layout_consistent_with_swaps(self):
        program = compile_on(bernstein_vazirani(6), 3, 1.0,
                             restriction_radius="none", native_max_arity=2)
        # Replay the swaps over the initial layout.
        site_of = dict(program.initial_layout)
        inverse = {s: q for q, s in site_of.items()}
        for op in program.ops:
            if not op.is_swap:
                continue
            a, b = op.sites
            qa, qb = inverse.pop(a, None), inverse.pop(b, None)
            if qa is not None:
                site_of[qa] = b
                inverse[b] = qa
            if qb is not None:
                site_of[qb] = a
                inverse[a] = qb
        assert site_of == program.final_layout


class TestSemanticEquivalence:
    @pytest.mark.parametrize("mid", [1.0, 2.0])
    def test_bv_equivalent(self, mid):
        config = dict(native_max_arity=2)
        if mid == 1.0:
            config["restriction_radius"] = "none"
        program = compile_on(bernstein_vazirani(6), 3, mid, **config)
        assert check_compiled(program)

    def test_cuccaro_native_equivalent(self):
        program = compile_on(cuccaro_adder(2), 3, 2.0)
        assert check_compiled(program)

    def test_cnu_equivalent(self):
        program = compile_on(build_circuit("cnu", 8), 3, 2.0)
        assert check_compiled(program)

    def test_qaoa_equivalent(self):
        program = compile_on(build_circuit("qaoa", 6), 3, 2.0)
        assert check_compiled(program)

    def test_qft_adder_equivalent(self):
        program = compile_on(build_circuit("qft-adder", 6), 3, 2.0)
        assert check_compiled(program)

    def test_equivalence_on_rectangular_grid(self):
        topo = Topology(Grid(3, 4), 2.0)
        program = compile_circuit(
            bernstein_vazirani(7), topo,
            CompilerConfig(max_interaction_distance=2.0),
        )
        assert check_compiled(program)


class TestCompilerPolicies:
    def test_native_arity_by_distance(self):
        assert max_native_arity_for_distance(1.0) == 2
        assert max_native_arity_for_distance(1.5) == 4
        assert max_native_arity_for_distance(3.0) == 8

    def test_toffoli_decomposed_at_mid_1(self):
        program = compile_on(Circuit(3, [ccx(0, 1, 2)]), 3, 1.0,
                             native_max_arity=3)
        assert all(len(op.sites) <= 2 for op in program.ops)

    def test_toffoli_native_at_mid_2(self):
        program = compile_on(Circuit(3, [ccx(0, 1, 2)]), 3, 2.0,
                             native_max_arity=3)
        arities = [len(op.sites) for op in program.ops if not op.is_swap]
        assert 3 in arities

    def test_config_mid_follows_topology(self):
        topo = Topology.square(3, 2.0)
        program = compile_circuit(
            Circuit(2, [cx(0, 1)]), topo,
            CompilerConfig(max_interaction_distance=5.0),
        )
        assert program.config.max_interaction_distance == 2.0

    def test_too_large_program_rejected(self):
        with pytest.raises(CompilationError):
            compile_on(bernstein_vazirani(20), 3, 1.0)

    def test_disconnected_topology_raises(self):
        topo = Topology.square(3, 1.0)
        for site in (1, 4, 7):
            topo.remove_atom(site)
        circuit = Circuit(4, [cx(0, 1), cx(2, 3), cx(0, 3), cx(1, 2)])
        with pytest.raises(CompilationError):
            compile_circuit(circuit, topo,
                            CompilerConfig(max_interaction_distance=1.0))

    def test_compile_on_holey_but_connected(self):
        topo = Topology.square(4, 2.0)
        for site in (5, 10):
            topo.remove_atom(site)
        program = compile_circuit(
            bernstein_vazirani(8), topo,
            CompilerConfig(max_interaction_distance=2.0),
        )
        lost = topo.lost_sites
        for op in program.ops:
            assert not (set(op.sites) & lost)


class TestMetricsTrends:
    def test_gate_count_decreases_with_mid(self):
        circuit = bernstein_vazirani(20)
        counts = []
        for mid in (1.0, 2.0, 3.0):
            program = compile_on(circuit, 5, mid, native_max_arity=2)
            counts.append(program.gate_count())
        assert counts[0] >= counts[1] >= counts[2]

    def test_full_connectivity_needs_no_swaps(self):
        circuit = bernstein_vazirani(16)
        program = compile_on(circuit, 4, 4.25, native_max_arity=2)
        assert program.swap_count == 0
        assert program.gate_count() == len(circuit)

    def test_gate_count_identity(self):
        program = compile_on(bernstein_vazirani(10), 4, 1.0,
                             restriction_radius="none", native_max_arity=2)
        assert program.gate_count() == (
            program.op_count + 2 * program.swap_count
        )

    def test_counts_by_arity_includes_swaps(self):
        program = compile_on(bernstein_vazirani(10), 4, 1.0,
                             restriction_radius="none", native_max_arity=2)
        counts = program.counts_by_arity()
        source_2q = sum(1 for g in program.source if g.arity == 2)
        assert counts[2] == source_2q + 3 * program.swap_count

    def test_depth_at_least_critical_path(self):
        program = compile_on(build_circuit("cuccaro", 8), 3, 2.0)
        assert program.depth() >= program.source.depth()

    def test_duration_positive_and_scales(self):
        from repro.hardware import NoiseModel
        noise = NoiseModel.neutral_atom()
        small = compile_on(bernstein_vazirani(5), 3, 2.0)
        large = compile_on(bernstein_vazirani(9), 3, 2.0)
        assert 0 < small.duration(noise) < large.duration(noise)

    def test_zone_serialization_increases_depth(self):
        circuit = build_circuit("qft-adder", 16)
        zoned = compile_on(circuit, 5, 4.0, restriction_radius="half",
                           native_max_arity=2)
        ideal = compile_on(circuit, 5, 4.0, restriction_radius="none",
                           native_max_arity=2)
        assert zoned.depth() >= ideal.depth()

    def test_used_and_measured_sites(self):
        program = compile_on(bernstein_vazirani(6), 3, 2.0)
        used = program.used_sites()
        assert set(program.initial_layout.values()) <= used
        assert program.measured_sites() == set(program.final_layout.values())

    def test_summary_keys(self):
        program = compile_on(bernstein_vazirani(5), 3, 2.0)
        summary = program.summary()
        assert {"qubits", "mid", "ops", "gates", "swaps", "depth",
                "timesteps"} <= set(summary)
