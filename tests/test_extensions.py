"""Tests for the ablation/extension experiments and the CLI."""

import pytest

from repro.__main__ import main as cli_main
from repro.experiments import (
    ablation_lookahead,
    ablation_zones,
    ext_device_scaling,
    ext_ejection_readout,
    ext_validation_noisy,
)


class TestZoneAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_zones.run(benchmarks=("qaoa",), program_size=20,
                                  mid=4.0)

    def test_depth_monotone_in_radius(self, result):
        none = result.select("qaoa", "none", 1.0).depth
        half = result.select("qaoa", "half", 1.0).depth
        full = result.select("qaoa", "full", 1.0).depth
        assert none <= half <= full

    def test_depth_monotone_in_scale(self, result):
        depths = [result.select("qaoa", "half", s).depth
                  for s in (1.0, 1.5, 2.0)]
        assert depths == sorted(depths)

    def test_gates_unaffected_by_zones(self, result):
        gates = {p.gates for p in result.points}
        # Zones serialize; routing still sees the same connectivity.  The
        # heuristic may shift a swap or two, so allow a tiny spread.
        assert max(gates) - min(gates) <= 0.1 * max(gates)

    def test_format(self, result):
        assert "Zone" in result.format()


class TestLookaheadAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_lookahead.run(program_size=24)

    def test_lookahead_helps_at_mid1(self, result):
        assert result.lookahead_benefit("bv", 1.0) >= 0.0

    def test_lookahead_matters_less_at_long_range(self, result):
        # The paper's claim: dense connectivity makes simple heuristics
        # sufficient — deep lookahead buys less at MID 3 than at MID 1.
        assert (result.lookahead_benefit("bv", 3.0)
                <= result.lookahead_benefit("bv", 1.0) + 1e-9)

    def test_format(self, result):
        assert "Lookahead" in result.format()


class TestEjectionReadout:
    def test_strategies_only_help_small_programs(self):
        result = ext_ejection_readout.run(sizes=(12, 60), shots=40, rng=0)
        small_gain = (result.reloads_per_success(12, "always reload")
                      >= result.reloads_per_success(12, "c. small+reroute"))
        small = result.runs[(12, "c. small+reroute")]
        large = result.runs[(60, "c. small+reroute")]
        # The small program reloads strictly less often than the large one.
        assert small.reload_count < large.reload_count
        assert "Ejection" in result.format()


class TestDeviceScaling:
    def test_saturation_mid_grows_with_device(self):
        result = ext_device_scaling.run(grid_sides=(6, 10))
        assert result.saturation_mid[10] >= result.saturation_mid[6]
        assert "Scaling" in result.format()

    def test_curves_monotone_decreasing(self):
        result = ext_device_scaling.run(grid_sides=(6,))
        gates = [g for _, g in result.curves[6]]
        assert gates == sorted(gates, reverse=True)


class TestNoisyValidation:
    def test_model_agrees_with_sampling(self):
        result = ext_validation_noisy.run(
            benchmarks=("bv",), program_size=6,
            errors=(0.005, 0.02), shots=300,
        )
        assert result.max_gap < 0.1
        assert "Monte-Carlo" in result.format()


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "fig14" in out

    def test_run_quick_validation(self, capsys):
        assert cli_main(["run", "validation", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "all equivalent: True" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["run", "nope"]) == 2
