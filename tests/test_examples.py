"""Integration: every shipped example must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_four_examples_shipped():
    assert len(EXAMPLES) >= 4
    assert any(p.stem == "quickstart" for p in EXAMPLES)
