"""Stream-equivalence suite for the vectorized Monte-Carlo shot kernels.

The vectorized loss sampler (``LossModel.sample_shot_losses`` batching
its uniforms into ``Generator.random(k)`` calls, and the block-buffered
``ShotLossSampler`` the runner uses) must be *bit-identical* to the
historical scalar draw loop: same loss sets, same consumed RNG stream.
The reference scalar loop is kept here, verbatim from the pre-vectorized
implementation, so any divergence in the production kernels fails these
tests rather than silently changing every figure.
"""

import json

import numpy as np
import pytest

from repro.api.serialize import encode
from repro.api.session import install_default
from repro.core.config import CompilerConfig
from repro.exec import engine
from repro.hardware.loss import LossModel, ShotLossSampler
from repro.hardware.timing import TimingModel
from repro.hardware.topology import Topology
from repro.loss.runner import ShotRunner, ShotSpec, run_shot_grid_map
from repro.loss.strategies import STRATEGY_ORDER, make_strategy
from repro.workloads.registry import build_circuit


def reference_scalar_losses(model, all_sites, measured_sites, generator):
    """The pre-vectorization per-site sampling loop, kept verbatim.

    One scalar ``random()`` draw per site with nonzero loss probability,
    in ``all_sites`` iteration order.  This is the RNG-stream contract
    the vectorized kernels promise to preserve.
    """
    lost = set()
    p_vac = model.effective_vacuum_loss
    p_meas = model.effective_measurement_loss
    measured = set(measured_sites)
    for site in all_sites:
        p = p_vac
        if site in measured:
            p = 1.0 - (1.0 - p) * (1.0 - p_meas)
        if p > 0 and generator.random() < p:
            lost.add(site)
    return lost


class ReferenceScalarLoss:
    """Duck-typed loss model routing ShotRunner through the scalar loop."""

    def __init__(self, model):
        self.model = model

    def sample_shot_losses(self, all_sites, measured_sites, rng=None):
        return reference_scalar_losses(
            self.model, all_sites, measured_sites, rng
        )


MODELS = {
    "lossless-readout": LossModel.lossless_readout(),
    "ejection-readout": LossModel.ejection_readout(),
    "vacuum-only": LossModel(vacuum_loss=0.1, measurement_loss=0.0),
    "measurement-only": LossModel(vacuum_loss=0.0, measurement_loss=0.3),
    "none": LossModel.none(),
}

#: Shot scenarios with changing site/measured sets (exercises the
#: sampler's plan-cache invalidation mid-stream).
SHOT_SEQUENCE = [
    (tuple(range(30)), tuple(range(10))),
    (tuple(range(30)), tuple(range(10))),
    (tuple(range(25)), (3, 7, 11)),
    (tuple(range(12)), ()),
    (tuple(range(30)), tuple(range(30))),
    ((), ()),
    (tuple(range(17)), (0, 16)),
]


@pytest.fixture(autouse=True)
def fresh_state():
    saved = install_default(None)
    yield
    install_default(saved)


# -- kernel-level equivalence -------------------------------------------------------


@pytest.mark.parametrize("name", sorted(MODELS))
def test_sample_shot_losses_matches_scalar_stream(name):
    """Same losses AND same generator end state as the scalar loop."""
    model = MODELS[name]
    vec = np.random.default_rng(123)
    ref = np.random.default_rng(123)
    for sites, measured in SHOT_SEQUENCE:
        assert model.sample_shot_losses(sites, measured, rng=vec) == \
            reference_scalar_losses(model, sites, measured, ref)
    # The streams stayed in lockstep through every shot.
    assert vec.random() == ref.random()


@pytest.mark.parametrize("buffered", [False, True])
@pytest.mark.parametrize("name", sorted(MODELS))
def test_shot_loss_sampler_consumed_stream_identity(name, buffered):
    """ShotLossSampler == per-shot scalar loop on the same seed.

    ``block=5`` forces the buffered path through many partial-block
    refills (the carry-over concatenation), not just whole-block reads.
    """
    model = MODELS[name]
    sampler_gen = np.random.default_rng(77)
    ref_gen = np.random.default_rng(77)
    sampler = ShotLossSampler(model, sampler_gen, buffered=buffered, block=5)
    for sites, measured in SHOT_SEQUENCE * 3:
        assert sampler.sample(sites, measured) == \
            reference_scalar_losses(model, sites, measured, ref_gen)
    if not buffered:
        # Unbuffered draws exactly what it consumes, so even the
        # generator end states coincide (buffered intentionally
        # over-draws into its block).
        assert sampler_gen.random() == ref_gen.random()


def test_shot_loss_sampler_duck_typed_model_delegates():
    """Non-LossModel stubs bypass the vectorized plan entirely."""
    stub = ReferenceScalarLoss(MODELS["ejection-readout"])
    sampler = ShotLossSampler(stub, np.random.default_rng(5), buffered=True)
    ref_gen = np.random.default_rng(5)
    for sites, measured in SHOT_SEQUENCE:
        assert sampler.sample(sites, measured) == reference_scalar_losses(
            stub.model, sites, measured, ref_gen
        )


# -- runner-level bit-identity per strategy -----------------------------------------

#: recompile_time pinned so AlwaysRecompile / CompileSmall timelines carry
#: no wall-clock measurements; with include_compile_event=False every
#: RunResult field below is then a pure function of the RNG stream.
TIMING = TimingModel(recompile_time=0.05)


def _run_result(strategy_name, loss_model, seed=11):
    runner = ShotRunner(
        make_strategy(strategy_name),
        build_circuit("bv", 6),
        Topology.square(5, 3.0),
        config=CompilerConfig(max_interaction_distance=3.0),
        loss_model=loss_model,
        timing=TIMING,
        rng=seed,
    )
    return runner.run(max_shots=30, include_compile_event=False)


def _result_bytes(result):
    return json.dumps(encode(result), sort_keys=True).encode()


@pytest.mark.parametrize("model_name",
                         ["lossless-readout", "ejection-readout", "none"])
@pytest.mark.parametrize("strategy", STRATEGY_ORDER + ["always reload"])
def test_runner_bit_identical_to_scalar_reference(strategy, model_name):
    """Full ShotRunner.run through the vectorized (buffered) sampler vs
    the scalar reference loop: byte-identical serialized RunResult."""
    model = MODELS[model_name]
    vectorized = _run_result(strategy, model)
    reference = _run_result(strategy, ReferenceScalarLoss(model))
    assert _result_bytes(vectorized) == _result_bytes(reference)


# -- worker-count invariance through the sweep engine -------------------------------


def _specs():
    return [
        ShotSpec(
            strategy=name,
            benchmark="bv",
            program_size=6,
            grid_side=5,
            mid=3.0,
            max_shots=25,
            seed=0,  # overwritten by the key-derived seed
            timing=TIMING,
            include_compile_event=False,
        )
        for name in ("always reload", "virtual remapping", "recompile")
    ]


def test_run_shot_grid_map_jobs_invariant(tmp_path):
    """jobs=1 and jobs=2 produce byte-identical RunResults."""
    with engine.sweep_settings(jobs=1, cache_dir=str(tmp_path)):
        serial = run_shot_grid_map(_specs(), experiment="shot-kernel-suite")
    with engine.sweep_settings(jobs=2, cache_dir=str(tmp_path)):
        parallel = run_shot_grid_map(_specs(), experiment="shot-kernel-suite")
    assert [_result_bytes(r) for r in serial] == \
        [_result_bytes(r) for r in parallel]
