"""Round-trip tests for the OpenQASM interchange."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, from_qasm, to_qasm
from repro.circuits.gates import ccx, cphase, cx, h, measure, rz, swap
from repro.workloads import bernstein_vazirani, cuccaro_adder, qft_adder


class TestExport:
    def test_header_and_register(self):
        text = to_qasm(Circuit(3, [h(0)]))
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "h q[0];" in text

    def test_parameterized(self):
        text = to_qasm(Circuit(1, [rz(0.5, 0)]))
        assert "rz(0.5)" in text

    def test_cphase_renamed(self):
        text = to_qasm(Circuit(2, [cphase(0.25, 0, 1)]))
        assert "cp(0.25) q[0],q[1];" in text

    def test_measure_has_creg(self):
        text = to_qasm(Circuit(2, [measure(1)]))
        assert "creg c[2];" in text
        assert "measure q[1] -> c[1];" in text


class TestRoundTrip:
    @pytest.mark.parametrize("circuit", [
        Circuit(3, [h(0), cx(0, 1), ccx(0, 1, 2), swap(1, 2)]),
        Circuit(2, [rz(0.125, 0), cphase(1.5, 0, 1)]),
        bernstein_vazirani(6),
        cuccaro_adder(2),
        qft_adder(2),
    ])
    def test_roundtrip_identity(self, circuit):
        assert from_qasm(to_qasm(circuit)) == circuit

    def test_roundtrip_with_measurement(self):
        circuit = Circuit(2, [h(0), measure(0), measure(1)])
        assert from_qasm(to_qasm(circuit)) == circuit


class TestImport:
    def test_comments_and_blankline_skipped(self):
        text = """OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[2];

cx q[0],q[1];  // trailing comment
"""
        circuit = from_qasm(text)
        assert len(circuit) == 1
        assert circuit[0].name == "cx"

    def test_missing_qreg_rejected(self):
        with pytest.raises(ValueError):
            from_qasm("OPENQASM 2.0;\nh q[0];")

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError):
            from_qasm("qreg q[1];\n???;")

    def test_alias_names_normalized(self):
        circuit = from_qasm("qreg q[2];\ncu1(0.5) q[0],q[1];")
        assert circuit[0].name == "cphase"


class TestRoundTripProperty:
    """`from_qasm(to_qasm(c)) == c` over *generated* circuits, not just
    the hand-picked examples above — the interchange contract behind
    content-addressed circuit uploads (the digest of a round-tripped
    circuit must equal the original's)."""

    @st.composite
    @staticmethod
    def circuits(draw, max_qubits=6, max_gates=14):
        num_qubits = draw(st.integers(3, max_qubits))
        gates = []
        for _ in range(draw(st.integers(0, max_gates))):
            kind = draw(st.integers(0, 5))
            qubits = draw(st.lists(st.integers(0, num_qubits - 1),
                                   min_size=3, max_size=3, unique=True))
            angle = draw(st.floats(-6.0, 6.0,
                                   allow_nan=False, allow_infinity=False))
            gates.append([h(qubits[0]),
                          rz(angle, qubits[0]),
                          cx(qubits[0], qubits[1]),
                          ccx(*qubits),
                          swap(qubits[0], qubits[1]),
                          cphase(angle, qubits[0], qubits[1])][kind])
        for qubit in sorted(draw(st.sets(
                st.integers(0, num_qubits - 1), max_size=2))):
            gates.append(measure(qubit))
        return Circuit(num_qubits, gates)

    @given(circuit=circuits())
    @settings(deadline=None, max_examples=60)
    def test_roundtrip_identity(self, circuit):
        assert from_qasm(to_qasm(circuit)) == circuit

    @given(circuit=circuits())
    @settings(deadline=None, max_examples=60)
    def test_export_is_stable_under_reimport(self, circuit):
        # Canonicalization is a projection: one round trip reaches the
        # fixed point, so stored text never churns on re-upload.
        text = to_qasm(circuit)
        assert to_qasm(from_qasm(text)) == text
