"""Tests for the error-analysis layer (Figs 7-8 machinery)."""

import pytest

from repro.analysis import (
    ProgramMetrics,
    calibrate_two_qubit_error,
    clear_cache,
    compare_architectures,
    compiled_metrics,
    error_sweep,
    largest_runnable_size,
    neutral_atom_arch,
    size_curve,
    superconducting_arch,
    valid_sizes,
)
from repro.core import CompilerConfig, compile_circuit
from repro.hardware import NoiseModel, Topology
from repro.workloads import build_circuit

NA = neutral_atom_arch(mid=3.0, grid_side=6, native_max_arity=3)
SC = superconducting_arch(grid_side=6)


class TestProgramMetrics:
    def test_from_program_consistency(self):
        circuit = build_circuit("cuccaro", 10)
        topo = Topology.square(6, 3.0)
        program = compile_circuit(circuit, topo,
                                  CompilerConfig(max_interaction_distance=3.0))
        metrics = ProgramMetrics.from_program(program, benchmark="cuccaro")
        noise = NoiseModel.neutral_atom()
        assert metrics.gate_count == program.gate_count()
        assert metrics.depth == program.depth()
        assert metrics.swap_count == program.swap_count
        assert metrics.arity_counts() == dict(program.counts_by_arity())
        assert metrics.duration(noise) == pytest.approx(program.duration(noise))
        assert metrics.success_rate(noise) == pytest.approx(
            program.success_rate(noise)
        )

    def test_error_rate_complement(self):
        metrics = compiled_metrics("bv", 10, NA)
        noise = NoiseModel.neutral_atom()
        assert metrics.error_rate(noise) == pytest.approx(
            1.0 - metrics.success_rate(noise)
        )


class TestArchCache:
    def test_cache_returns_same_object(self):
        clear_cache()
        a = compiled_metrics("bv", 10, NA)
        b = compiled_metrics("bv", 10, NA)
        assert a is b

    def test_arch_distinguished(self):
        a = compiled_metrics("bv", 10, NA)
        b = compiled_metrics("bv", 10, SC)
        assert a.mid != b.mid

    def test_noise_families(self):
        assert NA.noise().name.startswith("neutral")
        assert SC.noise().name.startswith("superconducting")
        assert NA.noise(two_qubit_error=1e-3).two_qubit_error == pytest.approx(1e-3)


class TestSweeps:
    def test_error_sweep_range(self):
        errors = error_sweep(5)
        assert errors[0] == pytest.approx(1e-5)
        assert errors[-1] == pytest.approx(1e-1)
        assert len(errors) == 5

    def test_valid_sizes_deduplicated(self):
        sizes = valid_sizes("cuccaro", 30, step=2)
        built = [build_circuit("cuccaro", s).num_qubits for s in sizes]
        assert len(built) == len(set(built))

    def test_comparison_monotone_in_error(self):
        cmp_result = compare_architectures("bv", 12, NA, SC, error_sweep(5))
        na_errors = [e for _, e in cmp_result.na_curve]
        assert na_errors == sorted(na_errors)

    def test_na_diverges_at_higher_error(self):
        # The paper's headline: NA's viability threshold beats SC's.
        cmp_result = compare_architectures("bv", 16, NA, SC, error_sweep(9))
        na_div, sc_div = cmp_result.divergence_error()
        assert na_div >= sc_div

    def test_largest_runnable_monotone(self):
        sizes = valid_sizes("bv", 20, step=5)
        low = largest_runnable_size("bv", NA, 1e-5, sizes)
        high = largest_runnable_size("bv", NA, 5e-2, sizes)
        assert low >= high

    def test_size_curve_shape(self):
        sizes = valid_sizes("bv", 20, step=5)
        curve = size_curve("bv", NA, [1e-4, 1e-2], sizes)
        assert len(curve) == 2
        assert curve[0][1] >= curve[1][1]


class TestCalibration:
    def test_calibrated_error_hits_target(self):
        metrics = compiled_metrics("cnu", 16, NA)
        error = calibrate_two_qubit_error(
            metrics, NoiseModel.neutral_atom, target_success=0.6
        )
        achieved = metrics.success_rate(NoiseModel.neutral_atom(error))
        assert achieved == pytest.approx(0.6, abs=0.01)

    def test_unreachable_target_rejected(self):
        metrics = compiled_metrics("cnu", 16, NA)
        with pytest.raises(ValueError):
            # Success ~1 requires error below the bisection floor for a
            # target of exactly 1.0 + margin; use an impossible target.
            calibrate_two_qubit_error(
                metrics, NoiseModel.neutral_atom, target_success=1.1
            )
