"""JSON round-trip coverage for every registered experiment result.

For each of the 20 registry entries: run the driver at miniature
parameters, serialize through ``to_dict`` -> ``json.dumps`` ->
``json.loads`` -> ``from_dict``, and require the reconstruction to be
*equal* — same dataclass value, same ``format()`` text, same re-encoded
payload.  This is the schema-stability contract behind
``python -m repro run <x> --format json``.
"""

import json

import pytest

from repro.api import (
    ExperimentResult,
    RESULT_SCHEMA,
    RESULT_SCHEMA_VERSION,
    Session,
    all_experiments,
)

#: Miniature parameters per experiment — smaller than --quick, sized so
#: the whole module stays fast while still exercising every field of
#: every result type.
TINY_PARAMS = {
    "fig3": dict(benchmarks=("bv",), mids=(2.0,), max_size=16, size_step=8,
                 bv_line_sizes=(15,)),
    "fig4": dict(benchmarks=("bv",), mids=(2.0,), max_size=16, size_step=8,
                 qft_line_sizes=(10,)),
    "fig5": dict(benchmarks=("bv",), mids=(2.0,), max_size=16, size_step=8,
                 qaoa_line_sizes=(12,)),
    "fig6": dict(sizes=(12,), mids=(2.0,)),
    "fig7": dict(benchmarks=("bv",), program_size=12, error_points=5),
    "fig8": dict(benchmarks=("bv",), max_size=16, size_step=8,
                 error_points=5),
    "fig10": dict(benchmarks=("cnu",), mids=(2.0,), program_size=12,
                  trials=1),
    "fig11": dict(benchmarks=("cnu",), strategies=("reroute",), mids=(2.0,),
                  max_holes=4, program_size=12, trials=1),
    "fig12": dict(strategies=("always reload",), mids=(3.0,), shots=30,
                  program_size=12),
    "fig13": dict(mids=(3.0,), factors=(1.0,), shots_per_run=40,
                  program_size=12),
    "fig14": dict(program_size=12, target_shots=3),
    "validation": dict(),
    "ablation-zones": dict(benchmarks=("qaoa",), program_size=10,
                           zone_scales=(1.0,)),
    "ablation-lookahead": dict(benchmarks=("bv",), mids=(1.0,),
                               program_size=10, windows=(1, 3)),
    "ablation-margin": dict(program_size=12, trials=1, margins=(1.0,)),
    "ext-ejection": dict(sizes=(10,), strategies=("always reload",),
                         shots=30),
    "ext-scaling": dict(grid_sides=(5,)),
    "ext-trapped-ion": dict(benchmarks=("bv",), program_size=10),
    "ext-geometry": dict(benchmarks=("bv",), grid_side=4, mids=(2.0,)),
    "ext-noisy-validation": dict(benchmarks=("bv",), program_size=6,
                                 errors=(0.01,), shots=100),
    "workload-metrics": dict(workload="bv", program_size=6, mids=(2.0,)),
    "gen-qaoa": dict(nodes=5, mids=(2.0,)),
    "gen-adder": dict(bits=2, mids=(2.0,)),
    "gen-random": dict(num_qubits=5, num_gates=12, mids=(2.0,)),
}


def test_tiny_params_cover_every_experiment():
    assert set(TINY_PARAMS) == set(all_experiments())


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.mark.parametrize("name", sorted(TINY_PARAMS))
def test_json_round_trip(name, session):
    spec = all_experiments()[name]
    result = session.run(name, **TINY_PARAMS[name])
    assert isinstance(result, spec.result_type)

    payload = result.to_dict()
    assert payload["schema"] == RESULT_SCHEMA
    assert payload["schema_version"] == RESULT_SCHEMA_VERSION
    assert payload["experiment"] == name
    assert payload["result_type"] == spec.result_type.__name__

    # Through actual JSON text, not just dict identity.
    wire = json.dumps(payload, sort_keys=True)
    decoded = ExperimentResult.from_dict(json.loads(wire))

    assert type(decoded) is spec.result_type
    assert decoded == result
    assert decoded.format() == result.format()
    assert decoded.to_dict() == payload
    # The typed classmethod enforces its own type.
    assert spec.result_type.from_dict(json.loads(wire)) == result


def test_from_dict_rejects_wrong_type():
    from repro.experiments.fig3_gate_count import Fig3Result
    from repro.experiments.validation import ValidationResult

    payload = Session().run("validation").to_dict()
    assert isinstance(ValidationResult.from_dict(payload), ValidationResult)
    with pytest.raises(ValueError, match="not a Fig3Result"):
        Fig3Result.from_dict(payload)


def test_from_dict_rejects_foreign_schema():
    with pytest.raises(ValueError, match="not a repro.experiment-result"):
        ExperimentResult.from_dict({"schema": "something-else", "data": {}})
    with pytest.raises(ValueError, match="schema version"):
        ExperimentResult.from_dict(
            {"schema": RESULT_SCHEMA, "schema_version": 999, "data": {}}
        )


def test_schema_version_error_names_the_expected_version():
    """The message must say which version would have been accepted."""
    with pytest.raises(ValueError,
                       match=rf"expected {RESULT_SCHEMA_VERSION}"):
        ExperimentResult.from_dict(
            {"schema": RESULT_SCHEMA, "schema_version": 999, "data": {}}
        )


def _tampered(payload, **fields):
    tampered = dict(payload)
    tampered.update(fields)
    return tampered


def test_from_dict_unknown_experiment_is_a_value_error():
    """A payload naming an unregistered experiment must fail with the
    offending value and the known set — never a raw registry KeyError."""
    payload = Session().run("validation").to_dict()
    with pytest.raises(ValueError,
                       match=r"unknown experiment 'fig99'.*known:.*fig3"):
        ExperimentResult.from_dict(_tampered(payload, experiment="fig99"))


def test_from_dict_unknown_result_type_is_a_value_error():
    payload = Session().run("validation").to_dict()
    with pytest.raises(ValueError,
                       match=r"unknown result type 'MadeUpResult'.*known:"):
        ExperimentResult.from_dict(
            _tampered(payload, result_type="MadeUpResult"))


def test_from_dict_missing_data_is_a_value_error():
    payload = Session().run("validation").to_dict()
    del payload["data"]
    with pytest.raises(ValueError, match="missing its 'data' field"):
        ExperimentResult.from_dict(payload)


def test_unregistered_dataclass_cannot_decode():
    from repro.api.serialize import decode

    with pytest.raises(ValueError, match="unknown serializable type"):
        decode({"__dc__": "TotallyMadeUp", "fields": {}})
