"""Tests for repro.obs — tracing, histograms, and Prometheus exposition.

Three layers of contract:

* **Unit** — trace ids and header round-trips, ambient span nesting,
  the JSONL trace store, fixed-bucket histograms, and the strict
  exposition validator.
* **Integration** — a traced ``Session.run`` produces the documented
  span vocabulary; the serving stack mints, propagates, stores, and
  serves traces (``GET /trace/<id>``, ``POST /trace`` ingestion,
  ``/metrics?format=prometheus``); a fleet worker's spans export back
  into the submitting request's trace.
* **Zero-perturbation** — the registry-wide byte-identity test: every
  experiment's ``--format json`` envelope is identical with tracing on
  or off.  Tracing observes the computation; it never feeds it.
"""

import json
import os
import re
import stat
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.__main__ import main
from repro.api import Session, all_experiments
from repro.api.client import RemoteSession
from repro.api.session import install_default
from repro.api.store import ResultStore, canonical_json
from repro.exec.cache import CompileCache
from repro.obs import (
    DEFAULT_BUCKETS,
    TRACE_HEADER,
    Histogram,
    SpanBuffer,
    TraceStore,
    Tracer,
    activate,
    current,
    current_trace_id,
    format_trace_header,
    is_trace_id,
    new_span_id,
    new_trace_id,
    parse_trace_header,
    record_span,
    root_span,
    span,
    span_record,
    validate_exposition,
)
from repro.obs.prometheus import (
    escape_label_value,
    family,
    format_value,
    histogram_family,
    render,
    sample_line,
)
from repro.serve import build_server
from repro.serve.app import ServeApp
from repro.serve.jobs import JobQueue
from repro.serve.metrics import COUNTERS, ServeMetrics
from repro.serve.sweeps import SweepTable


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


def _names(spans):
    return [record["name"] for record in spans]


# ---------------------------------------------------------------------------
# trace core
# ---------------------------------------------------------------------------


class TestTraceIds:
    def test_id_formats(self):
        assert re.fullmatch(r"[0-9a-f]{32}", new_trace_id())
        assert re.fullmatch(r"[0-9a-f]{16}", new_span_id())
        assert new_trace_id() != new_trace_id()

    def test_is_trace_id(self):
        assert is_trace_id(new_trace_id())
        assert not is_trace_id(None)
        assert not is_trace_id("abc")
        assert not is_trace_id("Z" * 32)
        assert not is_trace_id(new_trace_id().upper())

    def test_header_round_trip(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        header = format_trace_header(trace_id, span_id)
        assert parse_trace_header(header) == (trace_id, span_id)

    @pytest.mark.parametrize("value", [
        None, 42, "", "garbage", "deadbeef-cafe",
        "g" * 32 + "-" + "a" * 16,            # non-hex trace id
        "a" * 32,                              # no span part
        "a" * 32 + "-" + "b" * 15,             # short span id
        "a" * 31 + "-" + "b" * 16,             # short trace id
    ])
    def test_malformed_headers_degrade_to_none(self, value):
        assert parse_trace_header(value) is None

    def test_parse_strips_whitespace(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        header = f"  {format_trace_header(trace_id, span_id)}\n"
        assert parse_trace_header(header) == (trace_id, span_id)


class TestSpanContext:
    def test_span_without_active_trace_is_noop(self):
        assert current() is None
        with span("anything", key="value") as handle:
            assert handle.trace_id is None
            assert handle.span_id is None
            handle.set(extra=1)  # must not raise
        assert current() is None
        assert current_trace_id() is None

    def test_nested_spans_parent_correctly(self):
        sink = SpanBuffer()
        tracer = Tracer(sink, service="test")
        trace_id = new_trace_id()
        with activate(tracer, trace_id):
            with span("outer") as outer:
                with span("inner", detail=1) as inner:
                    pass
        assert _names(sink.records) == ["inner", "outer"]  # emit at exit
        inner_rec, outer_rec = sink.records
        assert inner_rec["trace"] == outer_rec["trace"] == trace_id
        assert inner_rec["parent"] == outer.span_id
        assert outer_rec["parent"] is None
        assert inner_rec["attrs"] == {"detail": 1}
        assert outer_rec["service"] == "test"
        assert inner_rec["span"] == inner.span_id

    def test_context_restored_after_block(self):
        tracer = Tracer(SpanBuffer())
        with activate(tracer, new_trace_id()) as active:
            with span("child"):
                assert current().span_id is not None
            assert current().span_id == active.span_id
        assert current() is None

    def test_exception_stamps_error_attr_and_propagates(self):
        sink = SpanBuffer()
        with activate(Tracer(sink), new_trace_id()):
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        (record,) = sink.records
        assert record["attrs"]["error"] == "ValueError"

    def test_root_span_with_no_tracer_is_noop(self):
        with root_span(None, "entry") as handle:
            assert handle.trace_id is None

    def test_root_span_mints_fresh_trace(self):
        sink = SpanBuffer()
        with root_span(Tracer(sink), "entry", service="cli") as handle:
            assert is_trace_id(handle.trace_id)
            assert current_trace_id() == handle.trace_id
        (record,) = sink.records
        assert record["parent"] is None
        assert record["service"] == "cli"
        assert current() is None

    def test_root_span_joins_active_trace_as_child(self):
        sink = SpanBuffer()
        tracer = Tracer(sink)
        other = Tracer(SpanBuffer())
        trace_id = new_trace_id()
        parent = new_span_id()
        with activate(tracer, trace_id, parent):
            # The tracer argument is ignored when a trace is active:
            # nested entry points join instead of forking a new trace.
            with root_span(other, "entry") as handle:
                assert handle.trace_id == trace_id
        (record,) = sink.records
        assert record["parent"] == parent

    def test_record_span_emits_externally_timed_interval(self):
        sink = SpanBuffer()
        tracer = Tracer(sink, service="serve")
        trace_id = new_trace_id()
        span_id = record_span(tracer, trace_id, None, "queue.wait",
                              "serve", 123.0, 0.25, job_id="j1")
        (record,) = sink.records
        assert record == span_record(trace_id, span_id, None, "queue.wait",
                                     "serve", 123.0, 0.25, {"job_id": "j1"})

    def test_span_record_rounds_and_shapes(self):
        record = span_record("a" * 32, "b" * 16, None, "x", "svc",
                             1.23456789, 0.000000123)
        assert record["start"] == 1.234568
        assert record["duration_s"] == 0.0
        assert "attrs" not in record

    def test_tracer_requires_emit(self):
        with pytest.raises(TypeError, match="emit"):
            Tracer(object())

    def test_tracer_observer_sees_emitted_records(self):
        seen = []
        tracer = Tracer(SpanBuffer(), observer=seen.append)
        with activate(tracer, new_trace_id()):
            with span("watched"):
                pass
        assert _names(seen) == ["watched"]


class TestSpanBuffer:
    def test_drain_empties_the_buffer(self):
        buffer = SpanBuffer()
        buffer.emit({"trace": "t", "name": "a"})
        buffer.emit({"trace": "t", "name": "b"})
        drained = buffer.drain()
        assert _names(drained) == ["a", "b"]
        assert buffer.records == []
        assert buffer.drain() == []


# ---------------------------------------------------------------------------
# trace store
# ---------------------------------------------------------------------------


class TestTraceStore:
    def _store(self, tmp_path):
        return TraceStore(str(tmp_path / "traces"))

    def test_emit_and_read_sorted_by_start(self, tmp_path):
        store = self._store(tmp_path)
        trace_id = new_trace_id()
        store.emit(span_record(trace_id, "b" * 16, None, "late", "s",
                               200.0, 0.1))
        store.emit(span_record(trace_id, "a" * 16, None, "early", "s",
                               100.0, 0.1))
        assert _names(store.read(trace_id)) == ["early", "late"]

    def test_read_unknown_or_malformed_id_is_empty(self, tmp_path):
        store = self._store(tmp_path)
        assert store.read(new_trace_id()) == []
        assert store.read("../../etc/passwd") == []

    def test_emit_skips_records_without_a_trace_id(self, tmp_path):
        store = self._store(tmp_path)
        store.emit({"name": "orphan"})
        store.emit({"trace": "not-an-id", "name": "bad"})
        assert store.traces() == []

    def test_ingest_counts_only_wellformed_records(self, tmp_path):
        store = self._store(tmp_path)
        trace_id = new_trace_id()
        good = span_record(trace_id, "a" * 16, None, "ok", "w", 1.0, 0.1)
        accepted = store.ingest([
            good,
            "not a dict",
            {"trace": trace_id},              # no name
            {"trace": "nope", "name": "x"},   # bad id
            None,
        ])
        assert accepted == 1
        assert _names(store.read(trace_id)) == ["ok"]

    def test_resolve_prefix(self, tmp_path):
        store = self._store(tmp_path)
        first = "aa" + "0" * 30
        second = "ab" + "0" * 30
        for trace_id in (first, second):
            store.emit(span_record(trace_id, "c" * 16, None, "x", "s",
                                   1.0, 0.1))
        assert store.resolve(first) == first
        assert store.resolve("ab") == second
        assert store.resolve("zz") is None
        assert store.resolve(new_trace_id()) is None  # full id, not stored
        with pytest.raises(KeyError, match="ambiguous"):
            store.resolve("a")

    def test_traces_and_stats(self, tmp_path):
        store = self._store(tmp_path)
        trace_id = new_trace_id()
        store.emit(span_record(trace_id, "a" * 16, None, "x", "s", 1.0, 0.1))
        rows = store.traces()
        assert [row[0] for row in rows] == [trace_id]
        stats = store.stats()
        assert stats["traces"] == 1
        assert stats["total_bytes"] == rows[0][1] > 0

    def test_unwritable_directory_degrades_to_dropping(self, tmp_path,
                                                       capsys):
        if os.geteuid() == 0:
            pytest.skip("permission bits do not bind as root")
        target = tmp_path / "sealed"
        target.mkdir()
        target.chmod(stat.S_IRUSR | stat.S_IXUSR)
        try:
            store = TraceStore(str(target))
            for _ in range(3):
                store.emit(span_record(new_trace_id(), "a" * 16, None,
                                       "x", "s", 1.0, 0.1))
        finally:
            target.chmod(stat.S_IRWXU)
        err = capsys.readouterr().err
        assert err.count("not writable") == 1  # warn once, never raise


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_observe_fills_the_right_buckets(self):
        hist = Histogram(bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(55.55)
        assert hist.cumulative() == ((0.1, 1), (1.0, 2), (10.0, 3))
        assert hist.overflow == 1

    def test_negative_observations_clamp_to_zero(self):
        hist = Histogram(bounds=(1.0,))
        hist.observe(-5.0)
        assert hist.cumulative() == ((1.0, 1),)
        assert hist.sum == 0.0

    def test_boundary_lands_in_its_bucket(self):
        # Prometheus buckets are `le` (inclusive upper bound).
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.cumulative() == ((1.0, 1), (2.0, 1))

    def test_default_buckets_are_sorted_and_positive(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert all(bound > 0 for bound in DEFAULT_BUCKETS)

    def test_cumulative_is_monotone(self):
        hist = Histogram()
        for value in (0.003, 0.003, 0.2, 7.0, 100.0):
            hist.observe(value)
        counts = [count for _, count in hist.cumulative()]
        assert counts == sorted(counts)
        assert hist.count == 5


# ---------------------------------------------------------------------------
# prometheus exposition
# ---------------------------------------------------------------------------


class TestPrometheusRendering:
    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_format_value(self):
        assert format_value(True) == "1"
        assert format_value(False) == "0"
        assert format_value(7) == "7"
        assert format_value(0.25) == "0.25"
        assert format_value(float("inf")) == "+Inf"

    def test_sample_line(self):
        line = sample_line("repro_x_total", {"route": "/run"}, 3)
        assert line == 'repro_x_total{route="/run"} 3'
        assert sample_line("repro_x_total", {}, 3) == "repro_x_total 3"

    def test_render_validates(self):
        hist = Histogram(bounds=(0.1, 1.0))
        hist.observe(0.05)
        text = render([
            family("repro_up", "gauge", "Is it up.", [({}, 1)]),
            histogram_family("repro_lat_seconds", "Latency.",
                             [({}, hist)]),
        ])
        report = validate_exposition(text)
        assert report["families"] == 2
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert text.endswith("\n")

    @pytest.mark.parametrize("bad, why", [
        ("repro_x 1\n", "TYPE"),                       # sample before TYPE
        ("# TYPE repro_x counter\nrepro_x 1", "newline"),
        ("# TYPE repro_x counter\nrepro_x one\n", "value"),
        ("# TYPE repro_x counter\n\nrepro_x 1\n", "blank"),
        ("# TYPE repro_x counter\n# TYPE repro_x counter\nrepro_x 1\n",
         "duplicate"),
        ('# TYPE repro_h histogram\nrepro_h_bucket{le="1"} 1\n'
         "repro_h_sum 1\nrepro_h_count 1\n", "Inf"),
    ])
    def test_validator_rejects_malformed_documents(self, bad, why):
        with pytest.raises(ValueError, match=why):
            validate_exposition(bad)


# ---------------------------------------------------------------------------
# serve metrics (satellites a, b, c)
# ---------------------------------------------------------------------------


class TestServeMetrics:
    def test_unknown_counter_raises_naming_the_known_ones(self):
        metrics = ServeMetrics()
        with pytest.raises(ValueError) as excinfo:
            metrics.count("requests_totall")  # typo must not vanish
        message = str(excinfo.value)
        assert "requests_totall" in message
        for known in ("jobs_submitted", "spans_ingested"):
            assert known in message
        # The declared counters all work.
        for counter in COUNTERS:
            metrics.count(counter)

    def test_uptime_is_monotonic_not_wall_clock(self, monkeypatch):
        metrics = ServeMetrics()
        # An NTP step back in wall-clock time must not produce a
        # negative (or shrinking) uptime: uptime reads time.monotonic.
        import repro.serve.metrics as metrics_module

        real_time = time.time
        monkeypatch.setattr(metrics_module.time, "time",
                            lambda: real_time() - 3600.0)
        snap = metrics.snapshot()
        assert snap["uptime_s"] >= 0.0
        assert snap["started_at"] == pytest.approx(metrics.started_at)

    def test_snapshot_is_consistent_under_concurrent_hammering(self):
        metrics = ServeMetrics()
        stop = threading.Event()
        failures = []

        def hammer():
            while not stop.is_set():
                metrics.count_request("/run", 200, seconds=0.001)
                metrics.count("jobs_submitted")

        def watch():
            while not stop.is_set():
                snap = metrics.snapshot()
                total = snap["requests_total"]
                by_route = sum(snap["requests_by_route"].values())
                if total < by_route:
                    failures.append((total, by_route))

        threads = ([threading.Thread(target=hammer) for _ in range(4)]
                   + [threading.Thread(target=watch) for _ in range(2)])
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join(timeout=5)
        assert not failures
        snap = metrics.snapshot()
        assert snap["requests_total"] == sum(
            snap["requests_by_route"].values())
        assert snap["requests_total"] > 0

    def test_observe_validates_names_and_labels(self):
        metrics = ServeMetrics()
        with pytest.raises(ValueError, match="unknown histogram"):
            metrics.observe("nope_seconds", 0.1)
        with pytest.raises(ValueError, match="label"):
            metrics.observe("queue_wait_seconds", 0.1, label="/run")
        metrics.observe("queue_wait_seconds", 0.1)
        metrics.observe("request_duration_seconds", 0.1, label="/run")

    def test_request_latency_lands_in_snapshot_and_exposition(self):
        metrics = ServeMetrics()
        metrics.count_request("/run", 200, seconds=0.02)
        metrics.count_request("/metrics", 200, seconds=0.001)
        latency = metrics.snapshot()["latency"]["request_duration_seconds"]
        assert latency["/run"]["count"] == 1
        text = metrics.prometheus()
        validate_exposition(text)
        assert ('repro_request_duration_seconds_bucket'
                '{le="0.025",route="/run"} 1') in text

    def test_observe_span_feeds_only_mapped_names(self):
        metrics = ServeMetrics()
        metrics.observe_span(span_record(new_trace_id(), "a" * 16, None,
                                         "compile", "s", 1.0, 0.004))
        metrics.observe_span(span_record(new_trace_id(), "b" * 16, None,
                                         "session.run", "s", 1.0, 0.5))
        latency = metrics.snapshot()["latency"]
        assert latency["compile_duration_seconds"]["all"]["count"] == 1
        assert "cell_duration_seconds" not in latency

    def test_prometheus_exposition_is_strictly_valid_when_empty(self):
        text = ServeMetrics().prometheus()
        report = validate_exposition(text)
        assert report["samples"] > 0
        assert "repro_requests_total 0" in text
        assert "repro_uptime_seconds" in text


# ---------------------------------------------------------------------------
# session tracing
# ---------------------------------------------------------------------------


class TestSessionTracing:
    def test_trace_dir_and_tracer_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            Session(trace_dir=str(tmp_path / "t"),
                    tracer=Tracer(SpanBuffer()))

    def test_untraced_session_records_nothing(self):
        session = Session(jobs=1)
        session.run("validation", quick=True)
        assert session.tracer is None
        assert session.last_trace_id is None

    def test_traced_run_produces_the_span_vocabulary(self, tmp_path):
        trace_dir = tmp_path / "traces"
        session = Session(jobs=1, trace_dir=str(trace_dir),
                          store_dir=str(tmp_path / "store"))
        session.run("fig12", quick=True)
        trace_id = session.last_trace_id
        assert is_trace_id(trace_id)
        spans = TraceStore(str(trace_dir)).read(trace_id)
        names = set(_names(spans))
        assert {"session.run", "store.read", "store.write", "tasks",
                "compile", "shots"} <= names
        root = next(record for record in spans
                    if record["parent"] is None)
        assert root["name"] == "session.run"
        assert root["attrs"]["experiment"] == "fig12"
        assert root["attrs"]["store"] == "miss"
        # Every span belongs to this trace and parents resolve.
        ids = {record["span"] for record in spans}
        for record in spans:
            assert record["trace"] == trace_id
            assert record["parent"] is None or record["parent"] in ids

    def test_compile_spans_annotate_cache_tier(self, tmp_path):
        trace_dir = tmp_path / "traces"
        session = Session(jobs=1, trace_dir=str(trace_dir))
        session.run("validation", quick=True)
        spans = TraceStore(str(trace_dir)).read(session.last_trace_id)
        tiers = {record["attrs"]["cache"] for record in spans
                 if record["name"] == "compile"}
        assert "miss" in tiers            # cold cache compiles for real
        assert tiers <= {"miss", "memory", "disk"}

    def test_store_hit_replay_is_traced_too(self, tmp_path):
        trace_dir = tmp_path / "traces"
        store_dir = str(tmp_path / "store")
        first = Session(jobs=1, trace_dir=str(trace_dir),
                        store_dir=store_dir)
        first.run("validation", quick=True)
        second = Session(jobs=1, trace_dir=str(trace_dir),
                         store_dir=store_dir)
        second.run("validation", quick=True)
        assert second.last_trace_id != first.last_trace_id
        spans = TraceStore(str(trace_dir)).read(second.last_trace_id)
        root = next(record for record in spans
                    if record["parent"] is None)
        assert root["attrs"]["store"] == "hit"
        reads = [record for record in spans
                 if record["name"] == "store.read"]
        assert reads and reads[0]["attrs"]["hit"] is True
        assert "tasks" not in _names(spans)  # replay executes nothing

    def test_ledger_rows_carry_the_trace_id(self, tmp_path):
        store_dir = str(tmp_path / "store")
        traced = Session(jobs=1, trace_dir=str(tmp_path / "traces"),
                         store_dir=store_dir)
        traced.run("validation", quick=True)
        plain = Session(jobs=1, store_dir=store_dir)
        plain.run("validation", quick=True)
        events = ResultStore(store_dir).tail(10)
        assert events[0]["trace"] == traced.last_trace_id
        assert "trace" not in events[1]  # untraced rows stay unchanged


# ---------------------------------------------------------------------------
# zero-perturbation contract (tentpole part 3)
# ---------------------------------------------------------------------------


class TestZeroPerturbation:
    def test_every_envelope_is_byte_identical_with_tracing_on(
            self, tmp_path):
        """The registry-wide contract: tracing must not perturb one byte
        of any experiment's canonical JSON envelope."""
        cache = CompileCache(None)  # shared: only tracing may differ
        plain = Session(jobs=1, cache=cache)
        traced = Session(jobs=1, cache=cache,
                         trace_dir=str(tmp_path / "traces"))
        mismatched = []
        for name in all_experiments():
            untraced_bytes = canonical_json(
                plain.run(name, quick=True).to_dict())
            traced_bytes = canonical_json(
                traced.run(name, quick=True).to_dict())
            if untraced_bytes != traced_bytes:
                mismatched.append(name)
            assert is_trace_id(traced.last_trace_id)
        assert mismatched == []


# ---------------------------------------------------------------------------
# serving-layer tracing (in-process app)
# ---------------------------------------------------------------------------


def _make_app(tmp_path, tracer=None, workers=1):
    store = ResultStore(str(tmp_path / "store"))
    cache = CompileCache(None)
    metrics = ServeMetrics()
    if tracer is not None:
        tracer.observer = metrics.observe_span
    jobs = JobQueue(
        lambda: Session(jobs=1, cache=cache, store=store),
        workers=workers, metrics=metrics, store=store, tracer=tracer)
    sweeps = SweepTable(store, jobs, metrics)
    return ServeApp(store=store, jobs=jobs, metrics=metrics,
                    sweeps=sweeps, tracer=tracer)


class TestServeAppTracing:
    def test_trace_routes_404_when_tracing_disabled(self, tmp_path):
        app = _make_app(tmp_path)
        try:
            response = app.handle("GET", "/trace")
            assert response.status == 404
            assert "trace-dir" in json.loads(response.body)["error"]
            assert app.handle("GET", "/trace/" + "a" * 32).status == 404
            assert app.handle("POST", "/trace",
                              b'{"spans": []}').status == 404
        finally:
            app.jobs.shutdown()

    def test_posted_run_mints_a_trace_and_serves_it(self, tmp_path):
        tracer = Tracer(TraceStore(str(tmp_path / "traces")),
                        service="serve")
        app = _make_app(tmp_path, tracer=tracer)
        try:
            body = json.dumps({"experiment": "validation", "quick": True,
                               "wait": True}).encode()
            response = app.handle("POST", "/run", body)
            assert response.status == 200
            header = response.headers[TRACE_HEADER]
            trace_id, _ = parse_trace_header(header)

            detail = app.handle("GET", f"/trace/{trace_id}")
            assert detail.status == 200
            assert detail.headers[TRACE_HEADER].startswith(trace_id)
            payload = json.loads(detail.body)
            assert payload["trace"] == trace_id
            assert payload["count"] == len(payload["spans"])
            names = set(_names(payload["spans"]))
            assert {"server.request", "queue.wait", "job.execute",
                    "session.run", "tasks", "compile"} <= names
        finally:
            app.jobs.shutdown()

    def test_client_supplied_header_joins_the_clients_trace(self,
                                                            tmp_path):
        tracer = Tracer(TraceStore(str(tmp_path / "traces")))
        app = _make_app(tmp_path, tracer=tracer)
        try:
            trace_id, parent = new_trace_id(), new_span_id()
            body = json.dumps({"experiment": "validation", "quick": True,
                               "wait": True}).encode()
            response = app.handle(
                "POST", "/run", body,
                trace=format_trace_header(trace_id, parent))
            echoed, _ = parse_trace_header(response.headers[TRACE_HEADER])
            assert echoed == trace_id
            spans = json.loads(
                app.handle("GET", f"/trace/{trace_id}").body)["spans"]
            request_span = next(record for record in spans
                                if record["name"] == "server.request")
            assert request_span["parent"] == parent
        finally:
            app.jobs.shutdown()

    def test_polling_gets_do_not_mint_traces(self, tmp_path):
        tracer = Tracer(TraceStore(str(tmp_path / "traces")))
        app = _make_app(tmp_path, tracer=tracer)
        try:
            response = app.handle("GET", "/healthz")
            assert TRACE_HEADER not in response.headers
            assert app.tracer.sink.traces() == []
        finally:
            app.jobs.shutdown()

    def test_trace_detail_rejects_bad_and_unknown_ids(self, tmp_path):
        tracer = Tracer(TraceStore(str(tmp_path / "traces")))
        app = _make_app(tmp_path, tracer=tracer)
        try:
            assert app.handle("GET", "/trace/xyz").status == 400
            assert app.handle("GET",
                              "/trace/" + new_trace_id()).status == 404
        finally:
            app.jobs.shutdown()

    def test_trace_ingestion_accepts_wellformed_spans(self, tmp_path):
        tracer = Tracer(TraceStore(str(tmp_path / "traces")))
        app = _make_app(tmp_path, tracer=tracer)
        try:
            trace_id = new_trace_id()
            spans = [span_record(trace_id, "a" * 16, None, "client.run",
                                 "client", 1.0, 0.5),
                     {"trace": "malformed"}]
            response = app.handle("POST", "/trace", json.dumps(
                {"spans": spans}).encode())
            assert response.status == 200
            assert json.loads(response.body)["accepted"] == 1
            stored = json.loads(
                app.handle("GET", f"/trace/{trace_id}").body)
            assert _names(stored["spans"]) == ["client.run"]

            assert app.handle("POST", "/trace", b"not json").status == 400
            assert app.handle("POST", "/trace",
                              b'{"no": "spans"}').status == 400
        finally:
            app.jobs.shutdown()

    def test_ingested_compile_spans_feed_the_histogram(self, tmp_path):
        # A --jobs 0 server never compiles locally: its compile latency
        # histogram fills from the spans fleet workers export.
        tracer = Tracer(TraceStore(str(tmp_path / "traces")))
        app = _make_app(tmp_path, tracer=tracer, workers=0)
        try:
            trace_id = new_trace_id()
            spans = [span_record(trace_id, "b" * 16, None, "compile",
                                 "worker", 1.0, 0.25),
                     span_record(trace_id, "c" * 16, None, "worker.execute",
                                 "worker", 1.0, 0.5)]
            response = app.handle("POST", "/trace", json.dumps(
                {"spans": spans}).encode())
            assert json.loads(response.body)["accepted"] == 2

            latency = app.metrics.snapshot()["latency"]
            compile_hist = latency["compile_duration_seconds"]["all"]
            assert compile_hist["count"] == 1
            assert compile_hist["sum"] == pytest.approx(0.25)
            scrape = app.handle("GET", "/metrics?format=prometheus")
            assert ("repro_compile_duration_seconds_count 1"
                    in scrape.body.decode())
        finally:
            app.jobs.shutdown()

    def test_metrics_prometheus_format_negotiation(self, tmp_path):
        app = _make_app(tmp_path)
        try:
            plain = app.handle("GET", "/metrics")
            assert plain.status == 200
            json.loads(plain.body)  # default stays JSON

            scrape = app.handle("GET", "/metrics?format=prometheus")
            assert scrape.status == 200
            assert scrape.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")
            validate_exposition(scrape.body.decode())
        finally:
            app.jobs.shutdown()

    def test_queue_and_cell_latency_reach_the_exposition(self, tmp_path):
        tracer = Tracer(TraceStore(str(tmp_path / "traces")))
        app = _make_app(tmp_path, tracer=tracer)
        try:
            body = json.dumps({"experiment": "validation", "quick": True,
                               "wait": True}).encode()
            assert app.handle("POST", "/run", body).status == 200
            text = app.handle("GET",
                              "/metrics?format=prometheus").body.decode()
            validate_exposition(text)
            assert "repro_queue_wait_seconds_count 1" in text
            assert "repro_cell_duration_seconds_count 1" in text
            assert "repro_compile_duration_seconds_count" in text
        finally:
            app.jobs.shutdown()


# ---------------------------------------------------------------------------
# end-to-end: RemoteSession + serve + fleet worker (acceptance)
# ---------------------------------------------------------------------------


class TestEndToEndTracing:
    @pytest.fixture
    def stack(self, tmp_path):
        """serve --jobs 0 with tracing + one fleet worker thread."""
        from repro.fleet import FleetWorker

        server = build_server(
            "127.0.0.1", 0, str(tmp_path / "store"), None, workers=0,
            quiet=True, lease_ttl=30.0,
            trace_dir=str(tmp_path / "traces"))
        server_thread = threading.Thread(target=server.serve_forever,
                                         daemon=True)
        server_thread.start()
        base = f"http://127.0.0.1:{server.port}"

        def session_factory():
            return Session(jobs=1,
                           store_dir=str(tmp_path / "worker-store"))

        worker = FleetWorker(base, session_factory, worker_id="w-obs",
                             poll_interval=0.05, quiet=True)
        worker_thread = threading.Thread(
            target=worker.run, kwargs={"max_jobs": 4}, daemon=True)
        worker_thread.start()
        yield base, str(tmp_path / "traces")
        worker.stop_event.set()
        server.shutdown()
        server.close()
        worker_thread.join(timeout=10)
        server_thread.join(timeout=5)

    def test_one_trace_covers_client_server_queue_and_worker(self, stack):
        base, trace_dir = stack
        remote = RemoteSession(base, trace=True)
        result = remote.run("validation", quick=True)
        assert result.to_dict()["experiment"] == "validation"
        trace_id = remote.last_trace_id
        assert is_trace_id(trace_id)

        deadline = time.monotonic() + 10.0
        spans = []
        # Client and worker spans arrive via POST /trace export; give
        # the worker's batch a moment to land.
        while time.monotonic() < deadline:
            with urllib.request.urlopen(f"{base}/trace/{trace_id}") as rsp:
                spans = json.loads(rsp.read())["spans"]
            services = {record["service"] for record in spans}
            if {"client", "serve", "worker"} <= services:
                break
            time.sleep(0.05)
        names = set(_names(spans))
        assert {"client.run", "client.request"} <= names       # client
        assert {"server.request", "queue.wait", "lease"} <= names  # serve
        assert {"worker.execute", "session.run", "tasks",
                "compile"} <= names                             # worker
        assert all(record["trace"] == trace_id for record in spans)
        lease = next(record for record in spans
                     if record["name"] == "lease")
        assert lease["attrs"]["worker"] == "w-obs"
        assert lease["attrs"]["outcome"] == "released"
        execute = next(record for record in spans
                       if record["name"] == "worker.execute")
        assert execute["attrs"]["status"] == "done"

    def test_remote_envelope_is_byte_identical_to_untraced(self, stack,
                                                           tmp_path):
        base, _ = stack
        traced = RemoteSession(base, trace=True).run("fig3", quick=True)
        plain = RemoteSession(base).run("fig3", quick=True)
        local = Session(jobs=1).run("fig3", quick=True)
        assert (canonical_json(traced.to_dict())
                == canonical_json(plain.to_dict())
                == canonical_json(local.to_dict()))

    def test_untraced_remote_session_contributes_no_client_spans(
            self, stack):
        base, trace_dir = stack
        store = TraceStore(trace_dir)
        before = {row[0] for row in store.traces()}
        remote = RemoteSession(base)
        remote.run("validation", quick=True)
        assert remote.last_trace_id is None
        # The server may mint its own trace for the POST /run, but the
        # untraced client neither sent a header nor exported spans.
        for trace_id in {row[0] for row in store.traces()} - before:
            services = {record["service"]
                        for record in store.read(trace_id)}
            assert "client" not in services


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestTraceCLI:
    def _run_traced(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "traces")
        assert main(["run", "validation", "--quick", "--no-cache",
                     "--trace-dir", trace_dir]) == 0
        err = capsys.readouterr().err
        match = re.search(r"\[trace ([0-9a-f]{32})\]", err)
        assert match, err
        return trace_dir, match.group(1)

    def test_run_prints_trace_id_and_show_renders_it(self, tmp_path,
                                                     capsys):
        trace_dir, trace_id = self._run_traced(tmp_path, capsys)

        assert main(["trace", "ls", "--trace-dir", trace_dir]) == 0
        out = capsys.readouterr().out
        assert trace_id in out
        assert "session.run" in out
        assert "1 recorded trace(s)" in out

        # Unique prefixes resolve, like `store show`.
        assert main(["trace", "show", trace_id[:8],
                     "--trace-dir", trace_dir]) == 0
        out = capsys.readouterr().out
        assert f"trace {trace_id}" in out
        assert "session.run" in out and "compile" in out
        assert "  tasks" in out  # children indent under the root

    def test_trace_show_json_matches_the_store(self, tmp_path, capsys):
        trace_dir, trace_id = self._run_traced(tmp_path, capsys)
        assert main(["trace", "show", trace_id, "--format", "json",
                     "--trace-dir", trace_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"] == trace_id
        assert payload["spans"] == TraceStore(trace_dir).read(trace_id)

    def test_trace_show_unknown_and_ambiguous(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "traces")
        store = TraceStore(trace_dir)
        for trace_id in ("aa" + "0" * 30, "ab" + "0" * 30):
            store.emit(span_record(trace_id, "c" * 16, None, "x", "s",
                                   1.0, 0.1))
        assert main(["trace", "show", "zz", "--trace-dir",
                     trace_dir]) == 2
        assert "no recorded trace" in capsys.readouterr().err
        assert main(["trace", "show", "a", "--trace-dir",
                     trace_dir]) == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_store_ls_last_shows_trace_column(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        trace_dir = str(tmp_path / "traces")
        assert main(["run", "validation", "--quick", "--no-cache",
                     "--store", store_dir, "--trace-dir",
                     trace_dir]) == 0
        capsys.readouterr()
        assert main(["store", "ls", "--last", "1",
                     "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        traces = TraceStore(trace_dir).traces()
        assert f"trace {traces[0][0][:12]}" in out

    def test_stdout_is_byte_identical_with_tracing_on(self, tmp_path,
                                                      capsys):
        assert main(["run", "validation", "--quick", "--no-cache",
                     "--format", "json"]) == 0
        untraced = capsys.readouterr().out
        assert main(["run", "validation", "--quick", "--no-cache",
                     "--format", "json",
                     "--trace-dir", str(tmp_path / "traces")]) == 0
        assert capsys.readouterr().out == untraced
