"""Tests for RemoteSession (repro.api.client).

The contract: ``RemoteSession.run`` is shape-compatible with
``Session.run`` — same call signature, same decoded
:class:`ExperimentResult` — with server-side errors mapped back onto
the exceptions the local session would raise.
"""

import threading

import pytest

from repro.api import (
    ExperimentResult,
    RemoteRunError,
    RemoteSession,
    Session,
    all_experiments,
)
from repro.api.session import install_default
from repro.serve import build_server


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


@pytest.fixture
def server(tmp_path):
    srv = build_server("127.0.0.1", 0, str(tmp_path / "store"),
                       str(tmp_path / "cache"), workers=2, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.close()
    thread.join(timeout=5)


@pytest.fixture
def remote(server):
    return RemoteSession(f"http://127.0.0.1:{server.port}")


class TestRun:
    def test_remote_result_equals_local_result(self, remote):
        local = Session().run("validation", quick=True)
        result = remote.run("validation", quick=True)
        assert isinstance(result, ExperimentResult)
        assert result == local
        assert result.format() == local.format()

    def test_hit_miss_counters_mirror_the_store(self, remote):
        remote.run("validation", quick=True)
        remote.run("validation", quick=True)
        assert (remote.misses, remote.hits) == (1, 1)

    def test_force_is_a_miss(self, remote):
        remote.run("validation", quick=True)
        remote.run("validation", quick=True, force=True)
        assert (remote.misses, remote.hits) == (2, 0)

    def test_params_flow_through(self, remote):
        result = remote.run("fig10", benchmarks=["cnu"], mids=[2.0],
                            program_size=12, trials=1)
        local = Session().run("fig10", benchmarks=("cnu",), mids=(2.0,),
                              program_size=12, trials=1)
        assert result == local


class TestErrorMapping:
    def test_unknown_experiment_is_key_error(self, remote):
        with pytest.raises(KeyError, match="unknown experiment"):
            remote.run("fig99")

    def test_bad_parameter_is_type_error(self, remote):
        with pytest.raises(TypeError, match="has no parameter"):
            remote.run("validation", bogus=1)

    def test_failed_execution_is_remote_run_error(self, remote,
                                                  monkeypatch):
        import dataclasses

        from repro.api import registry

        real = registry._SPECS["validation"]

        def exploding_runner(**kwargs):
            raise RuntimeError("backend exploded")

        monkeypatch.setitem(registry._SPECS, "validation",
                            dataclasses.replace(real,
                                                runner=exploding_runner))
        with pytest.raises(RemoteRunError, match="backend exploded"):
            remote.run("validation", quick=True)

    def test_missing_result_is_key_error(self, remote):
        with pytest.raises(KeyError):
            remote.result("a" * 64)


class TestReadOnlyViews:
    def test_experiments_mirror_the_registry(self, remote):
        listing = remote.experiments()
        assert set(listing) == set(all_experiments())
        assert listing["validation"]["doc"]

    def test_submit_then_poll_job(self, remote):
        import time

        submitted = remote.submit("validation", quick=True)
        deadline = time.time() + 60
        while time.time() < deadline:
            job = remote.job(submitted["id"])
            if job["status"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert job["status"] == "done"
        envelope = remote.result(job["key"])
        assert envelope["experiment"] == "validation"

    def test_unknown_job_is_key_error(self, remote):
        with pytest.raises(KeyError):
            remote.job("nope")

    def test_metrics_round_trip(self, remote):
        remote.run("validation", quick=True)
        metrics = remote.metrics()
        assert metrics["jobs"]["completed"] == 1
        assert "uptime_s" in metrics

    def test_repr_names_the_endpoint(self, remote):
        assert remote.base_url in repr(remote)


class TestTransientGetRetry:
    """Idempotent GETs retry once on transient transport failures;
    everything else (HTTP error responses, POSTs) surfaces immediately."""

    def _flaky_urlopen(self, monkeypatch, fail_times, error_factory):
        import urllib.request

        real = urllib.request.urlopen
        calls = []

        def flaky(request, timeout=None):
            calls.append(request.get_full_url())
            if len(calls) <= fail_times:
                raise error_factory()
            return real(request, timeout=timeout)

        monkeypatch.setattr(urllib.request, "urlopen", flaky)
        return calls

    def test_get_retries_once_on_connection_error(self, remote,
                                                  monkeypatch):
        import urllib.error

        calls = self._flaky_urlopen(
            monkeypatch, 1,
            lambda: urllib.error.URLError(ConnectionResetError("reset")))
        metrics = remote.metrics()
        assert "uptime_s" in metrics
        assert len(calls) == 2              # failed once, retried once

    def test_get_retries_once_on_timeout(self, remote, monkeypatch):
        calls = self._flaky_urlopen(monkeypatch, 1,
                                    lambda: TimeoutError("timed out"))
        assert "validation" in remote.experiments()
        assert len(calls) == 2

    def test_get_gives_up_after_one_retry(self, remote, monkeypatch):
        import urllib.error

        calls = self._flaky_urlopen(
            monkeypatch, 2,
            lambda: urllib.error.URLError(ConnectionResetError("reset")))
        with pytest.raises(urllib.error.URLError):
            remote.metrics()
        assert len(calls) == 2              # exactly one retry, no loop

    def test_http_error_response_is_not_retried(self, remote,
                                                monkeypatch):
        import urllib.request

        real = urllib.request.urlopen
        calls = []

        def counting(request, timeout=None):
            calls.append(request.get_full_url())
            return real(request, timeout=timeout)

        monkeypatch.setattr(urllib.request, "urlopen", counting)
        with pytest.raises(KeyError):
            remote.result("0" * 64)         # 404: the server spoke
        assert len(calls) == 1

    def test_post_is_never_retried(self, remote, monkeypatch):
        import urllib.error

        calls = self._flaky_urlopen(
            monkeypatch, 1,
            lambda: urllib.error.URLError(ConnectionResetError("reset")))
        with pytest.raises(urllib.error.URLError):
            remote.run("validation", quick=True)
        assert len(calls) == 1              # a POST may not be idempotent
