"""Tests for RemoteSession (repro.api.client).

The contract: ``RemoteSession.run`` is shape-compatible with
``Session.run`` — same call signature, same decoded
:class:`ExperimentResult` — with server-side errors mapped back onto
the exceptions the local session would raise.
"""

import threading

import pytest

from repro.api import (
    ExperimentResult,
    RemoteRunError,
    RemoteSession,
    Session,
    all_experiments,
)
from repro.api.session import install_default
from repro.serve import build_server


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


@pytest.fixture
def server(tmp_path):
    srv = build_server("127.0.0.1", 0, str(tmp_path / "store"),
                       str(tmp_path / "cache"), workers=2, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.close()
    thread.join(timeout=5)


@pytest.fixture
def remote(server):
    return RemoteSession(f"http://127.0.0.1:{server.port}")


class TestRun:
    def test_remote_result_equals_local_result(self, remote):
        local = Session().run("validation", quick=True)
        result = remote.run("validation", quick=True)
        assert isinstance(result, ExperimentResult)
        assert result == local
        assert result.format() == local.format()

    def test_hit_miss_counters_mirror_the_store(self, remote):
        remote.run("validation", quick=True)
        remote.run("validation", quick=True)
        assert (remote.misses, remote.hits) == (1, 1)

    def test_force_is_a_miss(self, remote):
        remote.run("validation", quick=True)
        remote.run("validation", quick=True, force=True)
        assert (remote.misses, remote.hits) == (2, 0)

    def test_params_flow_through(self, remote):
        result = remote.run("fig10", benchmarks=["cnu"], mids=[2.0],
                            program_size=12, trials=1)
        local = Session().run("fig10", benchmarks=("cnu",), mids=(2.0,),
                              program_size=12, trials=1)
        assert result == local


class TestErrorMapping:
    def test_unknown_experiment_is_key_error(self, remote):
        with pytest.raises(KeyError, match="unknown experiment"):
            remote.run("fig99")

    def test_bad_parameter_is_type_error(self, remote):
        with pytest.raises(TypeError, match="has no parameter"):
            remote.run("validation", bogus=1)

    def test_failed_execution_is_remote_run_error(self, remote,
                                                  monkeypatch):
        import dataclasses

        from repro.api import registry

        real = registry._SPECS["validation"]

        def exploding_runner(**kwargs):
            raise RuntimeError("backend exploded")

        monkeypatch.setitem(registry._SPECS, "validation",
                            dataclasses.replace(real,
                                                runner=exploding_runner))
        with pytest.raises(RemoteRunError, match="backend exploded"):
            remote.run("validation", quick=True)

    def test_missing_result_is_key_error(self, remote):
        with pytest.raises(KeyError):
            remote.result("a" * 64)


class TestReadOnlyViews:
    def test_experiments_mirror_the_registry(self, remote):
        listing = remote.experiments()
        assert set(listing) == set(all_experiments())
        assert listing["validation"]["doc"]

    def test_submit_then_poll_job(self, remote):
        import time

        submitted = remote.submit("validation", quick=True)
        deadline = time.time() + 60
        while time.time() < deadline:
            job = remote.job(submitted["id"])
            if job["status"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert job["status"] == "done"
        envelope = remote.result(job["key"])
        assert envelope["experiment"] == "validation"

    def test_unknown_job_is_key_error(self, remote):
        with pytest.raises(KeyError):
            remote.job("nope")

    def test_metrics_round_trip(self, remote):
        remote.run("validation", quick=True)
        metrics = remote.metrics()
        assert metrics["jobs"]["completed"] == 1
        assert "uptime_s" in metrics

    def test_repr_names_the_endpoint(self, remote):
        assert remote.base_url in repr(remote)
