"""Tests for the first-class sweep API (repro.api.sweep + protocol).

The contract under test: a SweepSpec expands **canonically** (axes
sorted by name, cartesian product row-major, last axis fastest), every
cell carries the same store key the equivalent single ``Session.run``
would use (so sweeps replay and dedup for free), validation happens at
construction with the registry's error conventions, and the
SweepResult envelope round-trips like ExperimentResult.  Session and
RemoteSession present the same SessionProtocol surface.
"""

import inspect
import json

import pytest

from repro.api import (
    RemoteSession,
    Session,
    SessionProtocol,
    SweepResult,
    SweepSpec,
    all_experiments,
    store_key,
)
from repro.api.session import install_default
from repro.api.store import canonical_json
from repro.api.sweep import SWEEP_SCHEMA, SWEEP_SCHEMA_VERSION


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


#: The cheapest quick experiment with several sweepable parameters.
FAST = "ext-trapped-ion"


class TestExpansion:
    def test_axes_expand_name_sorted_row_major(self):
        spec = SweepSpec(FAST, axes={"program_size": (10, 20),
                                     "na_mid": (2.0, 3.0)}, quick=True)
        # "na_mid" sorts before "program_size", and the last axis
        # varies fastest.
        assert [cell.params for cell in spec.cells()] == [
            {"na_mid": 2.0, "program_size": 10},
            {"na_mid": 2.0, "program_size": 20},
            {"na_mid": 3.0, "program_size": 10},
            {"na_mid": 3.0, "program_size": 20},
        ]
        assert [cell.index for cell in spec.cells()] == [0, 1, 2, 3]
        assert len(spec) == 4

    def test_axis_order_is_irrelevant(self):
        a = SweepSpec(FAST, axes={"program_size": (10, 20),
                                  "na_mid": (2.0,)}, quick=True)
        b = SweepSpec(FAST, axes={"na_mid": [2.0],
                                  "program_size": [10, 20]}, quick=True)
        assert a == b
        assert a.keys() == b.keys()

    def test_base_applies_to_every_cell(self):
        spec = SweepSpec(FAST, axes={"program_size": (10, 20)},
                         base={"na_mid": 2.0}, quick=True)
        assert all(cell.params["na_mid"] == 2.0
                   for cell in spec.cells())
        assert all(cell.resolved["na_mid"] == 2.0
                   for cell in spec.cells())

    def test_exact_repeat_axis_values_dedupe(self):
        spec = SweepSpec(FAST, axes={"program_size": (10, 10, 20)},
                         quick=True)
        assert len(spec) == 2

    def test_empty_axes_is_a_single_cell(self):
        spec = SweepSpec("validation", quick=True)
        assert len(spec) == 1
        assert spec.cells()[0].params == {}

    def test_cell_key_matches_single_run_key(self):
        spec = SweepSpec(FAST, axes={"program_size": (10, 20)},
                         quick=True)
        registry_spec = all_experiments()[FAST]
        for cell in spec.cells():
            expected = store_key(FAST, registry_spec.resolved_params(
                quick=True, overrides=dict(cell.params)))
            assert cell.key == expected


class TestValidation:
    def test_unknown_experiment_raises_keyerror(self):
        with pytest.raises(KeyError):
            SweepSpec("fig99", axes={"x": (1,)})

    def test_unknown_axis_raises_typeerror_naming_known_set(self):
        with pytest.raises(TypeError) as excinfo:
            SweepSpec(FAST, axes={"bogus": (1, 2)}, quick=True)
        message = str(excinfo.value)
        assert "bogus" in message
        # The registry's convention: the error names the valid set.
        assert "program_size" in message

    def test_unknown_base_raises_typeerror(self):
        with pytest.raises(TypeError):
            SweepSpec(FAST, axes={"program_size": (10,)},
                      base={"nope": 1}, quick=True)

    def test_axis_base_overlap_raises_valueerror(self):
        with pytest.raises(ValueError) as excinfo:
            SweepSpec(FAST, axes={"program_size": (10,)},
                      base={"program_size": 20}, quick=True)
        assert "program_size" in str(excinfo.value)

    def test_scalar_axis_raises_valueerror(self):
        with pytest.raises(ValueError):
            SweepSpec(FAST, axes={"program_size": 10}, quick=True)

    def test_string_axis_raises_valueerror(self):
        with pytest.raises(ValueError):
            SweepSpec(FAST, axes={"program_size": "10"}, quick=True)

    def test_empty_axis_raises_valueerror(self):
        with pytest.raises(ValueError):
            SweepSpec(FAST, axes={"program_size": ()}, quick=True)

    def test_every_driver_rejects_unknown_override_keys(self):
        """Regression pin: resolved_params must reject unknown keys for
        every registered driver, with the TypeError naming the unknown
        key and the known set — the convention SweepSpec, POST /run,
        and POST /sweeps all route through."""
        for name, spec in sorted(all_experiments().items()):
            for quick in (False, True):
                with pytest.raises(TypeError) as excinfo:
                    spec.resolved_params(
                        quick=quick,
                        overrides={"definitely_not_a_param": 1})
                message = str(excinfo.value)
                assert "definitely_not_a_param" in message, name
                known = {p.name for p in spec.params}
                assert any(param in message for param in known) or \
                    not known, name


class TestWireForms:
    def test_spec_round_trips_through_json(self):
        spec = SweepSpec(FAST, axes={"program_size": (10, 20)},
                         base={"na_mid": 2.0}, quick=True)
        wire = json.loads(json.dumps(spec.to_dict()))
        rebuilt = SweepSpec.from_dict(wire)
        assert rebuilt == spec
        assert rebuilt.keys() == spec.keys()

    def test_from_dict_rejects_malformed_payloads(self):
        with pytest.raises(ValueError):
            SweepSpec.from_dict({})
        with pytest.raises(ValueError):
            SweepSpec.from_dict({"experiment": FAST, "axes": []})
        with pytest.raises(TypeError):
            SweepSpec.from_dict("not a mapping")

    def test_sweep_result_envelope_round_trips(self, tmp_path):
        spec = SweepSpec(FAST, axes={"program_size": (10, 20)},
                         quick=True)
        result = Session(store_dir=str(tmp_path)).run_sweep(spec)
        envelope = json.loads(json.dumps(result.to_dict()))
        assert envelope["schema"] == SWEEP_SCHEMA
        assert envelope["schema_version"] == SWEEP_SCHEMA_VERSION
        rebuilt = SweepResult.from_dict(envelope)
        assert canonical_json(rebuilt.to_dict()) == \
            canonical_json(result.to_dict())
        # Cell keys are re-derived, never trusted from the payload.
        tampered = json.loads(json.dumps(envelope))
        tampered["cells"][0]["key"] = "0" * 64
        assert SweepResult.from_dict(tampered).cells[0].key == \
            result.cells[0].key

    def test_sweep_result_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            SweepResult.from_dict({"schema": "nope",
                                   "schema_version": 1})
        with pytest.raises(ValueError):
            SweepResult.from_dict({"schema": SWEEP_SCHEMA,
                                   "schema_version": 999})

    def test_sweep_result_length_mismatch(self):
        spec = SweepSpec(FAST, axes={"program_size": (10, 20)},
                         quick=True)
        with pytest.raises(ValueError):
            SweepResult(experiment=FAST, quick=True,
                        cells=spec.cells(), results=())


class TestSessionSweeps:
    def test_run_sweep_executes_then_replays(self, tmp_path):
        spec = SweepSpec(FAST, axes={"program_size": (10, 20)},
                         quick=True)
        first = Session(store_dir=str(tmp_path))
        result = first.run_sweep(spec)
        assert len(result) == 2
        assert first.misses == 2 and first.hits == 0

        second = Session(store_dir=str(tmp_path))
        replayed = second.run_sweep(spec)
        assert second.tasks_executed == 0
        assert second.hits == 2 and second.misses == 0
        assert canonical_json(replayed.to_dict()) == \
            canonical_json(result.to_dict())

    def test_cell_and_single_run_share_one_stored_envelope(
            self, tmp_path):
        spec = SweepSpec(FAST, axes={"program_size": (10,)}, quick=True)
        sweep_session = Session(store_dir=str(tmp_path))
        sweep_session.run_sweep(spec)

        single = Session(store_dir=str(tmp_path))
        result = single.run(FAST, quick=True, program_size=10)
        # The sweep's stored cell satisfied the single run: a hit.
        assert single.hits == 1 and single.tasks_executed == 0
        assert result.to_dict() == \
            sweep_session.store.get(spec.cells()[0].key)

    def test_iter_sweep_yields_incrementally(self, tmp_path):
        spec = SweepSpec(FAST, axes={"program_size": (10, 20)},
                         quick=True)
        session = Session(store_dir=str(tmp_path))
        iterator = session.iter_sweep(spec)
        cell, result = next(iterator)
        assert cell.index == 0
        # Only the first cell has run so far.
        assert session.misses == 1
        assert session.store.get(spec.cells()[1].key) is None
        rest = list(iterator)
        assert [c.index for c, _ in rest] == [1]

    def test_force_recomputes_every_cell(self, tmp_path):
        spec = SweepSpec(FAST, axes={"program_size": (10,)}, quick=True)
        session = Session(store_dir=str(tmp_path))
        session.run_sweep(spec)
        assert (session.hits, session.misses) == (0, 1)
        # force skips the store lookup: the ledger records a second
        # miss, never a hit, even though the envelope already exists.
        session.run_sweep(spec, force=True)
        assert (session.hits, session.misses) == (0, 2)

    def test_format_has_one_header_per_cell(self, tmp_path):
        spec = SweepSpec(FAST, axes={"program_size": (10, 20)},
                         quick=True)
        text = Session(store_dir=str(tmp_path)).run_sweep(spec).format()
        assert text.count(f"== {FAST}[") == 2
        assert "program_size=10" in text and "program_size=20" in text


class TestSessionProtocol:
    def test_both_sessions_satisfy_the_protocol(self):
        assert isinstance(Session(), SessionProtocol)
        assert isinstance(RemoteSession("http://127.0.0.1:1"),
                          SessionProtocol)

    @pytest.mark.parametrize("method", ["run", "run_sweep", "iter_sweep"])
    def test_signatures_cannot_drift(self, method):
        """Parameter names, kinds, and defaults must stay identical
        between the local and remote surfaces."""
        def shape(cls):
            signature = inspect.signature(getattr(cls, method))
            return [(p.name, p.kind, p.default)
                    for p in signature.parameters.values()]

        assert shape(Session) == shape(RemoteSession)
