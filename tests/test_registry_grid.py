"""Registry-wide contracts of the task-grid refactor.

Two invariants, enforced for *every* registered experiment so no future
driver can quietly regress to a serial, cache-bypassing loop:

1. **No compile escapes the session cache.**  Running any experiment
   under a session must route every single compilation through
   ``cached_compile`` — instrumented by counting raw ``compile_circuit``
   invocations and asserting the count equals the session cache's
   recorded misses (a direct compile would inflate the count without a
   matching miss).
2. **Worker count changes nothing.**  Each newly-gridded driver must
   produce identical results at ``jobs=1`` and ``jobs=2`` over a shared
   cold-then-warm disk cache — compared on both the formatted text and
   the full ``to_dict`` envelope, so even non-rendered fields cannot
   drift.
"""

import pytest

from repro.analysis import architectures
from repro.api import Session, all_experiments
from repro.api.registry import get_experiment
from repro.api.session import install_default
from repro.experiments import ALL_EXPERIMENTS


@pytest.fixture(autouse=True)
def fresh_state():
    saved = install_default(None)
    architectures.clear_cache()
    yield
    architectures.clear_cache()
    install_default(saved)


def test_no_driver_imports_the_raw_compiler():
    """Drivers must compile via the session cache, never directly; a
    module-level ``compile_circuit`` import would dodge the
    instrumentation below."""
    for name, module in ALL_EXPERIMENTS.items():
        assert not hasattr(module, "compile_circuit"), (
            f"experiment {name!r} ({module.__name__}) imports "
            "compile_circuit directly; route it through "
            "repro.exec.cache.cached_compile"
        )


@pytest.mark.parametrize("name", sorted(all_experiments()))
def test_every_compile_goes_through_the_session_cache(name, monkeypatch):
    from repro.core import compiler as compiler_module

    real_compile = compiler_module.compile_circuit
    calls = {"count": 0}

    def counting_compile(*args, **kwargs):
        calls["count"] += 1
        return real_compile(*args, **kwargs)

    monkeypatch.setattr(compiler_module, "compile_circuit",
                        counting_compile)
    session = Session(jobs=1)
    session.run(name, quick=True)
    stats = session.cache_stats()
    # Every physical compilation must have been preceded by a lookup on
    # THIS session's cache (= a recorded miss); compiles dodging the
    # cache leave the left side larger.
    assert calls["count"] == stats["misses"], (
        f"experiment {name!r}: {calls['count']} compilations but only "
        f"{stats['misses']} session-cache misses — some compile bypassed "
        "the session cache"
    )


#: Reduced parameter sets for the drivers gridded in this PR — small
#: enough that running each twice (serial + 2 workers) stays cheap.
GRIDDED_QUICK = {
    "ablation-lookahead": dict(benchmarks=("bv",), mids=(1.0, 3.0),
                               program_size=12, windows=(1, 3)),
    "ablation-zones": dict(benchmarks=("qaoa",), program_size=12),
    "ablation-margin": dict(program_size=16, trials=1,
                            margins=(1.0, 2.0)),
    "ext-scaling": dict(grid_sides=(4, 6)),
    "ext-ejection": dict(shots=20),
    "ext-geometry": dict(benchmarks=("bv",), grid_side=4),
    "ext-trapped-ion": dict(benchmarks=("bv",), program_size=10),
    "ext-noisy-validation": dict(benchmarks=("bv",), program_size=6,
                                 shots=60),
    "fig14": dict(target_shots=5, program_size=12),
    "validation": dict(),
}


@pytest.mark.parametrize("name", sorted(GRIDDED_QUICK))
def test_newly_gridded_driver_identical_at_jobs_1_and_2(name, tmp_path):
    params = GRIDDED_QUICK[name]
    spec = get_experiment(name)
    # Parallel first, on a COLD shared cache: workers must read the
    # compile artifacts the parent pinned, not race to measure their own.
    with Session(jobs=2, cache_dir=str(tmp_path)).activate():
        parallel = spec.run(**params)
    architectures.clear_cache()
    with Session(jobs=1, cache_dir=str(tmp_path)).activate():
        serial = spec.run(**params)
    assert parallel.format() == serial.format()
    assert parallel.to_dict() == serial.to_dict()
