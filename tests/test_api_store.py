"""Tests for the persistent result store (repro.api.store).

The tentpole contract: ``Session(store_dir=...).run`` is read-through —
running any experiment twice recomputes nothing the second time (the
ledger records a hit, zero compiles, zero tasks dispatched) and replays
a result whose JSON envelope is byte-identical to the first run's.
Store keys are pinned by a fixture so an accidental digest-schema change
fails tier-1 instead of silently orphaning every stored result.
"""

import json
import pathlib

import pytest

from repro.api import (
    ExperimentResult,
    ResultStore,
    Session,
    all_experiments,
    store_key,
)
from repro.api.session import install_default
from repro.api.store import canonical_json
from repro.exec import keys as exec_keys

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: Small enough for a unit test, big enough to exercise a real grid.
TINY = dict(benchmarks=("cnu",), mids=(2.0,), program_size=12, trials=1)


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


class TestStoreKey:
    def test_quick_preset_digests_are_pinned(self):
        """Every registered experiment's --quick store key matches the
        committed fixture.  If this fails, either you changed an
        experiment's parameter schema / quick preset, or you changed the
        digest schema itself — bump RESULT_SCHEMA_VERSION or
        repro.exec.keys.SCHEMA_VERSION deliberately and regenerate
        tests/fixtures/store_keys.json, knowing every stored result is
        orphaned."""
        pinned = json.loads((FIXTURES / "store_keys.json").read_text())
        current = {name: store_key(name, spec.resolved_params(quick=True))
                   for name, spec in all_experiments().items()}
        assert current == pinned

    def test_quick_and_explicit_params_share_a_key(self):
        spec = all_experiments()["fig10"]
        explicit = store_key(
            "fig10", spec.resolved_params(overrides=dict(spec.quick)))
        assert store_key("fig10", spec.resolved_params(quick=True)) == explicit

    def test_params_change_the_key(self):
        spec = all_experiments()["fig10"]
        base = store_key("fig10", spec.resolved_params(quick=True))
        other = store_key("fig10", spec.resolved_params(
            quick=True, overrides={"trials": 3}))
        assert base != other

    def test_jobs_is_not_semantic(self):
        """Execution policy must not fragment keys: output is pinned at
        any worker count."""
        spec = all_experiments()["validation"]
        assert (store_key("validation",
                          spec.resolved_params(overrides={"jobs": 4}))
                == store_key("validation", spec.resolved_params()))

    def test_schema_version_bumps_rekey_everything(self, monkeypatch):
        spec = all_experiments()["validation"]
        params = spec.resolved_params(quick=True)
        base = store_key("validation", params)
        from repro.api import results as results_mod

        monkeypatch.setattr(results_mod, "RESULT_SCHEMA_VERSION", 999)
        rekeyed_result = store_key("validation", params)
        monkeypatch.undo()
        monkeypatch.setattr(exec_keys, "SCHEMA_VERSION", 999)
        rekeyed_exec = store_key("validation", params)
        assert base != rekeyed_result
        assert base != rekeyed_exec
        assert rekeyed_result != rekeyed_exec

    def test_unstorable_param_is_rejected(self):
        import numpy as np

        with pytest.raises(ValueError, match="no canonical store form"):
            store_key("fig10", {"rng": np.random.default_rng(1)})

    def test_list_spelling_shares_the_tuple_key(self):
        """Drivers accept sequence params as lists or tuples
        interchangeably; turning a store on must neither reject nor
        re-key the list spelling."""
        spec = all_experiments()["fig10"]
        as_tuple = store_key("fig10", spec.resolved_params(
            quick=True, overrides={"mids": (2.0, 3.0)}))
        as_list = store_key("fig10", spec.resolved_params(
            quick=True, overrides={"mids": [2.0, 3.0]}))
        assert as_tuple == as_list

    def test_value_types_are_part_of_the_key(self):
        """A float, its string spelling, its int floor, and bool/int
        must all key differently — replaying the wrong stored result on
        a type mix-up would be a silent wrong answer."""
        spellings = [{"mid": 3.0}, {"mid": "3.0"}, {"mid": 3},
                     {"mid": True}, {"mid": 1}]
        digests = {store_key("x", params) for params in spellings}
        assert len(digests) == len(spellings)


class TestReadThrough:
    def test_second_run_recomputes_nothing(self, tmp_path):
        """The acceptance criterion: a replay is a pure store lookup —
        ledger hit, zero compiles, zero tasks dispatched, byte-identical
        envelope."""
        first = Session(store_dir=str(tmp_path / "store"))
        miss = first.run("fig10", **TINY)
        assert first.store.misses == 1 and first.store.hits == 0
        assert first.tasks_executed > 0

        second = Session(store_dir=str(tmp_path / "store"))
        hit = second.run("fig10", **TINY)
        assert second.store.hits == 1 and second.store.misses == 0
        assert second.tasks_executed == 0
        assert second.cache_stats()["misses"] == 0
        assert second.cache_stats()["memory_hits"] == 0
        assert second.cache_stats()["disk_hits"] == 0

        assert hit == miss
        assert hit.format() == miss.format()
        assert canonical_json(hit.to_dict()) == canonical_json(miss.to_dict())

        events = ResultStore(str(tmp_path / "store")).ledger_entries()
        assert [e["hit"] for e in events] == [False, True]
        assert {e["experiment"] for e in events} == {"fig10"}
        assert all(e["wall_s"] >= 0 and "timestamp" in e for e in events)

    def test_replayed_runner_is_never_called(self, tmp_path, monkeypatch):
        import dataclasses

        from repro.api import registry

        session = Session(store_dir=str(tmp_path))
        session.run("fig10", **TINY)
        spec = all_experiments()["fig10"]

        def explode(**kwargs):
            raise AssertionError("store hit must not re-run the driver")

        monkeypatch.setitem(registry._SPECS, "fig10",
                            dataclasses.replace(spec, runner=explode))
        replay = Session(store_dir=str(tmp_path)).run("fig10", **TINY)
        assert isinstance(replay, ExperimentResult)

    def test_force_recomputes_and_refreshes(self, tmp_path):
        session = Session(store_dir=str(tmp_path))
        session.run("fig10", **TINY)
        forced = session.run("fig10", force=True, **TINY)
        assert isinstance(forced, ExperimentResult)
        # Both events are misses: force never reads the stored entry.
        assert [e["hit"] for e in session.store.ledger_entries()] == [
            False, False]

    def test_without_store_behavior_is_unchanged(self):
        session = Session()
        assert session.store is None
        result = session.run("fig10", **TINY)
        assert isinstance(result, ExperimentResult)

    def test_corrupt_entry_degrades_to_miss_and_heals(self, tmp_path):
        session = Session(store_dir=str(tmp_path))
        session.run("fig10", **TINY)
        (key, path, _, _), = session.store.entries()
        with open(path, "w") as handle:
            handle.write("{ not json")

        healed = Session(store_dir=str(tmp_path))
        result = healed.run("fig10", **TINY)
        assert healed.store.misses == 1
        assert isinstance(result, ExperimentResult)
        # ... and the entry is valid again afterwards.
        assert healed.store.get(key)["experiment"] == "fig10"

    def test_stale_schema_version_entry_is_ignored(self, tmp_path):
        """An envelope stored under the right key but an old
        RESULT_SCHEMA_VERSION (e.g. written mid-upgrade) must be
        recomputed, not replayed."""
        session = Session(store_dir=str(tmp_path))
        session.run("fig10", **TINY)
        (key, path, _, _), = session.store.entries()
        envelope = json.loads(open(path).read())
        envelope["schema_version"] = 0
        session.store.put(key, envelope)

        fresh = Session(store_dir=str(tmp_path))
        result = fresh.run("fig10", **TINY)
        assert fresh.store.misses == 1 and fresh.store.hits == 0
        assert isinstance(result, ExperimentResult)

    def test_unwritable_store_degrades_to_passthrough(self, tmp_path,
                                                      monkeypatch, capsys):
        session = Session(store_dir=str(tmp_path))

        def refuse(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("os.makedirs", refuse)
        result = session.run("fig10", **TINY)
        assert isinstance(result, ExperimentResult)
        # The degrade is observable — once, not per event.
        assert capsys.readouterr().err.count("is not writable") == 1
        session.run("fig10", **TINY)
        assert "is not writable" not in capsys.readouterr().err

    def test_store_and_store_dir_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            Session(store=ResultStore(str(tmp_path)),
                    store_dir=str(tmp_path))


class TestLedgerTail:
    def _write_ledger(self, tmp_path, count):
        import os

        store = ResultStore(str(tmp_path))
        os.makedirs(store.path, exist_ok=True)
        with open(store.ledger_path(), "w", encoding="utf-8") as handle:
            for index in range(count):
                handle.write(json.dumps(
                    {"experiment": "x", "key": f"k{index}", "hit": False,
                     "timestamp": float(index), "wall_s": 0.0},
                    sort_keys=True) + "\n")
        return store

    def test_tail_returns_the_last_n_oldest_first(self, tmp_path):
        store = self._write_ledger(tmp_path, 10)
        assert [e["key"] for e in store.tail(3)] == ["k7", "k8", "k9"]

    def test_tail_matches_ledger_entries_suffix(self, tmp_path):
        """tail(n) must agree with the unbounded reader — including
        across its internal block boundaries, hence enough entries that
        the ledger spans multiple 64 KiB read blocks."""
        store = self._write_ledger(tmp_path, 2000)
        full = store.ledger_entries()
        assert len(full) == 2000
        for n in (1, 5, 100, 1999, 2000, 5000):
            assert store.tail(n) == full[-n:]

    def test_tail_of_missing_ledger_is_empty(self, tmp_path):
        assert ResultStore(str(tmp_path)).tail(5) == []

    def test_tail_nonpositive_is_empty(self, tmp_path):
        store = self._write_ledger(tmp_path, 3)
        assert store.tail(0) == []
        assert store.tail(-1) == []

    def test_tail_skips_malformed_lines_in_the_window(self, tmp_path):
        store = self._write_ledger(tmp_path, 5)
        with open(store.ledger_path(), "a", encoding="utf-8") as handle:
            handle.write("{ torn line\n")
        tailed = store.tail(3)
        # The torn line occupies a window slot but decodes to nothing.
        assert [e["key"] for e in tailed] == ["k3", "k4"]

    def test_tail_is_bounded_not_a_full_read(self, tmp_path,
                                             monkeypatch):
        """The point of the satellite: tailing a huge ledger must not
        read the whole file."""
        store = self._write_ledger(tmp_path, 20000)
        import os

        total = os.path.getsize(store.ledger_path())
        read = []
        original = open

        class CountingHandle:
            def __init__(self, handle):
                self._handle = handle

            def read(self, *args):
                data = self._handle.read(*args)
                read.append(len(data))
                return data

            def __getattr__(self, name):
                return getattr(self._handle, name)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                self._handle.close()

        def counting_open(path, *args, **kwargs):
            return CountingHandle(original(path, *args, **kwargs))

        monkeypatch.setattr("builtins.open", counting_open)
        assert len(store.tail(10)) == 10
        assert sum(read) < total / 4


class TestConcurrentPersistence:
    """Satellite: two writers racing one key through atomic replace
    never corrupt an entry, and a concurrent reader sees either a miss
    or valid bytes — never a torn envelope."""

    def _envelope(self, marker: int) -> dict:
        return {"schema": "repro.experiment-result", "schema_version": 1,
                "experiment": "race", "result_type": "RaceResult",
                "data": {"marker": marker, "pad": "x" * 2048}}

    def test_racing_writers_and_reader_never_see_torn_bytes(self,
                                                            tmp_path):
        import threading

        store = ResultStore(str(tmp_path))
        key = "ab" + "0" * 62
        valid = {canonical_json(self._envelope(m)) for m in range(2)}
        stop = threading.Event()
        failures = []

        def writer(marker):
            envelope = self._envelope(marker)
            while not stop.is_set():
                store.put(key, envelope)

        def reader():
            reads = 0
            while not stop.is_set() or reads == 0:
                envelope = ResultStore(str(tmp_path)).get(key)
                if envelope is None:
                    continue  # a miss is a legal mid-race outcome
                reads += 1
                if canonical_json(envelope) not in valid:
                    failures.append(envelope)
                    return

        threads = [threading.Thread(target=writer, args=(m,))
                   for m in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not failures
        # The surviving entry is one of the two written envelopes...
        assert canonical_json(store.get(key)) in valid
        # ... and the race left no orphaned temp files behind.
        import os

        shard = os.path.dirname(store._file_for(key))
        assert [name for name in os.listdir(shard)
                if name.startswith(".tmp-")] == []

    def test_racing_processes_write_without_corruption(self, tmp_path):
        """Same invariant across real process boundaries (spawn), where
        no GIL serializes the writers."""
        import multiprocessing

        key = "cd" + "1" * 62
        context = multiprocessing.get_context("spawn")
        workers = [
            context.Process(target=_hammer_store_process,
                            args=(str(tmp_path), key, marker, 40))
            for marker in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        store = ResultStore(str(tmp_path))
        envelope = store.get(key)
        assert envelope["experiment"] == "race"
        assert envelope["data"]["marker"] in (0, 1)


def _hammer_store_process(path: str, key: str, marker: int,
                          iterations: int) -> None:
    """Module-level so spawn can pickle it: write and read one key in a
    tight loop, exiting non-zero on any torn read."""
    from repro.api.store import ResultStore as Store

    store = Store(path)
    envelope = {"schema": "repro.experiment-result", "schema_version": 1,
                "experiment": "race", "result_type": "RaceResult",
                "data": {"marker": marker, "pad": "x" * 2048}}
    for _ in range(iterations):
        store.put(key, envelope)
        seen = store.get(key)
        if seen is not None and seen.get("experiment") != "race":
            raise SystemExit(3)


class TestMaintenance:
    def _fill(self, tmp_path, runs=3):
        session = Session(store_dir=str(tmp_path))
        for trials in range(1, runs + 1):
            session.run("fig10", **dict(TINY, trials=trials))
        return session.store

    def test_gc_bounds_the_directory(self, tmp_path):
        store = self._fill(tmp_path)
        assert store.stats()["entries"] == 3
        import os

        entries = sorted(store.entries(), key=lambda r: (r[3], r[1]))
        for age, (_, path, _, _) in enumerate(reversed(entries)):
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        entries = sorted(store.entries(), key=lambda r: (r[3], r[1]))
        keep = entries[-1][2]  # newest entry only
        outcome = store.gc(keep)
        assert outcome["removed"] == 2
        assert outcome["remaining_entries"] == 1
        (survivor, _, _, _), = store.entries()
        assert survivor == entries[-1][0]
        # The ledger is never evicted.
        assert store.ledger_entries()

    def test_gc_tie_break_is_deterministic(self, tmp_path):
        import os

        store = self._fill(tmp_path)
        before = sorted(path for _, path, _, _ in store.entries())
        for path in before:
            os.utime(path, (1_000_000, 1_000_000))  # exact mtime tie
        keep_two = sum(s for _, _, s, _ in store.entries()) - 1
        outcome = store.gc(keep_two)
        assert outcome["removed"] == 1
        # With every mtime equal, the lexicographically smallest path
        # goes first — on every platform, every run.
        survivors = sorted(path for _, path, _, _ in store.entries())
        assert survivors == before[1:]

    def test_gc_under_budget_is_a_noop(self, tmp_path):
        store = self._fill(tmp_path)
        assert store.gc(10**9)["removed"] == 0
        assert store.stats()["entries"] == 3

    def test_gc_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(str(tmp_path)).gc(-1)

    def test_get_touches_mtime_for_lru(self, tmp_path):
        import os

        store = self._fill(tmp_path, runs=2)
        old, new = sorted(store.entries(), key=lambda r: (r[3], r[1]))[:2]
        os.utime(old[1], (1, 1))
        store.get(old[0])  # a read makes it most-recently-used again
        refreshed = {key: mtime for key, _, _, mtime in store.entries()}
        assert refreshed[old[0]] > 1

    def test_peek_preserves_lru_order(self, tmp_path):
        """Inspection (store ls / show) must not refresh recency, or a
        listing right before gc would flatten the LRU order."""
        import os

        store = self._fill(tmp_path, runs=2)
        (old_key, old_path, _, _), _ = sorted(
            store.entries(), key=lambda r: (r[3], r[1]))
        os.utime(old_path, (1, 1))
        assert store.peek(old_key)["experiment"] == "fig10"
        mtimes = {key: mtime for key, _, _, mtime in store.entries()}
        assert mtimes[old_key] == 1

    def test_gc_sweeps_orphaned_temp_files(self, tmp_path):
        """A writer killed between mkstemp and os.replace leaves
        .tmp-*.json orphans that are invisible to entries(); gc must
        reclaim them or the directory stays over budget forever."""
        import os

        store = self._fill(tmp_path, runs=1)
        shard = os.path.dirname(store.entries()[0][1])
        orphan = os.path.join(shard, ".tmp-orphan.json")
        with open(orphan, "wb") as handle:
            handle.write(b"x" * 100)
        os.utime(orphan, (1, 1))  # long-dead writer

        in_flight = os.path.join(shard, ".tmp-live.json")
        with open(in_flight, "wb") as handle:
            handle.write(b"x")  # a live writer's fresh temp file

        store.gc(10**9)  # under budget: entries stay, orphan goes
        assert not os.path.exists(orphan)
        assert os.path.exists(in_flight)
        assert store.stats()["entries"] == 1
