"""Tests for the persistent compile cache (repro.exec.cache)."""

import os
import pickle

import pytest

from repro.api.session import Session, install_default
from repro.core.compiler import compile_circuit
from repro.core.config import CompilerConfig
from repro.exec import cache as exec_cache
from repro.exec.cache import CompileCache, cached_compile
from repro.exec.keys import compile_key
from repro.hardware.topology import Topology
from repro.workloads.registry import build_circuit


@pytest.fixture(autouse=True)
def fresh_default_session():
    """Isolate every test from the process default session."""
    saved = install_default(None)
    yield
    install_default(saved)


def _inputs():
    circuit = build_circuit("bv", 6)
    topology = Topology.square(5, 3.0)
    config = CompilerConfig(max_interaction_distance=3.0)
    return circuit, topology, config


def test_memory_tier_shares_one_artifact():
    circuit, topology, config = _inputs()
    with Session().activate() as session:
        first = cached_compile(circuit, topology, config)
        second = cached_compile(circuit, Topology.square(5, 3.0), config)
        assert first is second
        stats = session.cache.stats()
    assert stats["memory_hits"] == 1 and stats["misses"] == 1


def test_disk_tier_round_trip(tmp_path):
    circuit, topology, config = _inputs()
    with Session(cache_dir=str(tmp_path)).activate():
        first = cached_compile(circuit, topology, config)

    # A second process is simulated by a fresh session pointed at the
    # same directory: the program must come back from disk with
    # identical content, including the pinned compile time.
    with Session(cache_dir=str(tmp_path)).activate() as fresh:
        second = cached_compile(circuit, topology, config)
        assert fresh.cache.stats()["disk_hits"] == 1
    assert second is not first
    assert second.summary() == first.summary()
    assert second.compile_seconds == first.compile_seconds
    assert second.schedule == first.schedule


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    circuit, topology, config = _inputs()
    with Session(cache_dir=str(tmp_path)).activate() as session:
        cached_compile(circuit, topology, config)
        key = compile_key(circuit, topology, config)
        entry = session.cache._file_for(key)
    with open(entry, "wb") as handle:
        handle.write(b"not a pickle")

    with Session(cache_dir=str(tmp_path)).activate() as fresh:
        program = cached_compile(circuit, topology, config)
        assert program.op_count > 0
        assert fresh.cache.stats()["disk_hits"] == 0


def test_non_program_pickle_is_a_miss(tmp_path):
    cache = CompileCache(str(tmp_path))
    target = cache._file_for("ab" + "0" * 62)
    os.makedirs(os.path.dirname(target), exist_ok=True)
    with open(target, "wb") as handle:
        pickle.dump({"not": "a program"}, handle)
    assert cache.lookup("ab" + "0" * 62) is None


def test_persist_false_stores_nothing(tmp_path):
    """Transient compiles (hole-pattern recompilations) must not grow
    either cache tier — their keys essentially never recur."""
    circuit, topology, config = _inputs()
    with Session(cache_dir=str(tmp_path)).activate() as session:
        cached_compile(circuit, topology, config, persist=False)
        files = [f for _, _, names in os.walk(tmp_path) for f in names]
        assert files == []
        assert session.cache.stats()["entries_in_memory"] == 0
        # ... but a transient lookup still benefits from persisted entries.
        stored = cached_compile(circuit, topology, config)
        assert cached_compile(circuit, topology, config, persist=False) is stored


def test_unwritable_cache_dir_degrades_to_memory(tmp_path):
    blocked = tmp_path / "blocked"
    blocked.mkdir()
    os.chmod(blocked, 0o500)
    try:
        circuit, topology, config = _inputs()
        with Session(cache_dir=str(blocked)).activate():
            program = cached_compile(circuit, topology, config)
            assert program.op_count > 0
    finally:
        os.chmod(blocked, 0o700)


def test_mid_mismatch_normalized_like_compile_circuit(tmp_path):
    """cached_compile must key on the *effective* config: a config whose
    MID disagrees with the topology is normalized exactly the way
    compile_circuit normalizes it, so both spellings share one entry."""
    circuit, topology, _ = _inputs()
    with Session().activate():
        stale_config = CompilerConfig(max_interaction_distance=9.0)
        via_cache = cached_compile(circuit, topology, stale_config)
        direct = compile_circuit(circuit, topology, stale_config)
        assert via_cache.summary() == direct.summary()
        again = cached_compile(
            circuit, topology, CompilerConfig(max_interaction_distance=3.0)
        )
        assert again is via_cache


def test_cached_compile_equals_direct_compile():
    circuit, topology, config = _inputs()
    with Session().activate():
        cached = cached_compile(circuit, topology, config)
    direct = compile_circuit(circuit, topology, config)
    assert cached.summary() == direct.summary()
    assert cached.schedule == direct.schedule
    assert cached.initial_layout == direct.initial_layout


def test_explicit_cache_argument_bypasses_session():
    """cached_compile(cache=...) ignores the active session's cache."""
    circuit, topology, config = _inputs()
    private = CompileCache(None)
    with Session().activate() as session:
        program = cached_compile(circuit, topology, config, cache=private)
        assert program.op_count > 0
        assert session.cache.stats()["misses"] == 0
    assert private.stats()["misses"] == 1


def test_get_cache_resolves_active_session():
    outer = exec_cache.get_cache()
    inner_session = Session()
    with inner_session.activate():
        assert exec_cache.get_cache() is inner_session.cache
    assert exec_cache.get_cache() is outer


# -- disk-tier maintenance ----------------------------------------------------------


def _fill_cache(tmp_path, sizes=(4, 6, 8)):
    cache_dir = str(tmp_path)
    with Session(cache_dir=cache_dir).activate() as session:
        topology = Topology.square(5, 3.0)
        config = CompilerConfig(max_interaction_distance=3.0)
        for size in sizes:
            cached_compile(build_circuit("bv", size), topology, config)
        return session.cache


def test_disk_stats_counts_entries(tmp_path):
    cache = _fill_cache(tmp_path)
    stats = cache.disk_stats()
    assert stats["entries"] == 3
    assert stats["total_bytes"] > 0
    assert stats["path"] == str(tmp_path)


def test_clear_disk_removes_everything(tmp_path):
    cache = _fill_cache(tmp_path)
    assert cache.clear_disk() == 3
    assert cache.disk_stats()["entries"] == 0


def test_prune_disk_evicts_lru_first(tmp_path):
    cache = _fill_cache(tmp_path)
    entries = sorted(cache.disk_entries(), key=lambda e: (e[2], e[0]))
    # Make the recency order deterministic regardless of filesystem
    # timestamp granularity.
    for age, (path, _, _) in enumerate(reversed(entries)):
        os.utime(path, (1_000_000 + age, 1_000_000 + age))
    entries = sorted(cache.disk_entries(), key=lambda e: (e[2], e[0]))
    keep_bytes = entries[-1][1]  # newest entry only
    outcome = cache.prune_disk(keep_bytes)
    assert outcome["removed"] == 2
    assert outcome["remaining_entries"] == 1
    remaining = cache.disk_entries()
    assert len(remaining) == 1
    assert remaining[0][0] == entries[-1][0]


def test_prune_disk_same_mtime_ties_break_on_path(tmp_path):
    """Coarse (1s) filesystem mtimes routinely stamp entries written in
    one burst with the *same* mtime; eviction order must stay
    deterministic via the path tie-break, run after run."""
    cache = _fill_cache(tmp_path)
    paths = sorted(path for path, _, _ in cache.disk_entries())
    for path in paths:
        os.utime(path, (1_000_000, 1_000_000))  # exact three-way tie
    keep_two = sum(size for _, size, _ in cache.disk_entries()) - 1
    outcome = cache.prune_disk(keep_two)
    assert outcome["removed"] == 1
    # The lexicographically smallest path is evicted first.
    assert sorted(p for p, _, _ in cache.disk_entries()) == paths[1:]


def test_prune_disk_noop_under_budget(tmp_path):
    cache = _fill_cache(tmp_path)
    outcome = cache.prune_disk(10**9)
    assert outcome["removed"] == 0
    assert cache.disk_stats()["entries"] == 3


def test_clear_and_prune_sweep_orphaned_temp_files(tmp_path):
    """A writer killed between mkstemp and os.replace leaves .tmp-*
    files; maintenance must reclaim them or the tier stays over budget
    forever."""
    cache = _fill_cache(tmp_path)
    shard = os.path.dirname(cache.disk_entries()[0][0])
    orphan = os.path.join(shard, ".tmp-orphan.pkl")
    with open(orphan, "wb") as handle:
        handle.write(b"x" * 100)
    os.utime(orphan, (1, 1))  # long-dead writer

    cache.prune_disk(10**9)  # under budget: entries stay, orphan goes
    assert not os.path.exists(orphan)
    assert cache.disk_stats()["entries"] == 3

    with open(orphan, "wb") as handle:
        handle.write(b"x")
    os.utime(orphan, (1, 1))  # long-dead writer again
    cache.clear_disk()
    assert not os.path.exists(orphan)
    assert cache.disk_stats()["entries"] == 0


def test_prune_keeps_fresh_temp_files(tmp_path):
    """A temp file a live writer just created must not be swept."""
    cache = _fill_cache(tmp_path)
    shard = os.path.dirname(cache.disk_entries()[0][0])
    in_flight = os.path.join(shard, ".tmp-inflight.pkl")
    with open(in_flight, "wb") as handle:
        handle.write(b"x")
    cache.prune_disk(10**9)
    assert os.path.exists(in_flight)


def test_clear_keeps_same_second_temp_files(tmp_path):
    """The mtime-boundary regression: with 1s-granularity mtimes, a temp
    file a live writer touched in the same second as the clear used to
    fall to the `<=` cutoff and be swept mid-write.  It must survive."""
    cache = _fill_cache(tmp_path)
    shard = os.path.dirname(cache.disk_entries()[0][0])
    in_flight = os.path.join(shard, ".tmp-live-writer.pkl")
    with open(in_flight, "wb") as handle:
        handle.write(b"x")  # mtime == "now", possibly floored to 1s
    assert cache.clear_disk() == 3
    assert os.path.exists(in_flight)
    assert cache.disk_stats()["entries"] == 0
