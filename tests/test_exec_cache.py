"""Tests for the persistent compile cache (repro.exec.cache)."""

import os
import pickle

import pytest

from repro.core.compiler import compile_circuit
from repro.core.config import CompilerConfig
from repro.exec import cache as exec_cache
from repro.exec.cache import CompileCache, cached_compile
from repro.exec.keys import compile_key
from repro.hardware.topology import Topology
from repro.workloads.registry import build_circuit


@pytest.fixture(autouse=True)
def fresh_global_cache():
    """Isolate every test from the process-global cache, and restore it."""
    saved = exec_cache._ACTIVE
    exec_cache._ACTIVE = None
    yield
    exec_cache._ACTIVE = saved


def _inputs():
    circuit = build_circuit("bv", 6)
    topology = Topology.square(5, 3.0)
    config = CompilerConfig(max_interaction_distance=3.0)
    return circuit, topology, config


def test_memory_tier_shares_one_artifact():
    exec_cache.set_cache_dir(None)
    circuit, topology, config = _inputs()
    first = cached_compile(circuit, topology, config)
    second = cached_compile(circuit, Topology.square(5, 3.0), config)
    assert first is second
    stats = exec_cache.get_cache().stats()
    assert stats["memory_hits"] == 1 and stats["misses"] == 1


def test_disk_tier_round_trip(tmp_path):
    circuit, topology, config = _inputs()
    exec_cache.set_cache_dir(str(tmp_path))
    first = cached_compile(circuit, topology, config)

    # A second process is simulated by resetting to a fresh cache object
    # pointed at the same directory: the program must come back from disk
    # with identical content, including the pinned compile time.
    exec_cache.set_cache_dir(str(tmp_path))
    second = cached_compile(circuit, topology, config)
    assert second is not first
    assert second.summary() == first.summary()
    assert second.compile_seconds == first.compile_seconds
    assert second.schedule == first.schedule
    assert exec_cache.get_cache().stats()["disk_hits"] == 1


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    circuit, topology, config = _inputs()
    exec_cache.set_cache_dir(str(tmp_path))
    cached_compile(circuit, topology, config)

    key = compile_key(circuit, topology, config)
    entry = exec_cache.get_cache()._file_for(key)
    with open(entry, "wb") as handle:
        handle.write(b"not a pickle")

    exec_cache.set_cache_dir(str(tmp_path))
    program = cached_compile(circuit, topology, config)
    assert program.op_count > 0
    assert exec_cache.get_cache().stats()["disk_hits"] == 0


def test_non_program_pickle_is_a_miss(tmp_path):
    cache = CompileCache(str(tmp_path))
    target = cache._file_for("ab" + "0" * 62)
    os.makedirs(os.path.dirname(target), exist_ok=True)
    with open(target, "wb") as handle:
        pickle.dump({"not": "a program"}, handle)
    assert cache.lookup("ab" + "0" * 62) is None


def test_persist_false_stores_nothing(tmp_path):
    """Transient compiles (hole-pattern recompilations) must not grow
    either cache tier — their keys essentially never recur."""
    circuit, topology, config = _inputs()
    exec_cache.set_cache_dir(str(tmp_path))
    cached_compile(circuit, topology, config, persist=False)
    files = [f for _, _, names in os.walk(tmp_path) for f in names]
    assert files == []
    assert exec_cache.get_cache().stats()["entries_in_memory"] == 0
    # ... but a transient lookup still benefits from persisted entries.
    stored = cached_compile(circuit, topology, config)
    assert cached_compile(circuit, topology, config, persist=False) is stored


def test_unwritable_cache_dir_degrades_to_memory(tmp_path):
    blocked = tmp_path / "blocked"
    blocked.mkdir()
    os.chmod(blocked, 0o500)
    try:
        circuit, topology, config = _inputs()
        exec_cache.set_cache_dir(str(blocked))
        program = cached_compile(circuit, topology, config)
        assert program.op_count > 0
    finally:
        os.chmod(blocked, 0o700)


def test_mid_mismatch_normalized_like_compile_circuit(tmp_path):
    """cached_compile must key on the *effective* config: a config whose
    MID disagrees with the topology is normalized exactly the way
    compile_circuit normalizes it, so both spellings share one entry."""
    circuit, topology, _ = _inputs()
    exec_cache.set_cache_dir(None)
    stale_config = CompilerConfig(max_interaction_distance=9.0)
    via_cache = cached_compile(circuit, topology, stale_config)
    direct = compile_circuit(circuit, topology, stale_config)
    assert via_cache.summary() == direct.summary()
    again = cached_compile(
        circuit, topology, CompilerConfig(max_interaction_distance=3.0)
    )
    assert again is via_cache


def test_cached_compile_equals_direct_compile():
    exec_cache.set_cache_dir(None)
    circuit, topology, config = _inputs()
    cached = cached_compile(circuit, topology, config)
    direct = compile_circuit(circuit, topology, config)
    assert cached.summary() == direct.summary()
    assert cached.schedule == direct.schedule
    assert cached.initial_layout == direct.initial_layout
