"""Determinism regression: worker count must never change results.

Every sweep task derives its RNG seed from its canonical task key, and
compile artifacts (including their measured compile times) are pinned by
the persistent cache — so a figure regenerated with ``--jobs 1`` and
``--jobs 4`` over a shared cache directory must produce *identical*
formatted output, event for event.
"""

import pytest

from repro.analysis import architectures
from repro.api.session import install_default
from repro.exec import engine
from repro.experiments import fig10_loss_tolerance, fig12_overhead, fig13_sensitivity


@pytest.fixture(autouse=True)
def fresh_state():
    """Isolate every test from the process default session."""
    saved = install_default(None)
    yield
    install_default(saved)


def test_fig12_quick_identical_at_jobs_1_and_4(tmp_path):
    """The satellite requirement verbatim: fig12 --quick, --jobs 1 vs
    --jobs 4, byte-identical formatted output."""
    quick = dict(mids=(3.0, 4.0), shots=60, program_size=16)
    # Parallel first, on a COLD cache: workers must read the compile
    # artifacts the parent pinned, not race to measure their own.
    with engine.sweep_settings(jobs=4, cache_dir=str(tmp_path)):
        parallel = fig12_overhead.run(**quick)
    with engine.sweep_settings(jobs=1, cache_dir=str(tmp_path)):
        serial = fig12_overhead.run(**quick)
    assert parallel.format() == serial.format()
    assert parallel.runs == serial.runs  # full timelines, not just text


def test_fig13_identical_at_any_jobs(tmp_path):
    quick = dict(mids=(4.0,), factors=(1.0, 10.0), shots_per_run=60,
                 program_size=16)
    with engine.sweep_settings(jobs=1, cache_dir=str(tmp_path)):
        serial = fig13_sensitivity.run(**quick)
    with engine.sweep_settings(jobs=2, cache_dir=str(tmp_path)):
        parallel = fig13_sensitivity.run(**quick)
    assert parallel.format() == serial.format()
    assert parallel.shots_before_reload == serial.shots_before_reload


def test_fig10_identical_at_any_jobs(tmp_path):
    quick = dict(benchmarks=("cnu",), mids=(3.0,), program_size=12,
                 trials=2)
    with engine.sweep_settings(jobs=1, cache_dir=str(tmp_path)):
        serial = fig10_loss_tolerance.run(**quick)
    with engine.sweep_settings(jobs=2, cache_dir=str(tmp_path)):
        parallel = fig10_loss_tolerance.run(**quick)
    assert parallel.format() == serial.format()
    assert {k: v.losses_sustained for k, v in parallel.cells.items()} == \
           {k: v.losses_sustained for k, v in serial.cells.items()}


def test_prewarm_metrics_matches_serial_compilation(tmp_path):
    """Metrics imported from parallel workers equal in-process compiles."""
    arch = architectures.neutral_atom_arch(mid=3.0, grid_side=6)
    points = [("bv", size, arch, 0) for size in (4, 6, 8)]

    with engine.sweep_settings(jobs=1, cache_dir=None):
        architectures.clear_cache()
        serial = [architectures.compiled_metrics(*p) for p in points]

    with engine.sweep_settings(jobs=2, cache_dir=str(tmp_path)):
        architectures.clear_cache()
        architectures.prewarm_metrics(points)
        parallel = [architectures.compiled_metrics(*p) for p in points]

    architectures.clear_cache()
    assert parallel == serial


def test_task_seeds_are_enumeration_order_independent():
    """Skipping grid cells (e.g. compile-small at MID 2) must not shift
    the seeds of unrelated cells — unlike sequential draws from one
    generator."""
    with engine.sweep_settings(jobs=1, cache_dir=None):
        narrow = fig12_overhead.run(
            strategies=("always reload",), mids=(3.0,),
            shots=40, program_size=16,
        )
        wide = fig12_overhead.run(
            strategies=("virtual remapping", "always reload"), mids=(3.0,),
            shots=40, program_size=16,
        )
    assert (narrow.runs[("always reload", 3.0)]
            == wide.runs[("always reload", 3.0)])
