"""Additional property-based tests: QASM round-trips, optimizer
semantics, and loss-runner failure injection."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, from_qasm, optimize_circuit, to_qasm
from repro.core import CompilerConfig
from repro.hardware import LossModel, NoiseModel, Topology
from repro.loss import ShotRunner, make_strategy
from repro.sim import circuits_equivalent
from repro.workloads import build_circuit, random_circuit

SETTINGS = dict(deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@given(seed=st.integers(0, 10_000), num_gates=st.integers(0, 25),
       num_qubits=st.integers(2, 7))
@settings(max_examples=50, **SETTINGS)
def test_qasm_roundtrip_random_circuits(seed, num_gates, num_qubits):
    circuit = random_circuit(num_qubits, num_gates, rng=seed)
    assert from_qasm(to_qasm(circuit)) == circuit


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, **SETTINGS)
def test_optimizer_preserves_semantics_on_random_circuits(seed):
    circuit = random_circuit(4, 12, rng=seed)
    optimized = optimize_circuit(circuit)
    assert len(optimized) <= len(circuit)
    assert circuits_equivalent(circuit, optimized)


@given(seed=st.integers(0, 500),
       strategy_name=st.sampled_from(
           ["always reload", "virtual remapping", "reroute",
            "c. small+reroute", "recompile"]))
@settings(max_examples=15, **SETTINGS)
def test_runner_invariants_under_heavy_loss(seed, strategy_name):
    """Failure injection: under a brutal loss model, every strategy keeps
    the runner's books consistent — timeline sums to the clock, shots are
    conserved across segments, and the topology ends up either full or
    tracking exactly the post-reload losses."""
    noise = NoiseModel.neutral_atom()
    topology = Topology.square(6, 4.0)
    runner = ShotRunner(
        make_strategy(strategy_name, noise=noise),
        build_circuit("cnu", 12),
        topology,
        config=CompilerConfig(max_interaction_distance=4.0),
        noise=noise,
        loss_model=LossModel(vacuum_loss=0.1, measurement_loss=0.3),
        rng=seed,
    )
    result = runner.run(max_shots=25)
    assert result.shots_attempted == 25
    assert 0 <= result.shots_successful <= result.shots_attempted
    assert sum(result.shots_between_reloads) == result.shots_successful
    assert len(result.shots_between_reloads) == result.reload_count + 1
    by_kind = result.time_by_kind()
    assert sum(by_kind.values()) == pytest.approx(result.total_time)
    assert by_kind["reload"] == pytest.approx(0.3 * result.reload_count)
    assert 0.0 <= result.expected_successes <= result.shots_successful + 1e-9
    # Timeline events are contiguous and non-overlapping.
    clock = None
    for event in result.timeline:
        if clock is not None:
            assert event.start == pytest.approx(clock)
        clock = event.end
