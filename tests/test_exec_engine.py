"""Tests for the sweep engine (repro.exec.engine).

Parallel runs use real spawn-based worker processes, so the tests keep
the workloads tiny; the invariant checked everywhere is the engine's
contract — results in task order, identical at any worker count.
Execution policy comes from the active :class:`repro.api.Session`.
"""

import pytest

from repro.api.session import Session, install_default
from repro.exec import engine
from repro.exec.cache import get_cache, get_cache_dir
from repro.exec.keys import derive_seed
from repro.loss.runner import ShotSpec, run_shot_spec, run_shot_specs


@pytest.fixture(autouse=True)
def fresh_state():
    """Isolate every test from the process default session."""
    saved = install_default(None)
    yield
    install_default(saved)


def test_results_preserve_task_order():
    keys = [f"task={i}" for i in range(20)]
    assert engine.run_tasks(derive_seed, keys, jobs=1) == [
        derive_seed(k) for k in keys
    ]


def test_session_jobs_validate():
    with pytest.raises(ValueError):
        Session(jobs=0)


def test_sweep_settings_restores_state(tmp_path):
    outer_cache = get_cache()
    with engine.sweep_settings(jobs=3, cache_dir=str(tmp_path)):
        assert engine.current_jobs() == 3
        assert get_cache_dir() == str(tmp_path)
    assert engine.current_jobs() == 1
    assert get_cache_dir() is None
    # The previous cache OBJECT comes back — warm tier and stats intact.
    assert get_cache() is outer_cache


def test_sweep_settings_keep_shares_cache_object(tmp_path):
    outer = get_cache()
    with engine.sweep_settings(jobs=2):
        assert get_cache() is outer


def _tiny_specs():
    base = dict(benchmark="bv", program_size=6, grid_side=5, mid=3.0,
                max_shots=15)
    return [
        ShotSpec(strategy="always reload", seed=derive_seed("s=ar"), **base),
        ShotSpec(strategy="virtual remapping", seed=derive_seed("s=vr"), **base),
        ShotSpec(strategy="reroute", seed=derive_seed("s=rr"), **base),
    ]


def test_parallel_equals_serial(tmp_path):
    """jobs=2 spawn workers reproduce jobs=1 results bit-for-bit."""
    with Session(cache_dir=str(tmp_path)).activate():
        specs = _tiny_specs()
        serial = run_shot_specs(specs, jobs=1)
        parallel = run_shot_specs(specs, jobs=2)
    assert parallel == serial  # RunResult dataclass equality: full timelines


def test_run_shot_spec_is_self_contained():
    with Session().activate():
        spec = _tiny_specs()[0]
        first = run_shot_spec(spec)
        second = run_shot_spec(spec)
    assert first == second
    assert first.shots_attempted == 15


def test_task_exceptions_propagate():
    with pytest.raises(KeyError):
        engine.run_tasks(
            run_shot_spec,
            [ShotSpec(strategy="no such strategy", benchmark="bv",
                      program_size=6, grid_side=5, mid=3.0, max_shots=1,
                      seed=0)],
            jobs=1,
        )


def _interrupt_on_second_task(task):
    if task >= 1:
        raise KeyboardInterrupt
    return task


class TestInterruptCleanup:
    """Satellite: an interrupted sweep must not litter the shared cache
    directory with orphaned .tmp-* files (the CLI layer turns the
    re-raised KeyboardInterrupt into exit code 130)."""

    def _plant_orphan(self, cache_dir):
        import os

        shard = cache_dir / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        orphan = shard / ".tmp-orphan.pkl"
        orphan.write_bytes(b"x" * 64)
        os.utime(orphan, (1, 1))  # a long-dead writer's leftovers
        return orphan

    def test_inline_interrupt_reclaims_temp_files(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        orphan = self._plant_orphan(tmp_path)
        in_flight = tmp_path / "ab" / ".tmp-live.pkl"
        in_flight.write_bytes(b"x")  # another process, mid-write now
        with pytest.raises(KeyboardInterrupt):
            engine.run_tasks(_interrupt_on_second_task, [0, 1, 2],
                             session=session)
        assert not orphan.exists()
        # The grace window protects a concurrent live writer's file.
        assert in_flight.exists()

    def test_parallel_interrupt_reclaims_temp_files(self, tmp_path):
        """A KeyboardInterrupt surfacing from the worker pool takes the
        same cleanup path: cancel, drain, sweep."""
        session = Session(jobs=2, cache_dir=str(tmp_path))
        orphan = self._plant_orphan(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            engine.run_tasks(_interrupt_on_second_task, [0, 1, 2, 3],
                             session=session)
        assert not orphan.exists()

    def test_interrupt_without_disk_cache_is_harmless(self):
        session = Session()  # memory-only cache: nothing to sweep
        with pytest.raises(KeyboardInterrupt):
            engine.run_tasks(_interrupt_on_second_task, [0, 1],
                             session=session)

    def test_other_exceptions_do_not_sweep(self, tmp_path):
        """Only an interrupt triggers the reclaim sweep: an ordinary
        task failure must not delete even a long-dead writer's temp
        file (that is gc/prune/clear's job)."""
        session = Session(cache_dir=str(tmp_path))
        shard = tmp_path / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        in_flight = shard / ".tmp-live.pkl"
        in_flight.write_bytes(b"x")

        def explode(task):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            engine.run_tasks(explode, [0], session=session)
        assert in_flight.exists()


def test_explicit_session_overrides_current(tmp_path):
    """run_tasks(session=...) uses that session, not the active one."""
    dedicated = Session(jobs=1, cache_dir=str(tmp_path))
    with Session().activate():
        results = engine.run_tasks(
            run_shot_spec, _tiny_specs()[:1], session=dedicated
        )
    assert results[0].shots_attempted == 15
    # The compile went through the dedicated session's cache.
    assert dedicated.cache.stats()["misses"] >= 1


# -- the ExecBackend seam ----------------------------------------------------

import os  # noqa: E402

from repro.exec import (  # noqa: E402
    ExecBackend,
    InlineBackend,
    SpawnPoolBackend,
    resolve_backend,
)
from repro.exec.engine import INLINE  # noqa: E402


def _pid_task(task):
    return os.getpid()


class TestBackendSeam:
    def test_resolution_order(self):
        """Explicit jobs > pinned session backend > session.jobs."""
        pinned = SpawnPoolBackend(4)
        session = Session(jobs=8, backend=pinned)
        assert resolve_backend(session) is pinned
        assert resolve_backend(session, jobs=1) is INLINE
        explicit = resolve_backend(session, jobs=3)
        assert isinstance(explicit, SpawnPoolBackend)
        assert explicit.jobs == 3

    def test_session_jobs_pick_the_default_backend(self):
        assert resolve_backend(Session(jobs=1)) is INLINE
        fanned = resolve_backend(Session(jobs=3))
        assert isinstance(fanned, SpawnPoolBackend)
        assert fanned.jobs is None  # inherits session.jobs at run time

    def test_backend_names(self):
        assert InlineBackend().name == "inline"
        assert SpawnPoolBackend().name == "spawn-pool"
        assert isinstance(INLINE, ExecBackend)

    def test_backend_must_look_like_a_backend(self):
        with pytest.raises(TypeError):
            Session(backend=42)

    def test_pinned_inline_backend_wins_over_jobs(self):
        """A Session with jobs=4 but an InlineBackend pinned runs every
        task in this process — the backend is the policy, not jobs."""
        session = Session(jobs=4, backend=InlineBackend())
        pids = engine.run_tasks(_pid_task, [0, 1, 2], session=session)
        assert set(pids) == {os.getpid()}

    def test_spawn_pool_backend_runs_out_of_process(self, tmp_path):
        session = Session(jobs=1, cache_dir=str(tmp_path),
                          backend=SpawnPoolBackend(2))
        pids = engine.run_tasks(_pid_task, [0, 1, 2, 4], session=session)
        assert os.getpid() not in pids

    def test_spawn_pool_single_task_degrades_to_inline(self):
        """A one-task sweep never pays spawn cost, whatever the pool."""
        session = Session(jobs=1, backend=SpawnPoolBackend(8))
        pids = engine.run_tasks(_pid_task, [0], session=session)
        assert pids == [os.getpid()]

    def test_pinned_spawn_backend_matches_inline_results(self, tmp_path):
        """The seam contract: same bytes out of either backend."""
        with Session(cache_dir=str(tmp_path)).activate():
            specs = _tiny_specs()
            inline = run_shot_specs(specs, jobs=1)
        pooled_session = Session(cache_dir=str(tmp_path),
                                 backend=SpawnPoolBackend(2))
        with pooled_session.activate():
            pooled = run_shot_specs(specs)
        assert pooled == inline

    def test_repr_names_pinned_backend(self):
        session = Session(jobs=1, backend=SpawnPoolBackend(2))
        assert "SpawnPoolBackend(jobs=2)" in repr(session)
