"""Tests for the sweep engine (repro.exec.engine).

Parallel runs use real spawn-based worker processes, so the tests keep
the workloads tiny; the invariant checked everywhere is the engine's
contract — results in task order, identical at any worker count.
Execution policy comes from the active :class:`repro.api.Session`.
"""

import pytest

from repro.api.session import Session, install_default
from repro.exec import engine
from repro.exec.cache import get_cache, get_cache_dir
from repro.exec.keys import derive_seed
from repro.loss.runner import ShotSpec, run_shot_spec, run_shot_specs


@pytest.fixture(autouse=True)
def fresh_state():
    """Isolate every test from the process default session."""
    saved = install_default(None)
    yield
    install_default(saved)


def test_results_preserve_task_order():
    keys = [f"task={i}" for i in range(20)]
    assert engine.run_tasks(derive_seed, keys, jobs=1) == [
        derive_seed(k) for k in keys
    ]


def test_session_jobs_validate():
    with pytest.raises(ValueError):
        Session(jobs=0)


def test_sweep_settings_restores_state(tmp_path):
    outer_cache = get_cache()
    with engine.sweep_settings(jobs=3, cache_dir=str(tmp_path)):
        assert engine.current_jobs() == 3
        assert get_cache_dir() == str(tmp_path)
    assert engine.current_jobs() == 1
    assert get_cache_dir() is None
    # The previous cache OBJECT comes back — warm tier and stats intact.
    assert get_cache() is outer_cache


def test_sweep_settings_keep_shares_cache_object(tmp_path):
    outer = get_cache()
    with engine.sweep_settings(jobs=2):
        assert get_cache() is outer


def _tiny_specs():
    base = dict(benchmark="bv", program_size=6, grid_side=5, mid=3.0,
                max_shots=15)
    return [
        ShotSpec(strategy="always reload", seed=derive_seed("s=ar"), **base),
        ShotSpec(strategy="virtual remapping", seed=derive_seed("s=vr"), **base),
        ShotSpec(strategy="reroute", seed=derive_seed("s=rr"), **base),
    ]


def test_parallel_equals_serial(tmp_path):
    """jobs=2 spawn workers reproduce jobs=1 results bit-for-bit."""
    with Session(cache_dir=str(tmp_path)).activate():
        specs = _tiny_specs()
        serial = run_shot_specs(specs, jobs=1)
        parallel = run_shot_specs(specs, jobs=2)
    assert parallel == serial  # RunResult dataclass equality: full timelines


def test_run_shot_spec_is_self_contained():
    with Session().activate():
        spec = _tiny_specs()[0]
        first = run_shot_spec(spec)
        second = run_shot_spec(spec)
    assert first == second
    assert first.shots_attempted == 15


def test_task_exceptions_propagate():
    with pytest.raises(KeyError):
        engine.run_tasks(
            run_shot_spec,
            [ShotSpec(strategy="no such strategy", benchmark="bv",
                      program_size=6, grid_side=5, mid=3.0, max_shots=1,
                      seed=0)],
            jobs=1,
        )


def test_explicit_session_overrides_current(tmp_path):
    """run_tasks(session=...) uses that session, not the active one."""
    dedicated = Session(jobs=1, cache_dir=str(tmp_path))
    with Session().activate():
        results = engine.run_tasks(
            run_shot_spec, _tiny_specs()[:1], session=dedicated
        )
    assert results[0].shots_attempted == 15
    # The compile went through the dedicated session's cache.
    assert dedicated.cache.stats()["misses"] >= 1
