"""Tests for the sweep engine (repro.exec.engine).

Parallel runs use real spawn-based worker processes, so the tests keep
the workloads tiny; the invariant checked everywhere is the engine's
contract — results in task order, identical at any worker count.
"""

import pytest

from repro.exec import cache as exec_cache
from repro.exec import engine
from repro.exec.keys import derive_seed
from repro.loss.runner import ShotSpec, run_shot_spec, run_shot_specs


@pytest.fixture(autouse=True)
def fresh_state():
    saved_cache = exec_cache._ACTIVE
    saved_jobs = engine.current_jobs()
    exec_cache._ACTIVE = None
    yield
    exec_cache._ACTIVE = saved_cache
    engine.set_jobs(saved_jobs)


def test_results_preserve_task_order():
    keys = [f"task={i}" for i in range(20)]
    assert engine.run_tasks(derive_seed, keys, jobs=1) == [
        derive_seed(k) for k in keys
    ]


def test_set_jobs_validates():
    with pytest.raises(ValueError):
        engine.set_jobs(0)


def test_sweep_settings_restores_state(tmp_path):
    engine.set_jobs(1)
    outer = exec_cache.set_cache_dir(None)
    with engine.sweep_settings(jobs=3, cache_dir=str(tmp_path)):
        assert engine.current_jobs() == 3
        assert exec_cache.get_cache_dir() == str(tmp_path)
    assert engine.current_jobs() == 1
    assert exec_cache.get_cache_dir() is None
    # The previous cache OBJECT comes back — warm tier and stats intact.
    assert exec_cache.get_cache() is outer


def _tiny_specs():
    base = dict(benchmark="bv", program_size=6, grid_side=5, mid=3.0,
                max_shots=15)
    return [
        ShotSpec(strategy="always reload", seed=derive_seed("s=ar"), **base),
        ShotSpec(strategy="virtual remapping", seed=derive_seed("s=vr"), **base),
        ShotSpec(strategy="reroute", seed=derive_seed("s=rr"), **base),
    ]


def test_parallel_equals_serial(tmp_path):
    """jobs=2 spawn workers reproduce jobs=1 results bit-for-bit."""
    exec_cache.set_cache_dir(str(tmp_path))
    specs = _tiny_specs()
    serial = run_shot_specs(specs, jobs=1)
    parallel = run_shot_specs(specs, jobs=2)
    assert parallel == serial  # RunResult dataclass equality: full timelines


def test_run_shot_spec_is_self_contained():
    exec_cache.set_cache_dir(None)
    spec = _tiny_specs()[0]
    first = run_shot_spec(spec)
    second = run_shot_spec(spec)
    assert first == second
    assert first.shots_attempted == 15


def test_task_exceptions_propagate():
    with pytest.raises(KeyError):
        engine.run_tasks(
            run_shot_spec,
            [ShotSpec(strategy="no such strategy", benchmark="bv",
                      program_size=6, grid_side=5, mid=3.0, max_shots=1,
                      seed=0)],
            jobs=1,
        )
