"""Unitary-level tests for all gate decompositions."""

import pytest

from repro.circuits import Circuit, decompose_circuit
from repro.circuits.decompose import (
    decompose_ccx,
    decompose_ccz,
    decompose_cswap,
    decompose_gate,
    decompose_mcx,
    decompose_swap,
)
from repro.circuits.gates import Gate, ccx, ccz, cswap, cx, mcx, swap, x
from repro.sim import circuits_equivalent, run
from repro.sim.equivalence import equivalent_on_clean_ancillas


def as_circuit(n, gate_list):
    return Circuit(n, gate_list)


class TestExactEquivalence:
    def test_swap_is_three_cx(self):
        gates = decompose_swap(0, 1)
        assert len(gates) == 3
        assert all(g.name == "cx" for g in gates)
        assert circuits_equivalent(as_circuit(2, [swap(0, 1)]),
                                   as_circuit(2, gates))

    def test_toffoli_six_cnots(self):
        gates = decompose_ccx(0, 1, 2)
        assert sum(1 for g in gates if g.name == "cx") == 6
        assert circuits_equivalent(as_circuit(3, [ccx(0, 1, 2)]),
                                   as_circuit(3, gates))

    def test_toffoli_operand_order(self):
        # Different operand order must stay equivalent.
        gates = decompose_ccx(2, 0, 1)
        assert circuits_equivalent(as_circuit(3, [ccx(2, 0, 1)]),
                                   as_circuit(3, gates))

    def test_ccz(self):
        assert circuits_equivalent(as_circuit(3, [ccz(0, 1, 2)]),
                                   as_circuit(3, decompose_ccz(0, 1, 2)))

    def test_cswap(self):
        assert circuits_equivalent(as_circuit(3, [cswap(0, 1, 2)]),
                                   as_circuit(3, decompose_cswap(0, 1, 2)))

    def test_mcx_three_controls(self):
        gates = decompose_mcx([0, 1, 2], 3, ancillas=[4])
        assert equivalent_on_clean_ancillas(
            as_circuit(5, [mcx([0, 1, 2], 3)]), as_circuit(5, gates), [4])

    def test_mcx_four_controls(self):
        gates = decompose_mcx([0, 1, 2, 3], 4, ancillas=[5, 6])
        assert equivalent_on_clean_ancillas(
            as_circuit(7, [mcx([0, 1, 2, 3], 4)]), as_circuit(7, gates), [5, 6])


class TestMcxValidation:
    def test_too_few_controls(self):
        with pytest.raises(ValueError):
            decompose_mcx([0, 1], 2, ancillas=[3])

    def test_too_few_ancillas(self):
        with pytest.raises(ValueError):
            decompose_mcx([0, 1, 2, 3], 4, ancillas=[5])

    def test_ancillas_restored(self):
        gates = decompose_mcx([0, 1, 2], 3, ancillas=[4])
        sv = run(as_circuit(5, gates), "11100")
        # Controls all on: target flips, ancilla back to 0.
        assert sv.most_likely_bitstring() == "11110"


class TestDecomposeGate:
    def test_small_gate_passthrough(self):
        assert decompose_gate(cx(0, 1)) == [cx(0, 1)]
        assert decompose_gate(x(0)) == [x(0)]

    def test_swap_lowered(self):
        assert all(g.name == "cx" for g in decompose_gate(swap(0, 1)))

    def test_unknown_wide_gate_rejected(self):
        with pytest.raises(ValueError):
            decompose_gate(Gate("mystery", (0, 1, 2)))

    def test_cnx_needs_ancillas(self):
        with pytest.raises(ValueError):
            decompose_gate(mcx([0, 1, 2], 3))


class TestDecomposeCircuit:
    def test_keeps_swaps_by_default(self):
        c = decompose_circuit(as_circuit(2, [swap(0, 1)]))
        assert c[0].is_swap

    def test_lowers_swaps_on_request(self):
        c = decompose_circuit(as_circuit(2, [swap(0, 1)]), keep_swaps=False)
        assert all(g.name == "cx" for g in c)

    def test_lowers_toffoli(self):
        src = as_circuit(3, [ccx(0, 1, 2)])
        lowered = decompose_circuit(src, max_arity=2)
        assert max(g.arity for g in lowered) == 2
        assert circuits_equivalent(src, lowered)

    def test_native_mode_keeps_toffoli(self):
        src = as_circuit(3, [ccx(0, 1, 2)])
        kept = decompose_circuit(src, max_arity=3)
        assert kept[0].name == "ccx"

    def test_grows_register_for_mcx(self):
        src = as_circuit(5, [mcx([0, 1, 2, 3], 4)])
        lowered = decompose_circuit(src, max_arity=2)
        assert lowered.num_qubits == 7  # 2 ancillas appended
        assert max(g.arity for g in lowered) == 2

    def test_mcx_then_full_lowering_equivalent(self):
        src = as_circuit(5, [mcx([0, 1, 2, 3], 4)])
        lowered = decompose_circuit(src, max_arity=3)
        padded = Circuit(lowered.num_qubits, src.gates)
        ancillas = list(range(5, lowered.num_qubits))
        assert equivalent_on_clean_ancillas(padded, lowered, ancillas)

    def test_mcx_lowered_all_the_way_to_two_qubit(self):
        src = as_circuit(5, [mcx([0, 1, 2, 3], 4)])
        lowered = decompose_circuit(src, max_arity=2)
        assert max(g.arity for g in lowered) == 2
        padded = Circuit(lowered.num_qubits, src.gates)
        ancillas = list(range(5, lowered.num_qubits))
        assert equivalent_on_clean_ancillas(padded, lowered, ancillas)

    def test_invalid_max_arity(self):
        with pytest.raises(ValueError):
            decompose_circuit(Circuit(2), max_arity=1)
