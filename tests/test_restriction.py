"""Unit tests for restriction zones — the Fig 1 semantics."""

import pytest

from repro.hardware.restriction import (
    RestrictionModel,
    Zone,
    full_distance,
    half_distance,
    max_parallel_gates,
    no_restriction,
)


class TestRadiusFunctions:
    def test_half(self):
        assert half_distance(4.0) == 2.0

    def test_full(self):
        assert full_distance(3.0) == 3.0

    def test_none(self):
        assert no_restriction(5.0) == 0.0


class TestZone:
    def test_radius_from_span(self):
        model = RestrictionModel()
        zone = model.zone_for([(0, 0), (0, 4)])
        assert zone.radius == pytest.approx(2.0)

    def test_single_qubit_zero_radius(self):
        model = RestrictionModel()
        zone = model.zone_for([(2, 2)])
        assert zone.radius == 0.0

    def test_multiqubit_uses_max_pairwise(self):
        model = RestrictionModel()
        zone = model.zone_for([(0, 0), (0, 1), (0, 3)])
        assert zone.radius == pytest.approx(1.5)

    def test_zone_scale(self):
        model = RestrictionModel(zone_scale=2.0)
        zone = model.zone_for([(0, 0), (0, 2)])
        assert zone.radius == pytest.approx(2.0)

    def test_covers(self):
        zone = Zone(((0.0, 0.0),), 1.5)
        assert zone.covers((0.0, 1.0))
        assert not zone.covers((0.0, 2.0))

    def test_tangent_zones_do_not_intersect(self):
        a = Zone(((0.0, 0.0),), 1.0)
        b = Zone(((0.0, 2.0),), 1.0)
        assert not a.intersects(b)

    def test_overlapping_zones_intersect(self):
        a = Zone(((0.0, 0.0),), 1.2)
        b = Zone(((0.0, 2.0),), 1.0)
        assert a.intersects(b)

    def test_point_zone_inside_disk_conflicts(self):
        gate_zone = Zone(((0.0, 0.0), (0.0, 4.0)), 2.0)
        one_qubit = Zone(((0.0, 1.0),), 0.0)
        assert one_qubit.intersects(gate_zone)
        assert gate_zone.intersects(one_qubit)

    def test_two_single_qubit_zones_never_intersect(self):
        a = Zone(((0.0, 0.0),), 0.0)
        b = Zone(((0.0, 1.0),), 0.0)
        assert not a.intersects(b)


class TestConflicts:
    def test_shared_site_always_conflicts(self):
        model = RestrictionModel(no_restriction)
        assert model.conflict([(0, 0), (0, 1)], [(0, 1), (0, 2)])

    def test_disabled_model_only_shared_sites(self):
        model = RestrictionModel(no_restriction)
        assert not model.conflict([(0, 0), (0, 1)], [(0, 2), (0, 3)])
        assert model.disabled

    def test_adjacent_unit_gates_parallel(self):
        # Two distance-1 gates side by side: radii 0.5, centers 1 apart.
        model = RestrictionModel()
        assert not model.conflict([(0, 0), (0, 1)], [(1, 0), (1, 1)])

    def test_long_gate_blocks_neighbor(self):
        # A distance-4 gate (radius 2) blocks a unit gate 1 away.
        model = RestrictionModel()
        assert model.conflict([(0, 0), (0, 4)], [(1, 0), (1, 1)])

    def test_fig1_distant_gates_parallel(self):
        # Far-apart interactions run simultaneously (Fig 1a's green checks).
        model = RestrictionModel()
        assert not model.conflict([(0, 0), (0, 2)], [(5, 5), (5, 7)])

    def test_scale_parameter_validated(self):
        with pytest.raises(ValueError):
            RestrictionModel(zone_scale=-1.0)

    def test_string_radius_lookup(self):
        assert RestrictionModel("none").disabled
        assert not RestrictionModel("half").disabled


class TestGreedyPacking:
    def test_non_conflicting_all_chosen(self):
        model = RestrictionModel()
        gates = [[(0, 0), (0, 1)], [(3, 0), (3, 1)], [(6, 0), (6, 1)]]
        assert max_parallel_gates(model, gates) == [0, 1, 2]

    def test_conflicting_greedy_order(self):
        model = RestrictionModel()
        gates = [[(0, 0), (0, 4)],   # big zone
                 [(1, 1), (1, 2)],   # inside it
                 [(5, 5), (5, 6)]]   # far away
        assert max_parallel_gates(model, gates) == [0, 2]

    def test_shared_site_excluded(self):
        model = RestrictionModel(no_restriction)
        gates = [[(0, 0), (0, 1)], [(0, 1), (0, 2)]]
        assert max_parallel_gates(model, gates) == [0]
