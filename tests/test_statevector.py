"""Unit tests for the statevector simulator."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.gate_library import gate_unitary, is_unitary_gate
from repro.circuits.gates import (
    Gate, ccx, cphase, cx, cz, h, measure, rx, ry, rz, rzz, s, swap, t, x, y, z,
)
from repro.sim import Statevector, circuit_unitary, run


class TestGateLibrary:
    @pytest.mark.parametrize("gate", [
        x(0), y(0), z(0), h(0), s(0), t(0), rx(0.3, 0), ry(0.7, 0),
        rz(1.1, 0), cx(0, 1), cz(0, 1), swap(0, 1), ccx(0, 1, 2),
        cphase(0.5, 0, 1), rzz(0.4, 0, 1),
    ])
    def test_all_matrices_unitary(self, gate):
        u = gate_unitary(gate)
        dim = 2 ** gate.arity
        assert u.shape == (dim, dim)
        assert np.allclose(u @ u.conj().T, np.eye(dim), atol=1e-12)

    def test_unknown_gate(self):
        with pytest.raises(KeyError):
            gate_unitary(Gate("nope", (0,)))
        assert not is_unitary_gate(Gate("nope", (0,)))
        assert not is_unitary_gate(measure(0))

    def test_sdg_tdg_inverses(self):
        s_mat = gate_unitary(Gate("s", (0,)))
        sdg = gate_unitary(Gate("sdg", (0,)))
        assert np.allclose(s_mat @ sdg, np.eye(2))
        t_mat = gate_unitary(Gate("t", (0,)))
        tdg = gate_unitary(Gate("tdg", (0,)))
        assert np.allclose(t_mat @ tdg, np.eye(2))


class TestStatevectorBasics:
    def test_initial_state(self):
        sv = Statevector(2)
        assert sv.probability_of("00") == pytest.approx(1.0)

    def test_from_bitstring_big_endian(self):
        sv = Statevector.from_bitstring("10")
        # qubit 0 is MSB: |10> has index 2.
        assert sv.state[2] == pytest.approx(1.0)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            Statevector(25)

    def test_bad_state_shape(self):
        with pytest.raises(ValueError):
            Statevector(2, np.zeros(3))

    def test_x_flips(self):
        sv = Statevector(1)
        sv.apply_gate(x(0))
        assert sv.most_likely_bitstring() == "1"

    def test_h_superposition(self):
        sv = Statevector(1)
        sv.apply_gate(h(0))
        probs = sv.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[1] == pytest.approx(0.5)

    def test_cx_control_semantics(self):
        sv = Statevector.from_bitstring("10")
        sv.apply_gate(cx(0, 1))
        assert sv.most_likely_bitstring() == "11"
        sv = Statevector.from_bitstring("01")
        sv.apply_gate(cx(0, 1))
        assert sv.most_likely_bitstring() == "01"

    def test_toffoli_semantics(self):
        sv = Statevector.from_bitstring("110")
        sv.apply_gate(ccx(0, 1, 2))
        assert sv.most_likely_bitstring() == "111"
        sv = Statevector.from_bitstring("100")
        sv.apply_gate(ccx(0, 1, 2))
        assert sv.most_likely_bitstring() == "100"

    def test_swap_semantics(self):
        sv = Statevector.from_bitstring("10")
        sv.apply_gate(swap(0, 1))
        assert sv.most_likely_bitstring() == "01"

    def test_measurement_is_noop_on_amplitudes(self):
        sv = Statevector.from_bitstring("1")
        sv.apply_gate(measure(0))
        assert sv.most_likely_bitstring() == "1"

    def test_non_adjacent_operands(self):
        sv = Statevector.from_bitstring("100")
        sv.apply_gate(cx(0, 2))
        assert sv.most_likely_bitstring() == "101"

    def test_reversed_operand_order(self):
        sv = Statevector.from_bitstring("010")
        sv.apply_gate(cx(1, 0))
        assert sv.most_likely_bitstring() == "110"


class TestBellAndGHZ:
    def test_bell_state(self):
        c = Circuit(2, [h(0), cx(0, 1)])
        sv = run(c)
        probs = sv.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)

    def test_ghz_marginals(self):
        c = Circuit(3, [h(0), cx(0, 1), cx(1, 2)])
        sv = run(c)
        marginal = sv.marginal_probabilities([0, 2])
        assert marginal["00"] == pytest.approx(0.5)
        assert marginal["11"] == pytest.approx(0.5)

    def test_fidelity(self):
        a = run(Circuit(2, [h(0), cx(0, 1)]))
        b = run(Circuit(2, [h(0), cx(0, 1)]))
        assert a.fidelity_with(b) == pytest.approx(1.0)
        c = run(Circuit(2, []))  # |00> overlaps the Bell state at 1/2
        assert a.fidelity_with(c) == pytest.approx(0.5)
        d = run(Circuit(2, [x(0)]))  # |10> is orthogonal to the Bell state
        assert a.fidelity_with(d) == pytest.approx(0.0)

    def test_fidelity_size_mismatch(self):
        with pytest.raises(ValueError):
            Statevector(1).fidelity_with(Statevector(2))


class TestCircuitUnitary:
    def test_cx_unitary(self):
        u = circuit_unitary(Circuit(2, [cx(0, 1)]))
        expected = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
            dtype=complex,
        )
        assert np.allclose(u, expected)

    def test_rz_phase_convention(self):
        theta = 0.8
        u = circuit_unitary(Circuit(1, [rz(theta, 0)]))
        assert u[0, 0] == pytest.approx(np.exp(-1j * theta / 2))
        assert u[1, 1] == pytest.approx(np.exp(1j * theta / 2))

    def test_rzz_diagonal(self):
        theta = 0.6
        u = circuit_unitary(Circuit(2, [rzz(theta, 0, 1)]))
        diag = np.diag(u)
        assert diag[0] == pytest.approx(np.exp(-1j * theta / 2))
        assert diag[3] == pytest.approx(np.exp(-1j * theta / 2))
        assert diag[1] == pytest.approx(np.exp(1j * theta / 2))

    def test_size_guard(self):
        with pytest.raises(ValueError):
            circuit_unitary(Circuit(11))

    def test_run_initial_bits_length_check(self):
        with pytest.raises(ValueError):
            run(Circuit(3), initial_bits="01")
