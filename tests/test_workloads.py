"""Semantic tests for all five benchmark generators."""

import pytest

from repro.circuits import Circuit
from repro.sim import run
from repro.workloads import (
    BENCHMARKS,
    BENCHMARK_ORDER,
    bernstein_vazirani,
    build_circuit,
    cnu,
    cuccaro_adder,
    get_benchmark,
    qaoa_maxcut,
    random_graph,
)
from repro.workloads.cnu import cnu_expected_toffolis, cnu_from_total_qubits
from repro.workloads.cuccaro import (
    cuccaro_from_total_qubits,
    decode_sum as cuccaro_decode,
    encode_operands as cuccaro_encode,
)
from repro.workloads.qaoa import cut_value, expected_cut
from repro.workloads.qft_adder import (
    decode_sum as qft_decode,
    encode_operands as qft_encode,
    qft_adder,
    qft_adder_from_total_qubits,
)


class TestBernsteinVazirani:
    def test_recovers_all_ones_secret(self):
        sv = run(bernstein_vazirani(7))
        # 6 data qubits read the secret; ancilla returns to 0.
        assert sv.most_likely_bitstring() == "1111110"
        assert max(sv.probabilities()) == pytest.approx(1.0)

    @pytest.mark.parametrize("secret", ["101", "000", "011", "111"])
    def test_recovers_arbitrary_secret(self, secret):
        sv = run(bernstein_vazirani(4, secret=secret))
        assert sv.most_likely_bitstring() == secret + "0"

    def test_gate_count_scales_linearly(self):
        # All-ones oracle: one CX per data qubit.
        c = bernstein_vazirani(20)
        assert c.gate_counts()["cx"] == 19

    def test_fully_serial_oracle(self):
        # Every CX shares the ancilla: oracle depth equals data size.
        c = bernstein_vazirani(10)
        assert c.depth() >= 9

    def test_size_validation(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(1)
        with pytest.raises(ValueError):
            bernstein_vazirani(4, secret="10")  # wrong length
        with pytest.raises(ValueError):
            bernstein_vazirani(4, secret="12x")


class TestCuccaroAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (5, 6), (7, 7), (3, 4)])
    def test_three_bit_addition(self, a, b):
        circuit = cuccaro_adder(3)
        sv = run(circuit, cuccaro_encode(a, b, 3))
        bits = sv.most_likely_bitstring()
        assert cuccaro_decode(bits, 3) == a + b
        assert max(sv.probabilities()) == pytest.approx(1.0)

    def test_a_register_restored(self):
        circuit = cuccaro_adder(2)
        sv = run(circuit, cuccaro_encode(2, 1, 2))
        bits = sv.most_likely_bitstring()
        from repro.workloads.cuccaro import cuccaro_registers
        _, _, a_qubits, _ = cuccaro_registers(2)
        a_read = sum(int(bits[a_qubits[k]]) << k for k in range(2))
        assert a_read == 2

    def test_carry_out(self):
        circuit = cuccaro_adder(2)
        sv = run(circuit, cuccaro_encode(3, 3, 2))
        assert cuccaro_decode(sv.most_likely_bitstring(), 2) == 6

    def test_toffoli_census(self):
        # One MAJ + one UMA per bit, each containing one Toffoli.
        c = cuccaro_adder(5)
        assert c.gate_counts()["ccx"] == 10

    def test_no_parallelism(self):
        c = cuccaro_adder(4)
        assert c.parallelism() < 1.2  # essentially serial ripple

    def test_from_total_qubits(self):
        c = cuccaro_from_total_qubits(30)
        assert c.num_qubits == 30
        with pytest.raises(ValueError):
            cuccaro_from_total_qubits(3)

    def test_operand_range_check(self):
        with pytest.raises(ValueError):
            cuccaro_encode(8, 0, 3)


class TestCnu:
    def test_flips_only_on_all_controls(self):
        circuit = cnu(4)
        n = circuit.num_qubits
        on = run(circuit, "1111" + "0" * (n - 4)).most_likely_bitstring()
        assert on[-1] == "1"  # target flipped
        assert on[4:-1] == "0" * (n - 5)  # ancillas restored
        off = run(circuit, "1101" + "0" * (n - 4)).most_likely_bitstring()
        assert off[-1] == "0"

    def test_toffoli_count_matches_tree(self):
        for k in (2, 3, 5, 8):
            c = cnu(k)
            assert c.gate_counts()["ccx"] == cnu_expected_toffolis(k)

    def test_logarithmic_depth(self):
        import math
        c = cnu(16)
        # Tree of 16 controls: ~2*log2(16)+1 layers.
        assert c.depth() <= 2 * math.ceil(math.log2(16)) + 3

    def test_high_parallelism(self):
        assert cnu(16).parallelism() > 2.0

    def test_total_qubits(self):
        assert cnu(10).num_qubits == 20
        assert cnu_from_total_qubits(30).num_qubits == 30
        with pytest.raises(ValueError):
            cnu(1)


class TestQftAdder:
    @pytest.mark.parametrize("a,b,n", [(0, 0, 2), (1, 2, 2), (3, 3, 2),
                                       (5, 6, 3), (7, 1, 3), (4, 4, 3)])
    def test_modular_addition(self, a, b, n):
        circuit = qft_adder(n)
        sv = run(circuit, qft_encode(a, b, n))
        assert qft_decode(sv.most_likely_bitstring(), n) == (a + b) % (2**n)
        assert max(sv.probabilities()) == pytest.approx(1.0, abs=1e-9)

    def test_a_register_unchanged(self):
        sv = run(qft_adder(3), qft_encode(5, 2, 3))
        bits = sv.most_likely_bitstring()
        assert int(bits[:3], 2) == 5

    def test_highly_parallel(self):
        c = qft_adder(8)
        assert c.parallelism() > 1.5

    def test_from_total_qubits(self):
        assert qft_adder_from_total_qubits(20).num_qubits == 20


class TestQaoa:
    def test_graph_density(self):
        edges = random_graph(20, edge_density=0.1, rng=0)
        assert len(edges) == round(0.1 * 20 * 19 / 2)

    def test_graph_edges_valid(self):
        edges = random_graph(15, rng=3)
        assert all(0 <= u < v < 15 for u, v in edges)

    def test_graph_deterministic_by_seed(self):
        assert random_graph(12, rng=5) == random_graph(12, rng=5)
        assert random_graph(12, rng=5) != random_graph(12, rng=6)

    def test_circuit_structure(self):
        edges = [(0, 1), (1, 2)]
        c = qaoa_maxcut(3, edges=edges)
        counts = c.gate_counts()
        assert counts["h"] == 3
        assert counts["rzz"] == 2
        assert counts["rx"] == 3

    def test_multiple_layers(self):
        c = qaoa_maxcut(3, edges=[(0, 1)], layers=2)
        assert c.gate_counts()["rzz"] == 2

    def test_invalid_edge(self):
        with pytest.raises(ValueError):
            qaoa_maxcut(3, edges=[(0, 3)])

    def test_cut_value(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        assert cut_value("010", edges) == 2
        assert cut_value("000", edges) == 0

    def test_expected_cut_beats_random_on_triangle(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        sv = run(qaoa_maxcut(3, edges=edges, gamma=0.3, beta=1.3))
        value = expected_cut(sv.probabilities(), edges, 3)
        random_value = expected_cut([1 / 8] * 8, edges, 3)
        assert value > random_value


class TestRegistry:
    def test_all_benchmarks_listed(self):
        assert set(BENCHMARK_ORDER) == set(BENCHMARKS)
        assert len(BENCHMARK_ORDER) == 5

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_build_all(self, name):
        circuit = build_circuit(name, 12)
        assert isinstance(circuit, Circuit)
        assert circuit.num_qubits <= 12
        assert len(circuit) > 0

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("nope")

    def test_min_size_enforced(self):
        with pytest.raises(ValueError):
            get_benchmark("cuccaro").circuit(3)

    def test_multiqubit_flags(self):
        assert get_benchmark("cnu").uses_multiqubit_gates
        assert get_benchmark("cuccaro").uses_multiqubit_gates
        assert not get_benchmark("bv").uses_multiqubit_gates

    def test_qaoa_randomized_flag(self):
        assert get_benchmark("qaoa").randomized
