"""Tests for the random-circuit generators and the margin ablation."""

import pytest

from repro.core import CompilerConfig, check_compiled, compile_circuit
from repro.experiments import ablation_margin
from repro.hardware import Topology
from repro.sim import run
from repro.workloads import ghz_circuit, qft_circuit, random_circuit


class TestRandomCircuit:
    def test_gate_count_and_width(self):
        c = random_circuit(5, 20, rng=0)
        assert c.num_qubits == 5
        assert len(c) == 20

    def test_deterministic_by_seed(self):
        assert random_circuit(5, 15, rng=3) == random_circuit(5, 15, rng=3)
        assert random_circuit(5, 15, rng=3) != random_circuit(5, 15, rng=4)

    def test_arity_weights_respected(self):
        only_1q = random_circuit(4, 30, arity_weights=(1, 0, 0), rng=0)
        assert all(g.arity == 1 for g in only_1q)
        only_2q = random_circuit(4, 30, arity_weights=(0, 1, 0), rng=0)
        assert all(g.arity == 2 for g in only_2q)

    def test_three_qubit_fallback_on_small_register(self):
        c = random_circuit(2, 20, arity_weights=(0, 0, 1), rng=0)
        assert all(g.arity == 2 for g in c)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_circuit(1, 5)
        with pytest.raises(ValueError):
            random_circuit(3, -1)
        with pytest.raises(ValueError):
            random_circuit(3, 5, arity_weights=(0, 0, 0))
        with pytest.raises(ValueError):
            random_circuit(3, 5, arity_weights=(1, 1))

    def test_random_circuit_compiles_and_verifies(self):
        c = random_circuit(6, 15, rng=7)
        program = compile_circuit(
            c, Topology.square(3, 2.0),
            CompilerConfig(max_interaction_distance=2.0),
        )
        assert check_compiled(program, trials=3)


class TestGhzAndQft:
    def test_ghz_state(self):
        sv = run(ghz_circuit(4))
        probs = sv.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(0.5)

    def test_ghz_validation(self):
        with pytest.raises(ValueError):
            ghz_circuit(1)

    def test_qft_of_zero_is_uniform(self):
        sv = run(qft_circuit(3))
        assert all(abs(p - 1 / 8) < 1e-9 for p in sv.probabilities())

    def test_qft_swapless_variant(self):
        swapped = qft_circuit(4, include_swaps=True)
        plain = qft_circuit(4, include_swaps=False)
        assert len(swapped) == len(plain) + 2  # two terminal swaps


class TestMarginAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_margin.run(
            program_size=20, true_mid=5.0, margins=(1.0, 2.0),
            trials=2, rng=0,
        )

    def test_bigger_margin_worse_program(self, result):
        small = result.select(1.0)
        large = result.select(2.0)
        assert large.gates >= small.gates
        assert large.clean_success <= small.clean_success
        assert large.compiled_mid < small.compiled_mid

    def test_tolerance_reported(self, result):
        for point in result.points:
            assert 0.0 <= point.tolerance_fraction <= 1.0
        assert "Margin" in result.format()
