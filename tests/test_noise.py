"""Unit tests for the §V noise/success model."""

import math

import pytest

from repro.hardware.noise import NoiseModel, success_ratio_to_random


class TestConstruction:
    def test_bad_fidelity(self):
        with pytest.raises(ValueError):
            NoiseModel("bad", {2: 1.5}, 1.0, 1.0, {2: 1e-6})

    def test_bad_coherence(self):
        with pytest.raises(ValueError):
            NoiseModel("bad", {2: 0.9}, 0.0, 1.0, {2: 1e-6})

    def test_named_models(self):
        na = NoiseModel.neutral_atom()
        sc = NoiseModel.superconducting_rome()
        assert na.fidelity(2) == pytest.approx(0.965)
        assert sc.two_qubit_error == pytest.approx(1.2e-2)
        assert 3 in na.gate_fidelity
        assert 3 not in sc.gate_fidelity

    def test_arity_fallback(self):
        na = NoiseModel.neutral_atom()
        # Arity 4 falls back to the widest configured (3).
        assert na.fidelity(4) == na.fidelity(3)
        assert na.duration_of(4) == na.duration_of(3)


class TestSuccessModel:
    def test_gate_success_product(self):
        na = NoiseModel.neutral_atom()
        p = na.gate_success({2: 10})
        assert p == pytest.approx(0.965**10)

    def test_mixed_arity_product(self):
        na = NoiseModel.neutral_atom()
        p = na.gate_success({1: 3, 2: 2, 3: 1})
        assert p == pytest.approx(0.999**3 * 0.965**2 * 0.92)

    def test_zero_fidelity_short_circuit(self):
        model = NoiseModel("z", {2: 0.0}, 1.0, 1.0, {2: 1e-6})
        assert model.gate_success({2: 1}) == 0.0

    def test_coherence_exponential(self):
        na = NoiseModel.neutral_atom()
        assert na.coherence_success(0.0) == 1.0
        expected = math.exp(-1.0 / 4.0 - 1.0 / 1.0)
        assert na.coherence_success(1.0) == pytest.approx(expected)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel.neutral_atom().coherence_success(-1.0)

    def test_program_success_composition(self):
        na = NoiseModel.neutral_atom()
        counts = {2: 5}
        duration = 1e-3
        assert na.program_success(counts, duration) == pytest.approx(
            na.gate_success(counts) * na.coherence_success(duration)
        )

    def test_empty_program_is_certain(self):
        assert NoiseModel.neutral_atom().program_success({}, 0.0) == 1.0


class TestErrorRescaling:
    def test_two_qubit_error_set_exactly(self):
        na = NoiseModel.neutral_atom(two_qubit_error=1e-3)
        assert na.two_qubit_error == pytest.approx(1e-3)

    def test_other_arities_scale_proportionally(self):
        base = NoiseModel.neutral_atom()
        scaled = base.with_two_qubit_error(base.two_qubit_error / 10)
        # 1q and 3q errors scale by the same factor of 10.
        assert 1 - scaled.fidelity(1) == pytest.approx((1 - base.fidelity(1)) / 10)
        assert 1 - scaled.fidelity(3) == pytest.approx((1 - base.fidelity(3)) / 10)

    def test_coherence_scales_inversely(self):
        base = NoiseModel.superconducting_rome()
        scaled = base.with_two_qubit_error(base.two_qubit_error / 100)
        assert scaled.t1_ground == pytest.approx(base.t1_ground * 100)
        assert scaled.t2_ground == pytest.approx(base.t2_ground * 100)

    def test_error_capped_at_one(self):
        base = NoiseModel.neutral_atom()
        worse = base.with_two_qubit_error(0.5)
        assert 0.0 <= worse.fidelity(3) <= 1.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            NoiseModel.neutral_atom().with_two_qubit_error(1.5)

    def test_monotone_in_error(self):
        counts = {2: 50}
        successes = [
            NoiseModel.neutral_atom(e).program_success(counts, 1e-4)
            for e in (1e-4, 1e-3, 1e-2, 1e-1)
        ]
        assert successes == sorted(successes, reverse=True)


class TestRandomBaseline:
    def test_ratio(self):
        assert success_ratio_to_random(0.5, 1) == pytest.approx(1.0)
        assert success_ratio_to_random(1.0, 10) == pytest.approx(1024.0)
