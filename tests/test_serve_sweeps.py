"""Tests for sweep-as-a-service (repro.serve.sweeps + the /sweeps routes).

The contracts under test, transport-free and over a real socket:

* ``POST /sweeps`` expands server-side and fans out one job per cell;
  two overlapping grids execute each shared cell exactly once (store
  short-circuit + in-flight dedup).
* ``GET /sweeps/<id>/stream`` delivers each cell's envelope the moment
  it finalizes, and those envelopes re-render byte-identically to the
  CLI's ``--format json`` output.
* Edge cases: a disconnecting stream consumer leaks nothing, a
  restarted server answers a resubmitted sweep entirely from its store
  (zero tasks), and an all-hit sweep streams instantly in canonical
  cell order.
"""

import dataclasses
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.__main__ import main
from repro.api import RemoteRunError, RemoteSession, Session, SweepSpec
from repro.api.session import install_default
from repro.api.store import ResultStore, canonical_json
from repro.exec.cache import CompileCache
from repro.serve import build_server
from repro.serve.app import ServeApp
from repro.serve.jobs import DONE, JobQueue
from repro.serve.metrics import ServeMetrics


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


FAST = "ext-trapped-ion"


def _build_app(store_dir, workers=2):
    store = ResultStore(str(store_dir))
    cache = CompileCache(None)
    metrics = ServeMetrics()
    jobs = JobQueue(lambda: Session(jobs=1, cache=cache, store=store),
                    workers=workers, metrics=metrics, store=store)
    return ServeApp(store=store, jobs=jobs, metrics=metrics)


@pytest.fixture
def app(tmp_path):
    built = _build_app(tmp_path / "store")
    yield built
    built.jobs.shutdown(wait=True)


def _post_sweep(app, **payload):
    return app.handle("POST", "/sweeps", json.dumps(payload).encode())


def _sweep_body(experiment=FAST, **extra):
    return {"experiment": experiment, "quick": True, **extra}


def _stream_lines(app, sweep_id):
    response = app.handle("GET", f"/sweeps/{sweep_id}/stream")
    assert response.stream is not None
    return [json.loads(chunk) for chunk in response.stream]


class TestSubmitAndStatus:
    def test_submit_expands_and_reports_cells(self, app):
        response = _post_sweep(
            app, **_sweep_body(axes={"program_size": [10, 20]}))
        assert response.status == 202
        payload = json.loads(response.body)
        assert payload["total"] == 2
        assert [cell["index"] for cell in payload["cells"]] == [0, 1]
        assert all(len(cell["key"]) == 64 for cell in payload["cells"])
        assert response.headers["X-Repro-Sweep"] == payload["id"]

        status = app.handle("GET", f"/sweeps/{payload['id']}")
        assert status.status == 200
        described = json.loads(status.body)
        assert described["total"] == 2
        assert described["stream_url"].endswith(
            f"/sweeps/{payload['id']}/stream")

    def test_validation_errors(self, app):
        assert app.handle("POST", "/sweeps", b"{ nope").status == 400
        assert _post_sweep(app, experiment="fig99").status == 404
        response = _post_sweep(
            app, **_sweep_body(axes={"bogus": [1]}))
        assert response.status == 400
        assert json.loads(response.body)["error_type"] == "TypeError"
        response = _post_sweep(
            app, **_sweep_body(axes={"program_size": []}))
        assert response.status == 400
        assert json.loads(response.body)["error_type"] == "ValueError"
        assert app.handle("GET", "/sweeps/nope").status == 404
        assert app.handle("GET", "/sweeps/nope/stream").status == 404

    def test_stream_yields_each_cell_then_summary(self, app):
        sweep_id = json.loads(_post_sweep(
            app, **_sweep_body(axes={"program_size": [10, 20]})).body)["id"]
        lines = _stream_lines(app, sweep_id)
        assert len(lines) == 3
        cells, summary = lines[:-1], lines[-1]
        assert {record["index"] for record in cells} == {0, 1}
        for record in cells:
            assert record["status"] == DONE
            assert record["envelope"]["experiment"] == FAST
        assert summary == {"sweep": sweep_id, "total": 2, "done": 2,
                           "failed": 0}


class TestDedupAndReplay:
    def test_overlapping_sweeps_execute_shared_cell_once(
            self, app, monkeypatch):
        """Two grids sharing a cell -> that cell runs exactly once."""
        from repro.api import registry

        real = registry._SPECS[FAST]
        calls = []

        def counting_runner(**kwargs):
            calls.append(kwargs.get("program_size"))
            time.sleep(0.3)  # hold jobs open so the sweeps overlap
            return real.runner(**kwargs)

        monkeypatch.setitem(registry._SPECS, FAST,
                            dataclasses.replace(real,
                                                runner=counting_runner))
        first = json.loads(_post_sweep(
            app, **_sweep_body(axes={"program_size": [10, 20]})).body)
        second = json.loads(_post_sweep(
            app, **_sweep_body(axes={"program_size": [20, 30]})).body)
        for sweep_id in (first["id"], second["id"]):
            assert app.sweeps.get(sweep_id).wait(timeout=60)
        # Four distinct keys across both grids, three executions: the
        # shared program_size=20 cell ran exactly once.
        assert sorted(calls) == [10, 20, 30]
        snapshot = app.metrics.snapshot()["sweeps"]
        assert snapshot["submitted"] == 2
        assert snapshot["cells_total"] == 4
        assert snapshot["cells_hit"] + snapshot["cells_queued"] == 4
        # The shared cell either coalesced onto the in-flight job or
        # (if the first sweep finished first) hit the store.
        assert snapshot["cells_coalesced"] + snapshot["cells_hit"] >= 1
        # Both sweeps streamed the same envelope for the shared key.
        shared_key = SweepSpec(FAST, axes={"program_size": (20,)},
                               quick=True).keys()[0]
        envelopes = []
        for sweep_id in (first["id"], second["id"]):
            for record in _stream_lines(app, sweep_id)[:-1]:
                if record["key"] == shared_key:
                    envelopes.append(canonical_json(record["envelope"]))
        assert len(envelopes) == 2 and envelopes[0] == envelopes[1]

    def test_all_hit_sweep_streams_instantly_in_canonical_order(
            self, app):
        body = _sweep_body(axes={"program_size": [10, 20]})
        first = json.loads(_post_sweep(app, **body).body)
        assert app.sweeps.get(first["id"]).wait(timeout=60)

        jobs_before = app.metrics.snapshot()["jobs"]["submitted"]
        resubmitted = json.loads(_post_sweep(app, **body).body)
        # Every cell finalized inside the POST: nothing touched the
        # queue, and the stream replays in canonical cell order.
        assert resubmitted["completed"] == 2
        assert all(cell["source"] == "store"
                   for cell in resubmitted["cells"])
        assert app.metrics.snapshot()["jobs"]["submitted"] == jobs_before
        lines = _stream_lines(app, resubmitted["id"])
        assert [record["index"] for record in lines[:-1]] == [0, 1]
        assert all(record["tasks_executed"] == 0
                   for record in lines[:-1])

    def test_force_requeues_stored_cells(self, app):
        body = _sweep_body(axes={"program_size": [10]})
        first = json.loads(_post_sweep(app, **body).body)
        assert app.sweeps.get(first["id"]).wait(timeout=60)
        jobs_before = app.metrics.snapshot()["jobs"]["submitted"]
        forced = json.loads(_post_sweep(app, force=True, **body).body)
        assert app.sweeps.get(forced["id"]).wait(timeout=60)
        assert app.metrics.snapshot()["jobs"]["submitted"] == \
            jobs_before + 1

    def test_restarted_server_answers_sweep_from_store(self, tmp_path):
        """A new app over the same store dir = a server restart: the
        resubmitted sweep finalizes from stored cells, zero tasks."""
        body = _sweep_body(axes={"program_size": [10, 20]})
        before = _build_app(tmp_path / "store")
        try:
            first = json.loads(_post_sweep(before, **body).body)
            assert before.sweeps.get(first["id"]).wait(timeout=60)
        finally:
            before.jobs.shutdown(wait=True)

        after = _build_app(tmp_path / "store")
        try:
            resumed = json.loads(_post_sweep(after, **body).body)
            assert resumed["completed"] == 2
            assert all(cell["source"] == "store"
                       for cell in resumed["cells"])
            assert after.metrics.snapshot()["jobs"]["submitted"] == 0
            lines = _stream_lines(after, resumed["id"])
            assert all(record["tasks_executed"] == 0
                       for record in lines[:-1])
        finally:
            after.jobs.shutdown(wait=True)


class TestStreamLifecycle:
    def test_disconnected_consumer_leaks_nothing(self, app, monkeypatch):
        """Closing the stream mid-sweep must not leak jobs: the cells
        finish under queue ownership and the record stays pollable."""
        from repro.api import registry

        real = registry._SPECS[FAST]

        def slow_runner(**kwargs):
            time.sleep(0.2)
            return real.runner(**kwargs)

        monkeypatch.setitem(registry._SPECS, FAST,
                            dataclasses.replace(real, runner=slow_runner))
        sweep_id = json.loads(_post_sweep(
            app, **_sweep_body(axes={"program_size": [10, 20, 30]})).body
        )["id"]
        response = app.handle("GET", f"/sweeps/{sweep_id}/stream")
        first_line = next(response.stream)
        assert json.loads(first_line)["status"] == DONE
        response.stream.close()  # the client hung up

        record = app.sweeps.get(sweep_id)
        assert record.wait(timeout=60)
        queue = app.jobs.describe()
        assert queue["in_flight"] == 0
        assert queue["by_status"].get("queued", 0) == 0
        assert queue["by_status"].get("running", 0) == 0
        # A later consumer still gets the full history.
        lines = _stream_lines(app, sweep_id)
        assert lines[-1]["done"] == 3

    def test_envelope_matches_cli_json_bytes(self, app, tmp_path,
                                             capsys):
        """The streamed envelope re-renders byte-identically to
        ``python -m repro run --format json`` for the same cell."""
        out = tmp_path / "cli.json"
        assert main(["run", "validation", "--quick", "--no-cache",
                     "--format", "json", "--out", str(out)]) == 0
        capsys.readouterr()
        sweep_id = json.loads(_post_sweep(
            app, experiment="validation", quick=True).body)["id"]
        lines = _stream_lines(app, sweep_id)
        assert len(lines) == 2
        streamed = canonical_json(lines[0]["envelope"])
        assert streamed.encode() == out.read_bytes()


class TestRemoteSessionSweeps:
    @pytest.fixture
    def server(self, tmp_path):
        srv = build_server("127.0.0.1", 0, str(tmp_path / "store"),
                           str(tmp_path / "cache"), workers=2, quiet=True)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv
        srv.shutdown()
        srv.close()
        thread.join(timeout=5)

    @pytest.fixture
    def remote(self, server):
        return RemoteSession(f"http://127.0.0.1:{server.port}")

    def test_run_sweep_matches_local_session(self, remote, tmp_path):
        spec = SweepSpec(FAST, axes={"program_size": (10, 20)},
                         quick=True)
        over_the_wire = remote.run_sweep(spec)
        local = Session(store_dir=str(tmp_path / "local")).run_sweep(spec)
        assert canonical_json(over_the_wire.to_dict()) == \
            canonical_json(local.to_dict())
        assert remote.misses == 2 and remote.hits == 0

        # Replay: the server answers from its store, counted as hits.
        replayed = remote.run_sweep(spec)
        assert remote.hits == 2
        assert canonical_json(replayed.to_dict()) == \
            canonical_json(local.to_dict())

    def test_iter_sweep_streams_incrementally(self, remote):
        spec = SweepSpec(FAST, axes={"program_size": (10, 20)},
                         quick=True)
        seen = []
        for cell, result in remote.iter_sweep(spec):
            seen.append(cell.index)
            assert result.to_dict()["experiment"] == FAST
        assert sorted(seen) == [0, 1]

    def test_error_mapping(self, remote):
        with pytest.raises(KeyError):
            remote.run_sweep(_unknown_spec())
        with pytest.raises(KeyError):
            remote.sweep("nope")

    def test_failed_cell_raises_remote_run_error(self, remote, server,
                                                 monkeypatch):
        from repro.api import registry

        real = registry._SPECS["validation"]

        def broken_runner(**kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setitem(registry._SPECS, "validation",
                            dataclasses.replace(real,
                                                runner=broken_runner))
        with pytest.raises(RemoteRunError) as excinfo:
            remote.run_sweep(SweepSpec("validation", quick=True))
        assert "injected failure" in str(excinfo.value)


def _unknown_spec():
    """A spec whose experiment the *server* will not know: build it
    against a registered name, then point it at an unknown one."""
    spec = SweepSpec("validation", quick=True)
    spec.experiment = "fig99"
    return spec
